//! A larger what-if analysis on the synthetic taxi-trips dataset (the shape
//! of the paper's evaluation workload): the city retroactively asks how
//! revenue would change if an airport surcharge had been $6 instead of $4.
//!
//! Run with:
//! ```text
//! cargo run --release --example taxi_fare_policy
//! ```

use mahif::{Method, Session};
use mahif_history::{ModificationSet, SetClause, Statement};
use mahif_sqlparse::{parse_history, parse_statement};
use mahif_workload::{Dataset, DatasetKind};

fn main() {
    // A scaled-down taxi-trips relation (the paper samples 5M / 50M rows from
    // the Chicago open-data portal; we generate 5k synthetic rows with the
    // same schema shape — see DESIGN.md for the substitution rationale).
    let dataset = Dataset::generate(DatasetKind::Taxi, 5_000, 2024);

    // The fare-policy history that was actually executed: an airport
    // surcharge, a downtown congestion fee, a loyalty discount and a total
    // recomputation.
    let history = parse_history(
        "UPDATE taxi_trips SET extras = extras + 400 WHERE pickup_area >= 76;
         UPDATE taxi_trips SET extras = extras + 150 WHERE pickup_area <= 8;
         UPDATE taxi_trips SET tips = tips + 50 WHERE trip_miles_x100 >= 1000;
         UPDATE taxi_trips SET fare = fare - 100 WHERE trip_seconds >= 3600 AND fare >= 2000;
         UPDATE taxi_trips SET trip_total = fare + tips + tolls + extras;",
    )
    .expect("history parses");

    let session =
        Session::with_history("taxi", dataset.database.clone(), history).expect("history executes");

    // What if the airport surcharge had been $6.00 instead of $4.00?
    let modifications = ModificationSet::single_replace(
        0,
        parse_statement("UPDATE taxi_trips SET extras = extras + 600 WHERE pickup_area >= 76")
            .unwrap(),
    );

    let answer = session
        .on("taxi")
        .modifications(modifications.clone())
        .method(Method::ReenactPsDs)
        .run()
        .expect("what-if succeeds")
        .into_answer();

    // Revenue impact: sum of trip_total over the + tuples minus the − tuples.
    let order_delta = answer
        .delta
        .relation("taxi_trips")
        .expect("the surcharge change affects some trips");
    let total_idx = dataset
        .relation()
        .schema
        .index_of("trip_total")
        .expect("schema has trip_total");
    let plus: i64 = order_delta
        .plus_tuples()
        .iter()
        .map(|t| t.value(total_idx).unwrap().as_int().unwrap())
        .sum();
    let minus: i64 = order_delta
        .minus_tuples()
        .iter()
        .map(|t| t.value(total_idx).unwrap().as_int().unwrap())
        .sum();

    println!(
        "{} trips would have been billed differently",
        order_delta.plus_tuples().len()
    );
    println!("revenue impact: +${:.2}", (plus - minus) as f64 / 100.0);
    println!(
        "engine work: {} of {} statements reenacted, {} of {} tuples read, runtime {:?}",
        answer.stats.statements_reenacted,
        answer.stats.statements_total,
        answer.stats.input_tuples,
        answer.stats.total_tuples,
        answer.timings.total()
    );

    // Cross-check with the naive baseline (and show the cost difference).
    let naive = session
        .on("taxi")
        .modifications(modifications.clone())
        .method(Method::Naive)
        .run()
        .unwrap()
        .into_answer();
    assert_eq!(naive.delta, answer.delta);
    println!(
        "naive baseline produced the same answer in {:?} (copy {:?}, execute {:?}, delta {:?})",
        naive.timings.total(),
        naive.timings.copy,
        naive.timings.execution,
        naive.timings.delta
    );

    // A second, programmatically-built scenario: drop the loyalty discount.
    let drop_discount = ModificationSet::single_replace(
        3,
        Statement::update(
            "taxi_trips",
            SetClause::single("fare", mahif_expr::builder::attr("fare")),
            mahif_expr::Expr::false_(),
        ),
    );
    let answer2 = session
        .on("taxi")
        .modifications(drop_discount)
        .method(Method::ReenactPsDs)
        .run()
        .unwrap()
        .into_answer();
    println!(
        "dropping the long-trip discount would change {} trips",
        answer2
            .delta
            .relation("taxi_trips")
            .map(|d| d.plus_tuples().len())
            .unwrap_or(0)
    );
}
