//! Explaining a what-if answer: for every tuple of the delta, which input
//! tuple does it derive from, which statements touched it under the actual
//! and the hypothetical history, and where do the two runs diverge?
//!
//! ```text
//! cargo run --example explain_whatif
//! ```

use mahif::{Method, Session};
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::{History, ModificationSet};
use mahif_provenance::explain_answer;

fn main() {
    let db = running_example_database();
    let history = History::new(running_example_history());
    let session =
        Session::with_history("retail", db.clone(), history.clone()).expect("history executes");

    let modifications = ModificationSet::single_replace(0, running_example_u1_prime());
    let answer = session
        .on("retail")
        .modifications(modifications.clone())
        .method(Method::ReenactPsDs)
        .run()
        .expect("what-if succeeds")
        .into_answer();

    println!("What-if answer:\n{}", answer.delta);
    println!("Explanations:");
    let explanations =
        explain_answer(&history, &modifications, &db, &answer.delta).expect("lineage traces");
    for e in &explanations {
        print!("{e}");
    }
}
