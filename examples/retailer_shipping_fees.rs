//! The retailer scenario of the paper's introduction, written in SQL.
//!
//! The shipping-fee policy history is parsed from SQL text with
//! `mahif-sqlparse`, three different hypothetical changes are posed
//! (replacing a statement, deleting a statement, appending a statement), and
//! each is answered with every execution method to show they agree while
//! doing very different amounts of work.
//!
//! Run with:
//! ```text
//! cargo run --example retailer_shipping_fees
//! ```

use mahif::{Method, Session};
use mahif_history::statement::running_example_database;
use mahif_history::{Modification, ModificationSet};
use mahif_sqlparse::{parse_history, parse_statement};

fn main() {
    let database = running_example_database();

    // The policy as executed (Figure 2), in SQL.
    let history = parse_history(
        "UPDATE Order SET ShippingFee = 0 WHERE Price >= 50;
         UPDATE Order SET ShippingFee = ShippingFee + 5
           WHERE Country = 'UK' AND Price <= 100;
         UPDATE Order SET ShippingFee = ShippingFee - 2
           WHERE Price <= 30 AND ShippingFee >= 10;",
    )
    .expect("history parses");

    let session = Session::with_history("retail", database, history).expect("history executes");

    // Three hypothetical scenarios the analyst wants to compare.
    let scenarios: Vec<(&str, ModificationSet)> = vec![
        (
            "raise the free-shipping threshold to $60",
            ModificationSet::single_replace(
                0,
                parse_statement("UPDATE Order SET ShippingFee = 0 WHERE Price >= 60").unwrap(),
            ),
        ),
        (
            "never introduce the UK surcharge",
            ModificationSet::new(vec![Modification::delete(1)]),
        ),
        (
            "additionally charge US orders $1 more",
            ModificationSet::new(vec![Modification::insert(
                3,
                parse_statement(
                    "UPDATE Order SET ShippingFee = ShippingFee + 1 WHERE Country = 'US'",
                )
                .unwrap(),
            )]),
        ),
    ];

    for (label, modifications) in scenarios {
        println!("=== What if we had decided to {label}? ===");
        let mut reference = None;
        for method in Method::all() {
            let answer = session
                .on("retail")
                .modifications(modifications.clone())
                .method(method)
                .run()
                .unwrap()
                .into_answer();
            println!(
                "  {:<8} -> |Δ| = {}, {} of {} statements reenacted, {} of {} tuples read, {:?}",
                method.label(),
                answer.delta.len(),
                answer.stats.statements_reenacted,
                answer.stats.statements_total,
                answer.stats.input_tuples,
                answer.stats.total_tuples,
                answer.timings.total(),
            );
            match &reference {
                None => reference = Some(answer.delta.clone()),
                Some(r) => assert_eq!(r, &answer.delta, "methods must agree"),
            }
        }
        println!("  answer:\n{}", reference.unwrap());
    }
}
