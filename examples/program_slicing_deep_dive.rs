//! A look inside the program-slicing machinery (Sections 7–9 of the paper):
//! database compression, symbolic execution over VC-tables, the dependency
//! check posed to the solver, and the resulting slice.
//!
//! Run with:
//! ```text
//! cargo run --example program_slicing_deep_dive
//! ```

use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::{HistoricalWhatIf, History, ModificationSet};
use mahif_slicing::{program_slice, ProgramSlicingConfig};
use mahif_solver::{Domain, SatProblem, SatResult, Solver};
use mahif_symbolic::{compress_relation, CompressionConfig, VcTable};

fn main() {
    let database = running_example_database();
    let history = History::new(running_example_history());
    let query = HistoricalWhatIf::new(
        history.clone(),
        database.clone(),
        ModificationSet::single_replace(0, running_example_u1_prime()),
    );

    // 1. Compress the database into the constraint Φ_D (Example 7).
    let relation = database.relation("Order").unwrap();
    let phi_grouped = compress_relation(relation, &CompressionConfig::group_by("Country"));
    println!("Φ_D (grouped by Country):\n  {phi_grouped}\n");

    // 2. Symbolically execute the history over the single-tuple instance D0
    //    (Example 6 / Figure 10).
    let mut vc = VcTable::single_tuple(relation.schema.clone());
    vc.apply_history(history.statements()).unwrap();
    println!("VC-table after symbolically executing H:\n{vc}");

    // 3. The dependency question of Example 9, posed to the solver directly:
    //    is there a tuple affected by u1 (or u1') *and* by u2?
    use mahif_expr::builder::*;
    let mut problem = SatProblem::new(
        vec![
            (
                "x_Country_0".to_string(),
                Domain::StrChoices(vec!["UK".into(), "US".into()]),
            ),
            ("x_Price_0".to_string(), Domain::IntRange(20, 60)),
            ("x_ShippingFee_0".to_string(), Domain::IntRange(3, 5)),
        ],
        and(
            or(ge(var("x_Price_0"), lit(50)), ge(var("x_Price_0"), lit(60))),
            and(
                eq(var("x_Country_0"), slit("UK")),
                le(var("x_Price_0"), lit(100)),
            ),
        ),
    );
    problem.define(
        "x_ShippingFee_1",
        ite(
            ge(var("x_Price_0"), lit(50)),
            lit(0),
            var("x_ShippingFee_0"),
        ),
    );
    match Solver::new().check(&problem) {
        SatResult::Sat(witness) => {
            println!("u2 is DEPENDENT on the modification; witness tuple: {witness}\n")
        }
        other => println!("unexpected solver result: {other:?}\n"),
    }

    // 4. The full program slice computed by the engine: u3 is provably
    //    independent and excluded from reenactment.
    let normalized = query.normalize().unwrap();
    let slice = program_slice(
        &normalized.original,
        &normalized.modified,
        &normalized.modified_positions,
        &query.database,
        &ProgramSlicingConfig::default(),
    )
    .unwrap();
    println!(
        "program slice: keep statements {:?}, exclude {:?} ({} solver calls, {:?})",
        slice
            .kept_positions
            .iter()
            .map(|p| format!("u{}", p + 1))
            .collect::<Vec<_>>(),
        slice
            .excluded_positions
            .iter()
            .map(|p| format!("u{}", p + 1))
            .collect::<Vec<_>>(),
        slice.solver_calls,
        slice.duration,
    );

    // 5. The sliced histories still produce the exact answer.
    let sliced_original = normalized.original.restrict(&slice.kept_positions);
    let sliced_modified = normalized.modified.restrict(&slice.kept_positions);
    let left = sliced_original.execute(&query.database).unwrap();
    let right = sliced_modified.execute(&query.database).unwrap();
    let delta = mahif_history::DatabaseDelta::compute(&left, &right);
    println!("answer computed from the slice:\n{delta}");
    assert_eq!(delta, query.answer_by_direct_execution().unwrap());
}
