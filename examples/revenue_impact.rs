//! How would shipping-fee revenue be affected if the free-shipping threshold
//! had been $60 instead of $50?
//!
//! This is the paper's motivating question asked end-to-end: the historical
//! what-if query produces the delta, and the impact layer reduces it to the
//! aggregate revenue change (globally and per country).
//!
//! ```text
//! cargo run --example revenue_impact
//! ```

use mahif::{ImpactSpec, Method, Session};
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::History;

fn main() {
    let session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .expect("history executes");

    println!("Current orders (after the shipping-fee policy):");
    let retail = session.history("retail").unwrap();
    let current = retail.current_state();
    for t in current.relation("Order").unwrap().iter() {
        println!("  {t}");
    }

    // "What if the price threshold for waiving shipping fees had been $60?"
    // The impact spec rides along with the request; the report's baseline is
    // taken from the registered history's current state.
    let response = session
        .on("retail")
        .replace(0, running_example_u1_prime())
        .method(Method::ReenactPsDs)
        .impact(ImpactSpec::sum_of("Order", "ShippingFee").grouped_by("Country"))
        .run()
        .expect("what-if succeeds");

    let answer = response.answer();
    let report = response.impact().expect("impact was requested");
    println!("\nDelta of the hypothetical history:\n{}", answer.delta);
    println!("{report}");
    println!(
        "(answered with {} of {} statements reenacted over {} of {} tuples)",
        answer.stats.statements_reenacted,
        answer.stats.statements_total,
        answer.stats.input_tuples,
        answer.stats.total_tuples,
    );
}
