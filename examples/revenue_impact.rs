//! How would shipping-fee revenue be affected if the free-shipping threshold
//! had been $60 instead of $50?
//!
//! This is the paper's motivating question asked end-to-end: the historical
//! what-if query produces the delta, and the impact layer reduces it to the
//! aggregate revenue change (globally and per country).
//!
//! ```text
//! cargo run --example revenue_impact
//! ```

use mahif::{ImpactSpec, Mahif, Method};
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::{History, ModificationSet};

fn main() {
    let mahif = Mahif::new(
        running_example_database(),
        History::new(running_example_history()),
    )
    .expect("history executes");

    println!("Current orders (after the shipping-fee policy):");
    for t in mahif.current_state().relation("Order").unwrap().iter() {
        println!("  {t}");
    }

    // "What if the price threshold for waiving shipping fees had been $60?"
    let modifications = ModificationSet::single_replace(0, running_example_u1_prime());
    let spec = ImpactSpec::sum_of("Order", "ShippingFee").grouped_by("Country");
    let (answer, report) = mahif
        .what_if_impact(&modifications, Method::ReenactPsDs, &spec)
        .expect("what-if succeeds");

    println!("\nDelta of the hypothetical history:\n{}", answer.delta);
    println!("{report}");
    println!(
        "(answered with {} of {} statements reenacted over {} of {} tuples)",
        answer.stats.statements_reenacted,
        answer.stats.statements_total,
        answer.stats.input_tuples,
        answer.stats.total_tuples,
    );
}
