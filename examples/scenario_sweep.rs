//! Scenario sweep: the running example's what-if question asked five times
//! at once.
//!
//! The paper's analyst asks one hypothetical — *"what if the free-shipping
//! threshold had been $60 instead of $50?"*. A real analyst sweeps the
//! parameter: *"…$55? $60? $65? $70? $75?"*. The scenario batch engine
//! answers all five over the same registered history, normalizing once,
//! computing **one** shared program slice for the whole sweep and running
//! the scenarios in parallel, then ranks them by shipping-fee revenue.
//!
//! Run with:
//! ```text
//! cargo run --example scenario_sweep
//! ```

use mahif::{ImpactSpec, Mahif, Method};
use mahif_expr::builder::*;
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, SetClause, Statement};
use mahif_scenario::{Scenario, ScenarioSet};

fn main() {
    // The Order table of Figure 1 and the shipping-fee history of Figure 2.
    let mahif = Mahif::new(
        running_example_database(),
        History::new(running_example_history()),
    )
    .expect("history executes");

    // Sweep u1's free-shipping threshold: one scenario per candidate value,
    // all replacing statement 0 of the history.
    let mut set = ScenarioSet::new(&mahif);
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [55i64, 60, 65, 70, 75],
        |t| {
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(0)),
                ge(attr("Price"), lit(*t)),
            )
        },
    ))
    .expect("scenario names are unique");

    println!("Scenarios:");
    for s in set.scenarios() {
        println!("  {s}");
    }

    // Answer the whole batch with the fully optimized method.
    let batch = set
        .answer_all(Method::ReenactPsDs)
        .expect("batch answering succeeds");
    println!(
        "\nAnswered {} scenarios on {} threads: {} shared program slice(s), \
         {} cache hit(s), total {:?}",
        batch.stats.scenarios,
        batch.stats.threads,
        batch.stats.slice_groups,
        batch.stats.shared_slice_hits,
        batch.stats.total,
    );

    // Rank the hypothetical thresholds by shipping-fee revenue.
    let ranking = batch
        .rank_by_with_baseline(
            &ImpactSpec::sum_of("Order", "ShippingFee"),
            mahif.current_state(),
        )
        .expect("impact ranking succeeds");
    println!("\n{ranking}");

    // The batch answers are exactly the single-query answers.
    for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
        let single = mahif
            .what_if(scenario.modifications(), Method::ReenactPsDs)
            .unwrap();
        assert_eq!(single.delta, answer.answer.delta);
    }
    println!("(verified: every batch delta equals the independent what-if answer)");
}
