//! Scenario sweep: the running example's what-if question asked five times
//! at once, batch-first.
//!
//! The paper's analyst asks one hypothetical — *"what if the free-shipping
//! threshold had been $60 instead of $50?"*. A real analyst sweeps the
//! parameter: *"…$55? $60? $65? $70? $75?"*. A single `run_batch` request
//! answers all five over the registered history: the session funnel
//! normalizes each scenario once, computes **one** shared program slice for
//! the whole sweep, runs the scenarios in parallel and attaches an impact
//! report per scenario. The `ScenarioSet` layer then ranks the thresholds
//! by shipping-fee revenue.
//!
//! Run with:
//! ```text
//! cargo run --example scenario_sweep
//! ```

use mahif::{sweep, ImpactSpec, Method, Session};
use mahif_expr::builder::*;
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, SetClause, Statement};
use mahif_scenario::{Scenario, ScenarioSet};

fn threshold(t: i64) -> Statement {
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(t)),
    )
}

fn main() {
    // The Order table of Figure 1 and the shipping-fee history of Figure 2,
    // registered once.
    let session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .expect("history executes");

    // Sweep u1's free-shipping threshold: one scenario per candidate value,
    // all replacing statement 0 of the history — answered by one request.
    let response = session
        .on("retail")
        .method(Method::ReenactPsDs)
        .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
        .run_batch(sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| {
            threshold(*t)
        }))
        .expect("batch answering succeeds");

    println!(
        "Answered {} scenarios on {} threads: {} shared program slice(s), \
         {} cache hit(s), total {:?}",
        response.stats.scenarios,
        response.stats.threads,
        response.stats.slice_groups,
        response.stats.shared_slice_hits,
        response.stats.total,
    );
    for s in &response {
        let report = s.impact.as_ref().expect("impact was requested");
        println!(
            "  {:<14} |Δ| = {}  fee revenue {:+}",
            s.name,
            s.answer.delta.len(),
            report.net_change()
        );
    }

    // The ScenarioSet layer offers the same sweep with named scenarios and
    // a ranked impact table.
    let mut set = ScenarioSet::over(&session, "retail");
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [55i64, 60, 65, 70, 75],
        |t| threshold(*t),
    ))
    .expect("scenario names are unique");
    let batch = set
        .answer_all(Method::ReenactPsDs)
        .expect("batch answering succeeds");
    let ranking = batch
        .rank_by_with_baseline(
            &ImpactSpec::sum_of("Order", "ShippingFee"),
            session.history("retail").unwrap().current_state(),
        )
        .expect("impact ranking succeeds");
    println!("\n{ranking}");

    // The batch answers are exactly the single-query answers — single
    // queries are batches of one through the same funnel.
    for t in [55i64, 60, 65, 70, 75] {
        let single = session
            .on("retail")
            .replace(0, threshold(t))
            .method(Method::ReenactPsDs)
            .run()
            .unwrap();
        let in_batch = response.get(&format!("threshold/{t}")).unwrap();
        assert_eq!(single.delta(), &in_batch.answer.delta);
    }
    println!("(verified: every batch delta equals the independent what-if answer)");
}
