//! Causal augmentation of a what-if query: "what if customer Ada had never
//! signed up?" — her orders and their line items could then never have been
//! inserted either, so the dependency policy removes those inserts from the
//! hypothetical history before the what-if query is answered.
//!
//! ```text
//! cargo run --example causal_cascade
//! ```

use mahif::{Method, Session};
use mahif_causal::{augment, CascadeRule, DependencyPolicy};
use mahif_expr::builder::*;
use mahif_expr::Value;
use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};
use mahif_storage::{Attribute, Database, Schema, Tuple};

fn database() -> Database {
    let mut db = Database::new();
    db.create_relation(Schema::shared(
        "Customer",
        vec![Attribute::int("CID"), Attribute::str("Name")],
    ))
    .unwrap();
    db.create_relation(Schema::shared(
        "Order",
        vec![
            Attribute::int("OID"),
            Attribute::int("CustomerID"),
            Attribute::int("Total"),
        ],
    ))
    .unwrap();
    db
}

fn history() -> History {
    History::new(vec![
        Statement::insert_values(
            "Customer",
            Tuple::new(vec![Value::int(1), Value::str("Ada")]),
        ),
        Statement::insert_values(
            "Customer",
            Tuple::new(vec![Value::int(2), Value::str("Bob")]),
        ),
        Statement::insert_values(
            "Order",
            Tuple::new(vec![Value::int(10), Value::int(1), Value::int(100)]),
        ),
        Statement::insert_values(
            "Order",
            Tuple::new(vec![Value::int(11), Value::int(2), Value::int(70)]),
        ),
        Statement::update(
            "Order",
            SetClause::single("Total", add(attr("Total"), lit(5))),
            ge(attr("Total"), lit(80)),
        ),
    ])
}

fn main() {
    let db = database();
    let history = history();
    let session =
        Session::with_history("shop", db.clone(), history.clone()).expect("history executes");

    // The analyst only states the direct hypothetical change ...
    let user_modifications = ModificationSet::new(vec![Modification::delete(0)]);

    // ... and the dependency policy derives what else could not have happened.
    let policy = DependencyPolicy::default().with_rule(CascadeRule::new(
        "Customer",
        "CID",
        "Order",
        "CustomerID",
    ));
    let (augmented, plan) =
        augment(&history, &user_modifications, &db, &policy).expect("cascade analysis");
    println!("{plan}");

    let without = session
        .on("shop")
        .modifications(user_modifications.clone())
        .method(Method::ReenactPsDs)
        .run()
        .expect("what-if succeeds");
    let with = session
        .on("shop")
        .modifications(augmented.clone())
        .method(Method::ReenactPsDs)
        .run()
        .expect("what-if succeeds");

    println!("Delta without causal augmentation:\n{}", without.delta());
    println!("Delta with causal augmentation:\n{}", with.delta());
}
