//! Quickstart: the running example of the paper (Figures 1–4) on the
//! session API.
//!
//! An online retailer implemented a new shipping-fee policy as three updates.
//! The analyst asks: *"what if the free-shipping threshold had been $60
//! instead of $50?"* — a historical what-if query replacing the first update
//! of the history.
//!
//! The workflow is register-once / ask-many: a [`Session`] materializes the
//! version chain when the history is registered, and every what-if request
//! (built fluently with `session.on(..)`) borrows that state — no per-query
//! copies of the history or database.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use mahif::{Method, Session};
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::History;

fn main() {
    // The Order table of Figure 1 and the shipping-fee history of Figure 2.
    let database = running_example_database();
    let history = History::new(running_example_history());
    println!("History:\n{history}");

    // Register both under a name; this materializes the version chain used
    // for time travel, exactly once.
    let session = Session::with_history("retail", database, history).expect("history executes");
    let retail = session.history("retail").unwrap();
    println!("Current state (Figure 3):\n{}", retail.current_state());

    // Bob's what-if question: replace u1 by u1' (threshold $60 instead of $50),
    // answered with the fully optimized method (Algorithm 2).
    let response = session
        .on("retail")
        .replace(0, running_example_u1_prime())
        .method(Method::ReenactPsDs)
        .run()
        .expect("what-if answering succeeds");

    println!("Answer Δ(H(D), H[M](D)) — Example 2 of the paper:");
    print!("{}", response.answer());

    // The same answer is produced by every method; the optimized one reenacts
    // fewer statements over less data.
    let naive = session
        .on("retail")
        .replace(0, running_example_u1_prime())
        .method(Method::Naive)
        .run()
        .unwrap();
    assert_eq!(naive.delta(), response.delta());
    println!(
        "naive total: {:?}, optimized total: {:?}",
        naive.answer().timings.total(),
        response.answer().timings.total()
    );

    // The session registered the history once, no matter how many requests ran.
    let stats = session.stats();
    println!(
        "session: {} request(s) answered over {} registered version chain(s)",
        stats.requests, stats.version_chains_built
    );
}
