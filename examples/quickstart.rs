//! Quickstart: the running example of the paper (Figures 1–4).
//!
//! An online retailer implemented a new shipping-fee policy as three updates.
//! The analyst asks: *"what if the free-shipping threshold had been $60
//! instead of $50?"* — a historical what-if query replacing the first update
//! of the history.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use mahif::{Mahif, Method};
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::{History, ModificationSet};

fn main() {
    // The Order table of Figure 1 and the shipping-fee history of Figure 2.
    let database = running_example_database();
    let history = History::new(running_example_history());
    println!("History:\n{history}");

    // Register both with the middleware; this materializes the version chain
    // used for time travel.
    let mahif = Mahif::new(database, history).expect("history executes");
    println!("Current state (Figure 3):\n{}", mahif.current_state());

    // Bob's what-if question: replace u1 by u1' (threshold $60 instead of $50).
    let modifications = ModificationSet::single_replace(0, running_example_u1_prime());
    println!("Hypothetical change: {modifications}");

    // Answer it with the fully optimized method (Algorithm 2).
    let answer = mahif
        .what_if(&modifications, Method::ReenactPsDs)
        .expect("what-if answering succeeds");

    println!("Answer Δ(H(D), H[M](D)) — Example 2 of the paper:");
    print!("{answer}");

    // The same answer is produced by every method; the optimized one reenacts
    // fewer statements over less data.
    let naive = mahif.what_if(&modifications, Method::Naive).unwrap();
    assert_eq!(naive.delta, answer.delta);
    println!(
        "naive total: {:?}, optimized total: {:?}",
        naive.timings.total(),
        answer.timings.total()
    );
}
