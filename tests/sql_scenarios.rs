//! Integration tests driving the engine entirely through SQL text
//! (`mahif-sqlparse`) — the way the examples and a downstream user would use
//! the library.

use mahif::{Method, Session};
use mahif_expr::Value;
use mahif_history::statement::running_example_database;
use mahif_history::{Modification, ModificationSet};
use mahif_sqlparse::{parse_history, parse_statement};
use mahif_workload::{Dataset, DatasetKind};

#[test]
fn running_example_in_sql_matches_the_paper() {
    let history = parse_history(
        "UPDATE Order SET ShippingFee = 0 WHERE Price >= 50;
         UPDATE Order SET ShippingFee = ShippingFee + 5
           WHERE Country = 'UK' AND Price <= 100;
         UPDATE Order SET ShippingFee = ShippingFee - 2
           WHERE Price <= 30 AND ShippingFee >= 10;",
    )
    .unwrap();
    let session = Session::with_history("retail", running_example_database(), history).unwrap();

    let modifications = ModificationSet::single_replace(
        0,
        parse_statement("UPDATE Order SET ShippingFee = 0 WHERE Price >= 60").unwrap(),
    );

    for method in Method::all() {
        let answer = session
            .on("retail")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .unwrap()
            .into_answer();
        // Example 2: Δ = {−o6, +o6'} — Alex's order pays 10 instead of 5.
        assert_eq!(answer.delta.len(), 2, "method {}", method.label());
        let order = answer.delta.relation("Order").unwrap();
        assert_eq!(order.minus_tuples()[0].value(0), Some(&Value::int(12)));
        assert_eq!(order.minus_tuples()[0].value(4), Some(&Value::int(5)));
        assert_eq!(order.plus_tuples()[0].value(4), Some(&Value::int(10)));
    }
}

#[test]
fn sql_history_with_insert_select_and_case() {
    // A history that uses INSERT ... SELECT and CASE WHEN, both supported by
    // the parser and the engine.
    let history = parse_history(
        "UPDATE Order SET ShippingFee = CASE WHEN Price >= 50 THEN 0 ELSE ShippingFee END;
         INSERT INTO Order SELECT ID + 100 AS ID, Customer, Country, Price, ShippingFee
           FROM Order WHERE Country = 'UK';
         UPDATE Order SET ShippingFee = ShippingFee + 1 WHERE ID >= 100;",
    )
    .unwrap();
    let session = Session::with_history("retail", running_example_database(), history).unwrap();
    // Current state: 4 original + 2 archived UK orders.
    let retail = session.history("retail").unwrap();
    let current = retail.current_state();
    assert_eq!(current.relation("Order").unwrap().len(), 6);

    let modifications = ModificationSet::single_replace(
        2,
        parse_statement("UPDATE Order SET ShippingFee = ShippingFee + 3 WHERE ID >= 100").unwrap(),
    );
    let mut reference = None;
    for method in Method::all() {
        let answer = session
            .on("retail")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .unwrap()
            .into_answer();
        match &reference {
            None => reference = Some(answer.delta.clone()),
            Some(r) => assert_eq!(r, &answer.delta, "method {}", method.label()),
        }
    }
    // The two archived UK orders get a different surcharge: 2 minus + 2 plus.
    assert_eq!(reference.unwrap().len(), 4);
}

#[test]
fn taxi_policy_scenario_in_sql() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 400, 5);
    let history = parse_history(
        "UPDATE taxi_trips SET extras = extras + 400 WHERE pickup_area >= 70;
         UPDATE taxi_trips SET tips = tips + 25 WHERE trip_miles_x100 >= 1500;
         UPDATE taxi_trips SET trip_total = fare + tips + tolls + extras;",
    )
    .unwrap();
    let session = Session::with_history("taxi", dataset.database.clone(), history).unwrap();

    let what_if = ModificationSet::new(vec![Modification::replace(
        0,
        parse_statement("UPDATE taxi_trips SET extras = extras + 600 WHERE pickup_area >= 70")
            .unwrap(),
    )]);
    let optimized = session
        .on("taxi")
        .modifications(what_if.clone())
        .method(Method::ReenactPsDs)
        .run()
        .unwrap()
        .into_answer();
    let naive = session
        .on("taxi")
        .modifications(what_if.clone())
        .method(Method::Naive)
        .run()
        .unwrap()
        .into_answer();
    assert_eq!(optimized.delta, naive.delta);
    // Only airport-area trips differ; the delta is a strict subset of all
    // trips and data slicing must have filtered the input accordingly.
    assert!(!optimized.delta.is_empty());
    assert!(optimized.stats.input_tuples < dataset.rows);
    // The final total-recomputation statement depends on the modified
    // surcharge, so program slicing must keep it.
    assert_eq!(optimized.stats.statements_reenacted, 3);
}

#[test]
fn parse_errors_surface_cleanly() {
    assert!(parse_history("UPDATE Order SET WHERE x = 1").is_err());
    assert!(parse_statement("DROP TABLE Order").is_err());
}

#[test]
fn whatif_script_end_to_end() {
    // The running example posed entirely in SQL text: history plus a what-if
    // script replacing the free-shipping threshold and dropping the discount
    // statement.
    let history = parse_history(
        "UPDATE Order SET ShippingFee = 0 WHERE Price >= 50;
         UPDATE Order SET ShippingFee = ShippingFee + 5 WHERE Country = 'UK' AND Price <= 100;
         UPDATE Order SET ShippingFee = ShippingFee - 2 WHERE Price <= 30 AND ShippingFee >= 10;",
    )
    .unwrap();
    let session = Session::with_history("retail", running_example_database(), history).unwrap();
    let answer = session
        .on("retail")
        .sql("REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60;")
        .method(Method::ReenactPsDs)
        .run()
        .unwrap();
    // Same answer as the hand-built running example: Alex's order changes.
    assert_eq!(answer.delta().len(), 2);

    // Dropping the UK surcharge statement affects both UK orders.
    let answer = session
        .on("retail")
        .sql("DROP STATEMENT 2;")
        .method(Method::ReenactPsDs)
        .run()
        .unwrap();
    let naive = session
        .on("retail")
        .sql("DROP STATEMENT 2;")
        .method(Method::Naive)
        .run()
        .unwrap();
    assert_eq!(answer.delta(), naive.delta());
    assert!(answer.delta().len() >= 2);

    // Scripts with several clauses and 1-based numbering.
    let m = mahif_sqlparse::parse_whatif(
        "REPLACE STATEMENT 2 WITH UPDATE Order SET ShippingFee = ShippingFee + 6 WHERE Country = 'UK';
         INSERT STATEMENT AT 4 DELETE FROM Order WHERE Price < 10;
         DROP STATEMENT 3;",
    )
    .unwrap();
    assert_eq!(m.len(), 3);

    // Errors surface cleanly and carry the scenario/history context.
    let err = session
        .on("retail")
        .sql("FROBNICATE STATEMENT 1")
        .method(Method::Naive)
        .run()
        .unwrap_err();
    assert!(matches!(err.kind, mahif::ErrorKind::InvalidWhatIfScript(_)));
    assert!(err.to_string().contains("history 'retail'"), "{err}");
    assert!(mahif_sqlparse::parse_whatif("DROP STATEMENT 0").is_err());
}
