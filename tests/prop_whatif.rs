//! Property-based correctness tests: for *randomly generated* databases,
//! histories and modifications, every execution method must produce exactly
//! the answer obtained by directly executing the original and modified
//! histories. This exercises the whole stack — reenactment, data slicing,
//! program slicing, the symbolic execution and the solver — against the
//! ground truth.

use proptest::prelude::*;

use mahif::{Method, Session};
use mahif_expr::builder::*;
use mahif_expr::Expr;
use mahif_history::{
    HistoricalWhatIf, History, Modification, ModificationSet, SetClause, Statement,
};
use mahif_storage::{Attribute, Database, Relation, Schema, Tuple};

/// A compact description of a generated update/delete statement over the
/// two-integer-attribute relation `R(K, V)`.
#[derive(Debug, Clone)]
enum GenStatement {
    /// `UPDATE R SET V = V + delta WHERE lo <= K AND K < hi`
    UpdateByKey { lo: i64, hi: i64, delta: i64 },
    /// `UPDATE R SET V = c WHERE V >= threshold`
    UpdateByValue { threshold: i64, value: i64 },
    /// `DELETE FROM R WHERE lo <= K AND K < hi`
    DeleteByKey { lo: i64, hi: i64 },
    /// `INSERT INTO R VALUES (k, v)`
    Insert { k: i64, v: i64 },
}

impl GenStatement {
    fn to_statement(&self) -> Statement {
        match self {
            GenStatement::UpdateByKey { lo, hi, delta } => Statement::update(
                "R",
                SetClause::single("V", add(attr("V"), lit(*delta))),
                and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))),
            ),
            GenStatement::UpdateByValue { threshold, value } => Statement::update(
                "R",
                SetClause::single("V", lit(*value)),
                ge(attr("V"), lit(*threshold)),
            ),
            GenStatement::DeleteByKey { lo, hi } => {
                Statement::delete("R", and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))))
            }
            GenStatement::Insert { k, v } => {
                Statement::insert_values("R", Tuple::from_iter_values([*k, *v]))
            }
        }
    }
}

fn arb_statement() -> impl Strategy<Value = GenStatement> {
    prop_oneof![
        (0i64..20, 1i64..10, -5i64..10).prop_map(|(lo, len, delta)| GenStatement::UpdateByKey {
            lo,
            hi: lo + len,
            delta,
        }),
        (0i64..60, 0i64..50)
            .prop_map(|(threshold, value)| GenStatement::UpdateByValue { threshold, value }),
        (0i64..20, 1i64..5).prop_map(|(lo, len)| GenStatement::DeleteByKey { lo, hi: lo + len }),
        (30i64..40, 0i64..50).prop_map(|(k, v)| GenStatement::Insert { k, v }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<GenStatement>> {
    prop::collection::vec(arb_statement(), 1..8)
}

/// The database `R(K, V)` with keys `0..rows` and pseudo-random values.
fn database(rows: usize, values: &[i64]) -> Database {
    let schema = Schema::shared("R", vec![Attribute::int("K"), Attribute::int("V")]);
    let mut relation = Relation::empty(schema);
    for k in 0..rows {
        let v = values[k % values.len()].rem_euclid(50);
        relation
            .insert(Tuple::from_iter_values([k as i64, v]))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation(relation).unwrap();
    db
}

fn check_all_methods(
    db: &Database,
    statements: &[GenStatement],
    modifications: ModificationSet,
) -> Result<(), TestCaseError> {
    let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
    let reference = HistoricalWhatIf::new(history.clone(), db.clone(), modifications.clone())
        .answer_by_direct_execution()
        .expect("direct execution succeeds");
    let session = Session::with_history("prop", db.clone(), history).expect("history executes");
    for method in Method::all() {
        let answer = session
            .on("prop")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .expect("what-if succeeds")
            .into_answer();
        prop_assert_eq!(
            &answer.delta,
            &reference,
            "method {} disagrees with direct execution",
            method.label()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replacing a random statement with another random statement of the same
    /// kind never changes the agreement between methods.
    #[test]
    fn replacement_modifications_agree(
        statements in arb_history(),
        replacement in arb_statement(),
        position_seed in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let position = position_seed % statements.len();
        let modifications = ModificationSet::new(vec![Modification::replace(
            position,
            replacement.to_statement(),
        )]);
        check_all_methods(&db, &statements, modifications)?;
    }

    /// Deleting a random statement from the history.
    #[test]
    fn deletion_modifications_agree(
        statements in arb_history(),
        position_seed in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let position = position_seed % statements.len();
        let modifications = ModificationSet::new(vec![Modification::delete(position)]);
        check_all_methods(&db, &statements, modifications)?;
    }

    /// Inserting a random statement into the history.
    #[test]
    fn insertion_modifications_agree(
        statements in arb_history(),
        inserted in arb_statement(),
        position_seed in 0usize..9,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let position = position_seed % (statements.len() + 1);
        let modifications = ModificationSet::new(vec![Modification::insert(
            position,
            inserted.to_statement(),
        )]);
        check_all_methods(&db, &statements, modifications)?;
    }

    /// Grouped batches: k replacement scenarios at the *same* position form
    /// one slice-sharing group answered via a group plan (shared original
    /// reenactment, shared slice). Every member's delta must equal its
    /// independent single-query answer under every method — including
    /// histories containing inserts (the generator produces
    /// `INSERT INTO R VALUES`), so the insert-split survives the
    /// original-side caching. Also exercises the refinement ablation.
    #[test]
    fn grouped_batches_match_singles(
        statements in arb_history(),
        replacements in prop::collection::vec(arb_statement(), 2..5),
        position_seed in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
        let session =
            Session::with_history("prop", db, history.clone()).expect("history executes");
        let position = position_seed % statements.len();
        let scenarios: Vec<(String, ModificationSet)> = replacements
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    format!("s{i}"),
                    ModificationSet::single_replace(position, r.to_statement()),
                )
            })
            .collect();
        // The expected grouping, derived from the same normalization the
        // funnel uses: scenarios group when `(original, positions)` agree
        // (replacing an insert with a different-kind statement pads the
        // histories and lands in a different group than an insert-to-insert
        // replacement, and a replacement equal to the original normalizes
        // to no positions at all).
        let normalized: Vec<mahif_history::NormalizedWhatIf> = scenarios
            .iter()
            .map(|(_, m)| {
                let (original, modified, modified_positions) =
                    m.normalize(&history).expect("normalizes");
                mahif_history::NormalizedWhatIf {
                    original,
                    modified,
                    modified_positions,
                }
            })
            .collect();
        let expected_groups = mahif_slicing::group_scenarios(&normalized);
        let expected_reenactments = expected_groups
            .groups
            .iter()
            .filter(|g| !g.positions.is_empty())
            .count();
        for method in Method::all() {
            // The analyzer ablation keeps the derived grouping exact: with
            // the analyzer on, a replacement that normalizes to no
            // positions (equal to the original) is proven a no-op at
            // admission and never reaches planning, shrinking
            // `slice_groups` below the expectation. The singles below stay
            // on the default path, so the delta comparison also
            // cross-checks analyzer-on against analyzer-off answers.
            let batch = session
                .on("prop")
                .method(method)
                .without_analyzer()
                .run_batch(scenarios.clone())
                .expect("batch succeeds");
            // One original reenactment per non-empty group (the single
            // relation `R`), never one per scenario.
            if method.uses_program_slicing() {
                prop_assert_eq!(
                    batch.stats.slice_groups,
                    expected_groups.groups.len(),
                    "statements {:?} replacements {:?} position {}",
                    statements,
                    replacements,
                    position
                );
                prop_assert_eq!(
                    batch.stats.original_reenactments,
                    expected_reenactments,
                    "statements {:?} replacements {:?} position {}",
                    statements,
                    replacements,
                    position
                );
            }
            for (name, mods) in &scenarios {
                let single = session
                    .on("prop")
                    .modifications(mods.clone())
                    .method(method)
                    .run()
                    .expect("single what-if succeeds")
                    .into_answer();
                prop_assert_eq!(
                    &batch.get(name).unwrap().answer.delta,
                    &single.delta,
                    "scenario {} method {}",
                    name,
                    method.label()
                );
            }
        }
        // The refinement path answers identically too.
        let refined = session
            .on("prop")
            .method(Method::ReenactPsDs)
            .with_slice_refinement()
            .run_batch(scenarios.clone())
            .expect("refined batch succeeds");
        for (name, mods) in &scenarios {
            let single = session
                .on("prop")
                .modifications(mods.clone())
                .run()
                .expect("single what-if succeeds")
                .into_answer();
            prop_assert_eq!(
                &refined.get(name).unwrap().answer.delta,
                &single.delta,
                "refined scenario {}",
                name
            );
        }
    }

    /// Two modifications at once (replace + delete).
    #[test]
    fn multiple_modifications_agree(
        statements in prop::collection::vec(arb_statement(), 2..8),
        replacement in arb_statement(),
        seed_a in 0usize..8,
        seed_b in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let pos_a = seed_a % statements.len();
        let pos_b = seed_b % statements.len();
        let modifications = ModificationSet::new(vec![
            Modification::replace(pos_a, replacement.to_statement()),
            Modification::delete(pos_b),
        ]);
        check_all_methods(&db, &statements, modifications)?;
    }
}

/// A non-random regression guard: the no-op modification (replacing a
/// statement with itself) always yields an empty delta under every method.
#[test]
fn self_replacement_yields_empty_delta() {
    let db = database(25, &[3, 7, 11, 42]);
    let statements = [
        GenStatement::UpdateByKey {
            lo: 0,
            hi: 10,
            delta: 5,
        },
        GenStatement::DeleteByKey { lo: 15, hi: 18 },
    ];
    let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
    let session = Session::with_history("prop", db, history.clone()).unwrap();
    let modifications = ModificationSet::single_replace(0, history.statements()[0].clone());
    for method in Method::all() {
        let answer = session
            .on("prop")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .unwrap();
        assert!(answer.delta().is_empty(), "method {}", method.label());
    }
}

/// Another targeted case: a modification whose condition is unsatisfiable
/// over the data (no tuple has K >= 1000) produces an empty delta, and
/// program slicing excludes every statement.
#[test]
fn unsatisfiable_modification_produces_empty_answer() {
    let db = database(25, &[1, 2, 3]);
    let statements = [
        GenStatement::UpdateByKey {
            lo: 0,
            hi: 10,
            delta: 5,
        },
        GenStatement::UpdateByKey {
            lo: 5,
            hi: 15,
            delta: 2,
        },
    ];
    let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
    let session = Session::with_history("prop", db, history).unwrap();
    // Replace u1 with an update over an empty key range: both histories then
    // differ only in a statement that never fires.
    let never = Statement::update(
        "R",
        SetClause::single("V", lit(0)),
        and(ge(attr("K"), lit(1000)), lt(attr("K"), lit(1001))),
    );
    let modifications = ModificationSet::new(vec![Modification::insert(2, never)]);
    for method in Method::all() {
        let answer = session
            .on("prop")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .unwrap();
        assert!(answer.delta().is_empty(), "method {}", method.label());
    }
    let optimized = session
        .on("prop")
        .modifications(modifications.clone())
        .method(Method::ReenactPsDs)
        .run()
        .unwrap()
        .into_answer();
    // Data slicing filters every input tuple (the modified statement's
    // condition matches nothing in the key domain).
    assert_eq!(optimized.stats.input_tuples, 0);
    let _ = Expr::true_();
}
