//! Integration tests for the `Session`/`WhatIfRequest` redesign:
//!
//! * the deprecated `Mahif` shim is byte-identical to a hand-built session
//!   (it funnels into the same `Session::execute` path);
//! * a session answers k sweep queries without re-executing or re-cloning
//!   the registered version chain (observable via `Session::stats`);
//! * error paths surface the unified `mahif::Error` and its `Display`
//!   names the offending scenario and history;
//! * `Method` round-trips its paper labels through `Display`/`FromStr`.

use mahif::{ErrorKind, Method, Session};
use mahif_expr::builder::*;
use mahif_history::statement::{
    running_example_database, running_example_history, running_example_u1_prime,
};
use mahif_history::{History, ModificationSet, SetClause, Statement};

fn retail_session() -> Session {
    Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap()
}

fn threshold(t: i64) -> Statement {
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(t)),
    )
}

/// Acceptance criterion: the deprecated shim's answers are byte-identical
/// to the session's, for every method, for plain and SQL and impact calls.
#[test]
#[allow(deprecated)]
fn deprecated_shim_is_byte_identical_to_session() {
    let mahif = mahif::Mahif::new(
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap();
    let session = retail_session();
    let mods = ModificationSet::single_replace(0, running_example_u1_prime());

    for method in Method::all() {
        let shim = mahif.what_if(&mods, method).unwrap();
        let new = session
            .on("retail")
            .modifications(mods.clone())
            .method(method)
            .run()
            .unwrap();
        assert_eq!(&shim.delta, new.delta(), "method {method}");
        assert_eq!(
            shim.stats.statements_reenacted,
            new.answer().stats.statements_reenacted,
            "method {method}"
        );
        assert_eq!(
            shim.stats.input_tuples,
            new.answer().stats.input_tuples,
            "method {method}"
        );
    }

    let script = "REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60";
    let shim_sql = mahif.what_if_sql(script, Method::ReenactPsDs).unwrap();
    let new_sql = session
        .on("retail")
        .sql(script)
        .method(Method::ReenactPsDs)
        .run()
        .unwrap();
    assert_eq!(&shim_sql.delta, new_sql.delta());

    let spec = mahif::ImpactSpec::sum_of("Order", "ShippingFee");
    let (shim_answer, shim_report) = mahif
        .what_if_impact(&mods, Method::ReenactPsDs, &spec)
        .unwrap();
    let new_impact = session
        .on("retail")
        .modifications(mods.clone())
        .method(Method::ReenactPsDs)
        .impact(spec)
        .run()
        .unwrap();
    assert_eq!(&shim_answer.delta, new_impact.delta());
    assert_eq!(Some(&shim_report), new_impact.impact());
}

/// Regression for the borrow refactor: answering k sweep queries neither
/// re-executes nor re-clones the registered version chain — the session
/// materializes it exactly once at registration.
#[test]
fn k_sweep_queries_reuse_the_registered_version_chain() {
    let session = retail_session();
    assert_eq!(session.stats().version_chains_built, 1);

    let thresholds = [52i64, 55, 58, 60, 65, 70, 75, 100];
    for &t in &thresholds {
        let response = session
            .on("retail")
            .replace(0, threshold(t))
            .method(Method::ReenactPsDs)
            .run()
            .unwrap();
        assert_eq!(response.stats.scenarios, 1);
    }

    let stats = session.stats();
    assert_eq!(
        stats.version_chains_built, 1,
        "k queries must not re-execute the registered history"
    );
    assert_eq!(stats.requests, thresholds.len() as u64);
    assert_eq!(stats.scenarios_answered, thresholds.len() as u64);

    // The same sweep as one batch: one more request, one shared slice for
    // all k scenarios, and still exactly one version chain.
    let response = session
        .on("retail")
        .method(Method::ReenactPsDs)
        .run_batch(mahif::sweep("threshold", 0, thresholds, |t| threshold(*t)))
        .unwrap();
    assert_eq!(response.stats.slice_groups, 1);
    assert_eq!(response.stats.shared_slice_hits, thresholds.len() - 1);
    let stats = session.stats();
    assert_eq!(stats.version_chains_built, 1);
    assert_eq!(stats.requests, thresholds.len() as u64 + 1);
    assert_eq!(stats.slices_shared as usize, thresholds.len() - 1);
}

/// Malformed what-if SQL surfaces the unified error, naming the scenario
/// and the history.
#[test]
fn malformed_sql_names_the_offending_scenario() {
    let session = retail_session();
    let err = session
        .on("retail")
        .named("bad-script")
        .sql("FROBNICATE STATEMENT 1")
        .method(Method::ReenactPsDs)
        .run()
        .unwrap_err();
    assert!(
        matches!(err.kind, ErrorKind::InvalidWhatIfScript(_)),
        "{err:?}"
    );
    let text = err.to_string();
    assert!(text.contains("scenario 'bad-script'"), "{text}");
    assert!(text.contains("history 'retail'"), "{text}");
}

/// Requests against an unregistered history fail with `UnknownHistory`,
/// naming the history.
#[test]
fn unknown_history_names_the_history() {
    let session = retail_session();
    let err = session
        .on("warehouse")
        .replace(0, threshold(60))
        .run()
        .unwrap_err();
    assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)), "{err:?}");
    assert!(err.to_string().contains("history 'warehouse'"), "{}", err);
}

/// An out-of-range modification position is rejected by the static
/// analyzer at admission, naming the scenario; with the analyzer disabled
/// the wrapped history error still surfaces with normalization-phase
/// context, so neither path panics the engine.
#[test]
fn out_of_range_position_names_scenario_and_phase() {
    let session = retail_session();
    let err = session
        .on("retail")
        .named("too-far")
        .replace(99, threshold(60))
        .method(Method::ReenactPsDs)
        .run()
        .unwrap_err();
    assert!(matches!(err.kind, ErrorKind::Analysis(_)), "{err:?}");
    let text = err.to_string();
    assert!(text.contains("scenario 'too-far'"), "{text}");
    assert!(text.contains("history 'retail'"), "{text}");
    assert!(text.contains("admission failed"), "{text}");
    // Under the analyzer ablation the pre-analyzer contract holds: the
    // wrapped history error surfaces from normalization instead.
    let err = session
        .on("retail")
        .named("too-far")
        .replace(99, threshold(60))
        .method(Method::ReenactPsDs)
        .without_analyzer()
        .run()
        .unwrap_err();
    assert!(matches!(err.kind, ErrorKind::History(_)), "{err:?}");
    assert!(err.to_string().contains("scenario 'too-far'"), "{err}");
    // The naive path reports the same unified error kind.
    let naive_err = session
        .on("retail")
        .replace(99, threshold(60))
        .method(Method::Naive)
        .without_analyzer()
        .run()
        .unwrap_err();
    assert!(matches!(naive_err.kind, ErrorKind::History(_)));
    assert!(naive_err.to_string().contains("history 'retail'"));
}

/// `Method` round-trips the paper labels through `Display`/`FromStr`.
#[test]
fn method_labels_round_trip() {
    for method in Method::all() {
        let label = method.to_string();
        assert_eq!(label, method.label());
        assert_eq!(label.parse::<Method>().unwrap(), method);
    }
    let err = "fancy".parse::<Method>().unwrap_err();
    assert!(matches!(err.kind, ErrorKind::UnknownMethod(_)));
    assert!(err.to_string().contains("fancy"));
}
