//! Workspace self-lint: the unsafe-code audit CI runs as a plain test.
//!
//! The whole engine is safe Rust; the single sanctioned exception is
//! `mahif-net`, whose raw syscall shim (`crates/net/src/sys.rs`) binds
//! `epoll`/`eventfd`/`rlimit` against the C library `std` already links.
//! This test pins that boundary so it cannot drift silently:
//!
//! * every crate except `mahif-net` carries `#![forbid(unsafe_code)]`
//!   in its `lib.rs`, so new unsafe code is a compile error there;
//! * `forbid` does not reach integration tests, benches or examples, so
//!   the scanner additionally walks every `.rs` file outside
//!   `crates/net` and fails on any `unsafe` token in code;
//! * inside `crates/net`, every `unsafe` block must be justified by a
//!   `// SAFETY:` comment within the six preceding lines.
//!
//! The token scan is word-boundary aware (an identifier like
//! `unsafe_ones` does not trip it) and ignores line comments, so prose
//! about unsafety stays legal.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every directory under `crates/` (one level of nesting for the
/// `crates/shim/*` offline stand-ins) that holds a `Cargo.toml`.
fn crate_dirs() -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let mut stack = vec![repo_root().join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read crates dir") {
            let path = entry.expect("dir entry").path();
            if !path.is_dir() {
                continue;
            }
            if path.join("Cargo.toml").is_file() {
                dirs.push(path);
            } else {
                stack.push(path);
            }
        }
    }
    dirs.sort();
    assert!(dirs.len() >= 20, "crate walk broke: found {dirs:?}");
    dirs
}

/// All `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Does `line` use the `unsafe` keyword in code? Word-boundary matched
/// (so `unsafe_ones` is fine) with line comments stripped (so prose
/// about unsafety is fine).
fn uses_unsafe_keyword(line: &str) -> bool {
    let code = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    let bytes = code.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe").map(|i| i + from) {
        let before_ok = i == 0 || !is_word(bytes[i - 1]);
        let end = i + "unsafe".len();
        let after_ok = end == bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Every crate except `mahif-net` forbids unsafe code at the crate root.
#[test]
fn every_crate_but_net_forbids_unsafe_code() {
    let mut missing = Vec::new();
    for dir in crate_dirs() {
        if dir.file_name().is_some_and(|n| n == "net") {
            continue;
        }
        let lib = dir.join("src/lib.rs");
        let source =
            fs::read_to_string(&lib).unwrap_or_else(|e| panic!("read {}: {e}", lib.display()));
        if !source.contains("#![forbid(unsafe_code)]") {
            missing.push(lib);
        }
    }
    assert!(
        missing.is_empty(),
        "crates missing #![forbid(unsafe_code)] in lib.rs: {missing:#?}"
    );
}

/// `forbid` in `lib.rs` does not cover tests/benches/binaries, so scan
/// every `.rs` file outside `crates/net` for the keyword too.
#[test]
fn no_unsafe_code_outside_the_net_syscall_shim() {
    let root = repo_root();
    let mut offenders = Vec::new();
    for dir in ["crates", "src", "tests", "benches", "examples"] {
        for file in rust_files(&root.join(dir)) {
            // The shim itself and this scanner (whose string literals
            // name the keyword) are the two sanctioned exceptions.
            if file.starts_with(root.join("crates/net")) || file == root.join("tests/lint.rs") {
                continue;
            }
            let source = fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
            for (number, line) in source.lines().enumerate() {
                if uses_unsafe_keyword(line) {
                    offenders.push(format!(
                        "{}:{}: {}",
                        file.display(),
                        number + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "unsafe code outside crates/net — move it behind the audited \
         syscall shim or justify extending the exception:\n{offenders:#?}"
    );
}

/// Inside `crates/net`, every `unsafe` block carries a `// SAFETY:`
/// justification within the six preceding lines.
#[test]
fn net_unsafe_blocks_are_safety_annotated() {
    let net = repo_root().join("crates/net");
    let mut unjustified = Vec::new();
    let mut audited = 0usize;
    for file in rust_files(&net) {
        let source =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let lines: Vec<&str> = source.lines().collect();
        for (number, line) in lines.iter().enumerate() {
            if !uses_unsafe_keyword(line) {
                continue;
            }
            audited += 1;
            let window = &lines[number.saturating_sub(6)..=number];
            if !window
                .iter()
                .any(|l| l.trim_start().starts_with("// SAFETY:"))
            {
                unjustified.push(format!(
                    "{}:{}: {}",
                    file.display(),
                    number + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        audited >= 6,
        "the syscall shim's unsafe blocks went missing"
    );
    assert!(
        unjustified.is_empty(),
        "unsafe without a // SAFETY: comment in the six lines above:\n{unjustified:#?}"
    );
}
