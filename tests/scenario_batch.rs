//! Batch-vs-single equivalence: `ScenarioSet::answer_all` must produce
//! exactly the delta of k independent single-query requests, for every
//! execution method — including scenario groups that share one program
//! slice (the cache-hit path) and randomly generated scenario batches.

use proptest::prelude::*;

use mahif::{ImpactSpec, Method, Session};
use mahif_expr::builder::*;
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};
use mahif_scenario::{BatchConfig, Scenario, ScenarioSet};
use mahif_storage::{Attribute, Database, Relation, Schema, Tuple};
use mahif_workload::{Dataset, DatasetKind, WorkloadSpec};

fn running_example_session() -> Session {
    Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap()
}

fn threshold(t: i64) -> Statement {
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(t)),
    )
}

/// Asserts that every scenario of `set` gets the same delta from the batch
/// as from an independent single-query request, for the given method.
fn assert_batch_matches_singles(
    session: &Session,
    history: &str,
    set: &ScenarioSet<'_>,
    method: Method,
) {
    let batch = set.answer_all(method).unwrap();
    assert_eq!(batch.answers.len(), set.len());
    for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
        let single = session
            .on(history)
            .modifications(scenario.modifications().clone())
            .method(method)
            .run()
            .unwrap();
        assert_eq!(
            &answer.answer.delta,
            single.delta(),
            "scenario {} method {} batch delta diverged",
            scenario.name(),
            method.label()
        );
    }
}

/// The k=8 sweep of the acceptance criteria: identical deltas across all
/// methods, with the whole sweep answered by a single shared slice.
#[test]
fn k8_sweep_matches_singles_across_methods() {
    let session = running_example_session();
    let mut set = ScenarioSet::over(&session, "retail");
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [42i64, 48, 52, 55, 60, 65, 75, 100],
        |t| threshold(*t),
    ))
    .unwrap();
    assert_eq!(set.len(), 8);
    // The cold batch first: the stats assert the within-batch sharing the
    // paper promises, which only the first run of a sweep performs — later
    // identical batches answer from the session's provisioning cache.
    let batch = set.answer_all(Method::ReenactPsDs).unwrap();
    assert_eq!(batch.stats.slice_groups, 1, "a sweep shares one slice");
    assert_eq!(batch.stats.shared_slice_hits, 7);
    for method in Method::all() {
        assert_batch_matches_singles(&session, "retail", &set, method);
    }
    // The equivalence loop re-ran the sweep warm (and its singles hit the
    // sweep's certified plans), so the provisioning cache demonstrably
    // served byte-identical answers above.
    assert!(session.stats().plan_cache_hits > 0);
}

/// Scenarios over *different* positions and modification kinds (replace,
/// delete, insert) form separate groups but still match singles exactly.
#[test]
fn heterogeneous_batch_matches_singles_across_methods() {
    let session = running_example_session();
    let mut set = ScenarioSet::over(&session, "retail");
    set.add(Scenario::new(
        "replace-u1",
        ModificationSet::single_replace(0, threshold(60)),
    ))
    .unwrap();
    set.add(Scenario::new(
        "replace-u1-low",
        ModificationSet::single_replace(0, threshold(40)),
    ))
    .unwrap();
    set.add(Scenario::new(
        "drop-u2",
        ModificationSet::new(vec![Modification::delete(1)]),
    ))
    .unwrap();
    set.add(Scenario::new(
        "extra-us-surcharge",
        ModificationSet::new(vec![Modification::insert(
            3,
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(1))),
                eq(attr("Country"), slit("US")),
            ),
        )]),
    ))
    .unwrap();
    set.add(Scenario::new(
        "replace-and-delete",
        ModificationSet::new(vec![
            Modification::replace(0, threshold(70)),
            Modification::delete(2),
        ]),
    ))
    .unwrap();
    // Cold first: within-batch sharing stats are a first-run property (a
    // warm batch reuses cached plans and computes no slice at all).
    let batch = set.answer_all(Method::ReenactPsDs).unwrap();
    // The two u1 replacements share a group; the others are singletons.
    assert_eq!(batch.stats.slice_groups, 4);
    assert_eq!(batch.stats.shared_slice_hits, 1);
    for method in Method::all() {
        assert_batch_matches_singles(&session, "retail", &set, method);
    }
}

/// Batches over a history that *contains inserts* must survive the group
/// plans' original-side caching: the insert-split of Section 10 reenacts the
/// full suffix after each insert, and that shared original-side result must
/// still be byte-identical to every member's own, for every method.
#[test]
fn insert_history_batches_match_singles_across_methods() {
    use mahif_expr::Value;

    let mut statements = running_example_history();
    statements.push(Statement::insert_values(
        "Order",
        Tuple::new(vec![
            Value::int(15),
            Value::str("Eve"),
            Value::str("UK"),
            Value::int(55),
            Value::int(7),
        ]),
    ));
    statements.push(Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(1)),
        ge(attr("Price"), lit(52)),
    ));
    let session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(statements),
    )
    .unwrap();
    let mut set = ScenarioSet::over(&session, "retail");
    // A slice-sharing sweep (one group) plus heterogeneous members that
    // modify the history around the insert.
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [48i64, 55, 60, 70],
        |t| threshold(*t),
    ))
    .unwrap();
    set.add(Scenario::new(
        "drop-insert",
        ModificationSet::new(vec![Modification::delete(3)]),
    ))
    .unwrap();
    set.add(Scenario::new(
        "late-update",
        ModificationSet::single_replace(
            4,
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(2)),
                ge(attr("Price"), lit(54)),
            ),
        ),
    ))
    .unwrap();
    // Cold first: the sweep's group shares one original-side reenactment —
    // a first-run property, since a warm batch reuses cached plans.
    let batch = set.answer_all(Method::ReenactPsDs).unwrap();
    assert_eq!(batch.stats.slice_groups, 3);
    assert_eq!(batch.stats.original_reenactments, 3);
    for method in Method::all() {
        assert_batch_matches_singles(&session, "retail", &set, method);
    }
    // The disable-insert-split ablation agrees too.
    let no_split = set
        .answer_all_configured(
            Method::ReenactPsDs,
            &BatchConfig {
                engine: mahif::EngineConfig {
                    disable_insert_split: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
    for (a, b) in batch.answers.iter().zip(&no_split.answers) {
        assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
    }
}

/// An `INSERT ... SELECT` in the history flows scenario-dependent data into
/// another relation; the group path must still match singles exactly.
#[test]
fn insert_query_history_batches_match_singles() {
    use mahif_query::{ProjectItem, Query};
    use mahif_storage::{Attribute as Attr, Relation as Rel, Schema as Sch};

    let mut db = running_example_database();
    let arch_schema = Sch::shared(
        "Archive",
        vec![
            Attr::int("ID"),
            Attr::str("Customer"),
            Attr::str("Country"),
            Attr::int("Price"),
            Attr::int("ShippingFee"),
        ],
    );
    db.add_relation(Rel::empty(arch_schema)).unwrap();
    let mut statements = running_example_history();
    statements.push(Statement::insert_query(
        "Archive",
        Query::project(
            vec![
                ProjectItem::identity("ID"),
                ProjectItem::identity("Customer"),
                ProjectItem::identity("Country"),
                ProjectItem::identity("Price"),
                ProjectItem::identity("ShippingFee"),
            ],
            Query::select(ge(attr("ShippingFee"), lit(5)), Query::scan("Order")),
        ),
    ));
    let session = Session::with_history("retail", db, History::new(statements)).unwrap();
    let mut set = ScenarioSet::over(&session, "retail");
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [50i64, 55, 60],
        |t| threshold(*t),
    ))
    .unwrap();
    for method in Method::all() {
        assert_batch_matches_singles(&session, "retail", &set, method);
    }
}

/// The ablations (no slice sharing, single-threaded, greedy slicer) never
/// change any delta.
#[test]
fn batch_configurations_agree() {
    let session = running_example_session();
    let mut set = ScenarioSet::over(&session, "retail");
    set.add_all(Scenario::sweep_replace_values(
        "threshold",
        0,
        [55i64, 60, 65, 70],
        |t| threshold(*t),
    ))
    .unwrap();
    let reference = set.answer_all(Method::ReenactPsDs).unwrap();
    let configs = [
        BatchConfig::default().without_slice_sharing(),
        BatchConfig::default().with_parallelism(1),
        BatchConfig::default().with_parallelism(3),
        BatchConfig::default().without_group_reenactment(),
        BatchConfig::default().with_slice_refinement(),
        BatchConfig {
            engine: mahif::EngineConfig {
                use_greedy_slicer: true,
                ..Default::default()
            },
            ..Default::default()
        },
    ];
    for config in &configs {
        let batch = set
            .answer_all_configured(Method::ReenactPsDs, config)
            .unwrap();
        for (a, b) in reference.answers.iter().zip(&batch.answers) {
            assert_eq!(a.answer.delta, b.answer.delta, "config {config:?}");
        }
    }
}

/// Workload-generator sweeps at a larger scale: the batch engine answers a
/// generated k=6 sweep identically to the sequential loop and shares one
/// slice for it.
#[test]
fn generated_workload_sweep_matches_singles() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 11);
    let workload = WorkloadSpec::default().with_updates(12).generate(&dataset);
    let session =
        Session::with_history("taxi", dataset.database.clone(), workload.history.clone()).unwrap();
    let mut set = ScenarioSet::over(&session, "taxi");
    for (name, mods) in workload.sweep_variants(6) {
        set.add(Scenario::new(name, mods)).unwrap();
    }
    // Cold first (within-batch sharing is a first-run property; warm
    // batches answer from the provisioning cache).
    let batch = set.answer_all(Method::ReenactPsDs).unwrap();
    assert_eq!(batch.stats.slice_groups, 1);
    assert_eq!(batch.stats.shared_slice_hits, 5);
    for method in [Method::Naive, Method::ReenactDs, Method::ReenactPsDs] {
        assert_batch_matches_singles(&session, "taxi", &set, method);
    }
}

/// Ranking sanity over the generated sweep: a larger surcharge moves the
/// metric further from the actual history, so the ranking is monotone in
/// the adjustment amount.
#[test]
fn generated_sweep_ranking_is_monotone() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 200, 5);
    let workload = WorkloadSpec::default().with_updates(8).generate(&dataset);
    let session =
        Session::with_history("taxi", dataset.database.clone(), workload.history.clone()).unwrap();
    let mut set = ScenarioSet::over(&session, "taxi");
    for (name, mods) in workload.sweep_variants(4) {
        set.add(Scenario::new(name, mods)).unwrap();
    }
    let batch = set.answer_all(Method::ReenactPsDs).unwrap();
    let ranking = batch
        .rank_by(&ImpactSpec::sum_of("taxi_trips", "fare"))
        .unwrap();
    // The modified statement updates `fare` (the first value attribute) and
    // sweep_variants adds `5 + v` on top, so the fare impact grows with v:
    // adjust+8 ranks first.
    assert_eq!(ranking.best().unwrap().name, "adjust+8");
    let changes: Vec<i64> = ranking
        .entries
        .iter()
        .map(|e| e.report.net_change())
        .collect();
    assert!(changes.windows(2).all(|w| w[0] >= w[1]), "{changes:?}");
}

// ---------------------------------------------------------------------------
// Property tests: random batches over the R(K, V) relation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GenStatement {
    UpdateByKey { lo: i64, hi: i64, delta: i64 },
    UpdateByValue { threshold: i64, value: i64 },
    DeleteByKey { lo: i64, hi: i64 },
}

impl GenStatement {
    fn to_statement(&self) -> Statement {
        match self {
            GenStatement::UpdateByKey { lo, hi, delta } => Statement::update(
                "R",
                SetClause::single("V", add(attr("V"), lit(*delta))),
                and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))),
            ),
            GenStatement::UpdateByValue { threshold, value } => Statement::update(
                "R",
                SetClause::single("V", lit(*value)),
                ge(attr("V"), lit(*threshold)),
            ),
            GenStatement::DeleteByKey { lo, hi } => {
                Statement::delete("R", and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))))
            }
        }
    }
}

fn arb_statement() -> impl Strategy<Value = GenStatement> {
    prop_oneof![
        (0i64..20, 1i64..10, -5i64..10).prop_map(|(lo, len, delta)| GenStatement::UpdateByKey {
            lo,
            hi: lo + len,
            delta,
        }),
        (0i64..60, 0i64..50)
            .prop_map(|(threshold, value)| GenStatement::UpdateByValue { threshold, value }),
        (0i64..20, 1i64..5).prop_map(|(lo, len)| GenStatement::DeleteByKey { lo, hi: lo + len }),
    ]
}

fn database(rows: usize, values: &[i64]) -> Database {
    let schema = Schema::shared("R", vec![Attribute::int("K"), Attribute::int("V")]);
    let mut relation = Relation::empty(schema);
    for k in 0..rows {
        let v = values[k % values.len()].rem_euclid(50);
        relation
            .insert(Tuple::from_iter_values([k as i64, v]))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation(relation).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random batch of replacement scenarios — some sharing the modified
    /// position (cache hits), some not — matches k independent calls under
    /// every method.
    #[test]
    fn random_batches_match_singles(
        statements in prop::collection::vec(arb_statement(), 2..6),
        replacements in prop::collection::vec(arb_statement(), 2..6),
        position_seeds in prop::collection::vec(0usize..6, 2..6),
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
        let session = Session::with_history("r", db, history).expect("history executes");
        let mut set = ScenarioSet::over(&session, "r");
        let k = replacements.len().min(position_seeds.len());
        for i in 0..k {
            // Half the scenarios pin position 0 so groups form; the rest
            // scatter over the history.
            let position = if i % 2 == 0 { 0 } else { position_seeds[i] % statements.len() };
            set.add(Scenario::new(
                format!("s{i}"),
                ModificationSet::single_replace(position, replacements[i].to_statement()),
            ))
            .expect("unique names");
        }
        for method in Method::all() {
            let batch = set.answer_all(method).expect("batch succeeds");
            for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
                let single = session
                    .on("r")
                    .modifications(scenario.modifications().clone())
                    .method(method)
                    .run()
                    .expect("single what-if succeeds")
                    .into_answer();
                prop_assert_eq!(
                    &answer.answer.delta,
                    &single.delta,
                    "scenario {} method {}",
                    scenario.name(),
                    method.label()
                );
            }
        }
    }
}
