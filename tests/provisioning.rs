//! Integration tests for the cross-request provisioning cache
//! (`mahif::provision`): a registered history carries precomputed
//! provisioning state and a plan cache keyed by (generation, method,
//! position set, plan-shape config), so a repeated batch skips slicing and
//! plan construction entirely.
//!
//! The contracts under test:
//!
//! * **Byte-identical answers** — a warm (cache-hit) batch returns exactly
//!   the bytes a cold session returns, across methods and batch shapes.
//! * **Invalidation** — re-registering a history name with different
//!   contents bumps the generation: the next identical batch is a miss
//!   (never a stale hit) and its answers match a cold session on the *new*
//!   contents.
//! * **Opt-out** — `without_plan_cache()` requests neither read nor
//!   populate the cache.

use mahif::{sweep, Method, Response, Session};
use mahif_expr::builder::*;
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, SetClause, Statement};

fn threshold(t: i64) -> Statement {
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(t)),
    )
}

/// A history with the same shape as the running example but different
/// contents: u2 grants a `+9` UK shipping surcharge instead of `+5`, so the
/// same sweep produces different deltas than on [`running_example_history`].
fn alternate_history() -> Vec<Statement> {
    let mut statements = running_example_history();
    statements[1] = Statement::update(
        "Order",
        SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(9))),
        and(eq(attr("Country"), slit("UK")), le(attr("Price"), lit(100))),
    );
    statements
}

const THRESHOLDS: [i64; 4] = [41, 55, 65, 75];

fn run_sweep(session: &Session, history: &str, method: Method) -> Response {
    session
        .on(history)
        .method(method)
        .run_batch(sweep("t", 0, THRESHOLDS, |t| threshold(*t)))
        .expect("sweep batch succeeds")
}

fn assert_same_answers(got: &Response, want: &Response, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}");
    for (a, b) in got.scenarios.iter().zip(&want.scenarios) {
        assert_eq!(a.name, b.name, "{context}");
        assert_eq!(
            a.answer.delta, b.answer.delta,
            "{context}: scenario {}",
            a.name
        );
    }
}

/// Warm batches are byte-identical to a cold session, for every method and
/// for both the k>1 sweep and the single-query (singleton plan) shape.
#[test]
fn warm_batches_match_cold_sessions_across_methods() {
    for method in Method::all() {
        let warm = Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let first = run_sweep(&warm, "retail", method);
        let second = run_sweep(&warm, "retail", method);
        assert_same_answers(&second, &first, &format!("repeat sweep, method {method}"));

        // A cold session (fresh cache) agrees with the warm repeat.
        let cold = Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let reference = run_sweep(&cold, "retail", method);
        assert_same_answers(
            &second,
            &reference,
            &format!("warm vs cold, method {method}"),
        );

        // Single queries (singleton plans) repeat byte-identically too.
        let single_a = warm
            .on("retail")
            .replace(0, threshold(60))
            .method(method)
            .run()
            .unwrap();
        let single_b = warm
            .on("retail")
            .replace(0, threshold(60))
            .method(method)
            .run()
            .unwrap();
        assert_eq!(
            single_a.delta(),
            single_b.delta(),
            "single query repeat, method {method}"
        );
    }
}

/// Re-registering a history name with *different contents* invalidates the
/// cache: the next identical batch is a miss (the generation key can never
/// match a stale plan) and answers match a cold session on the new
/// contents.
#[test]
fn reregistration_with_different_contents_is_a_miss_with_correct_answers() {
    let session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap();

    // Cold then warm on the original contents: the repeat hits.
    let cold_old = run_sweep(&session, "retail", Method::ReenactPsDs);
    let warm_old = run_sweep(&session, "retail", Method::ReenactPsDs);
    assert_same_answers(&warm_old, &cold_old, "warm repeat, original contents");
    let before = session.stats();
    assert_eq!(before.plan_cache_misses, 1, "one cold sweep missed");
    assert_eq!(before.plan_cache_hits, 1, "one warm sweep hit");
    assert_eq!(before.plan_cache_entries, 1, "one sweep plan provisioned");

    // Re-register the same name with different contents (a re-register is
    // unregister + register: `register` rejects duplicate names).
    session.unregister("retail").unwrap();
    assert_eq!(
        session.stats().plan_cache_entries,
        0,
        "unregistration drops the history's cached plans from the gauge"
    );
    session
        .register(
            "retail",
            running_example_database(),
            History::new(alternate_history()),
        )
        .unwrap();

    // The very same batch is now a *miss*, and its answers match a cold
    // session registered directly with the new contents.
    let after_reregister = run_sweep(&session, "retail", Method::ReenactPsDs);
    let stats = session.stats();
    assert_eq!(
        stats.plan_cache_misses, 2,
        "the batch after re-registration must miss, not reuse a stale plan"
    );
    assert_eq!(stats.plan_cache_hits, 1, "no stale hit");

    let cold_new = Session::with_history(
        "retail",
        running_example_database(),
        History::new(alternate_history()),
    )
    .unwrap();
    let reference = run_sweep(&cold_new, "retail", Method::ReenactPsDs);
    assert_same_answers(
        &after_reregister,
        &reference,
        "post-reregistration vs cold on new contents",
    );
    // Sanity: the new contents genuinely answer differently, so a stale
    // plan could not have produced these bytes.
    assert!(
        after_reregister
            .scenarios
            .iter()
            .zip(&cold_old.scenarios)
            .any(|(a, b)| a.answer.delta != b.answer.delta),
        "the alternate history must change the sweep's answers for the \
         invalidation check to have teeth"
    );

    // And the repeat on the new generation hits again, byte-identically.
    let warm_new = run_sweep(&session, "retail", Method::ReenactPsDs);
    assert_same_answers(&warm_new, &reference, "warm repeat, new contents");
    assert_eq!(session.stats().plan_cache_hits, 2);
}

/// `without_plan_cache()` opts a request out entirely: no lookup is
/// recorded and no plan is provisioned, while answers stay identical.
#[test]
fn without_plan_cache_neither_reads_nor_populates() {
    let session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap();

    let opted_out = session
        .on("retail")
        .method(Method::ReenactPsDs)
        .without_plan_cache()
        .run_batch(sweep("t", 0, THRESHOLDS, |t| threshold(*t)))
        .unwrap();
    let stats = session.stats();
    assert_eq!(stats.plan_cache_hits, 0);
    assert_eq!(stats.plan_cache_misses, 0, "opt-out requests do no lookups");
    assert_eq!(
        stats.plan_cache_entries, 0,
        "opt-out requests cache nothing"
    );

    // The cached path answers byte-identically to the opted-out run.
    let cached = run_sweep(&session, "retail", Method::ReenactPsDs);
    assert_same_answers(&cached, &opted_out, "cached vs opted-out");
    assert_eq!(session.stats().plan_cache_misses, 1);
}
