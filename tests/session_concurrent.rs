//! Concurrent-session stress test: one `Arc<Session>` shared by many
//! threads that register, unregister and answer batches at the same time.
//!
//! Asserts the three contracts of the shared service core:
//!
//! 1. **No deadlocks / no panics** — the scoped run completes with every
//!    request answered (registry lock, counter commit lock and worker pool
//!    compose).
//! 2. **Byte-identical answers** — every concurrently-answered batch equals
//!    the sequential single-threaded reference, scenario by scenario.
//! 3. **Monotonic, consistent `SessionStats`** — a watcher thread samples
//!    `stats()` throughout; every counter is non-decreasing across
//!    samples, and because all batches carry the same scenario count, any
//!    consistent snapshot must satisfy `scenarios_answered == k × requests`
//!    — a torn (half-committed) counter set would violate it.

use std::sync::Arc;

use mahif::{sweep, Method, Response, Session, SessionStats};
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, SetClause, Statement};

use mahif_expr::builder::*;

const WORKERS: usize = 4;
const BATCHES_PER_WORKER: usize = 5;
const K: usize = 3;

fn threshold(t: i64) -> Statement {
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(t)),
    )
}

/// The thresholds worker `w` sweeps in its `b`-th batch (deterministic, so
/// the sequential reference reproduces them exactly). All odd: a threshold
/// of exactly 50 would replicate the original statement, normalize to a
/// no-op scenario and split the batch into two slice groups — breaking the
/// one-group-per-batch accounting the watcher assertions rely on.
fn thresholds(worker: usize, batch: usize) -> [i64; K] {
    let base = 41 + 2 * ((worker as i64) * BATCHES_PER_WORKER as i64 + batch as i64);
    [base, base + 10, base + 20]
}

fn run_batch(session: &Session, worker: usize, batch: usize) -> Response {
    session
        .on("retail")
        .method(Method::ReenactPsDs)
        .run_batch(sweep("t", 0, thresholds(worker, batch), |t| threshold(*t)))
        .expect("batch succeeds")
}

#[test]
fn concurrent_batches_match_sequential_and_stats_stay_consistent() {
    // Sequential reference, single thread, fresh session.
    let reference_session = Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap();
    let mut reference: Vec<Vec<Response>> = Vec::new();
    for worker in 0..WORKERS {
        reference.push(
            (0..BATCHES_PER_WORKER)
                .map(|batch| run_batch(&reference_session, worker, batch))
                .collect(),
        );
    }

    // The shared service core under concurrent load.
    let session = Arc::new(
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap(),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (answers, samples) = std::thread::scope(|scope| {
        // ≥4 worker threads answering batches.
        let workers: Vec<_> = (0..WORKERS)
            .map(|worker| {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    (0..BATCHES_PER_WORKER)
                        .map(|batch| run_batch(&session, worker, batch))
                        .collect::<Vec<Response>>()
                })
            })
            .collect();
        // A registrar thread churning the registry while batches run:
        // registration and unregistration take `&self` now, so they are
        // legal from any thread.
        let registrar = {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..6 {
                    let name = format!("churn-{i}");
                    session
                        .register(
                            &name,
                            running_example_database(),
                            History::new(running_example_history()),
                        )
                        .expect("churn registration succeeds");
                    session.unregister(&name).expect("churn unregistration");
                }
            })
        };
        // A watcher thread sampling the consistent snapshot path.
        let watcher = {
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut samples: Vec<SessionStats> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    samples.push(session.stats());
                    std::thread::yield_now();
                }
                samples.push(session.stats());
                samples
            })
        };
        let answers: Vec<Vec<Response>> = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        registrar.join().expect("registrar panicked");
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let samples = watcher.join().expect("watcher panicked");
        (answers, samples)
    });

    // 2. Byte-identical answers vs the sequential reference.
    for (worker, batches) in answers.iter().enumerate() {
        for (batch, response) in batches.iter().enumerate() {
            let expected = &reference[worker][batch];
            assert_eq!(response.len(), expected.len());
            for (a, b) in response.scenarios.iter().zip(&expected.scenarios) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.answer.delta, b.answer.delta,
                    "worker {worker} batch {batch} scenario {}",
                    a.name
                );
            }
        }
    }

    // 3a. Final counters account for exactly the work submitted.
    let total_batches = (WORKERS * BATCHES_PER_WORKER) as u64;
    let stats = session.stats();
    assert_eq!(stats.requests, total_batches);
    assert_eq!(stats.scenarios_answered, total_batches * K as u64);
    // 1 initial + 6 churn registrations; churn histories are gone again.
    assert_eq!(stats.version_chains_built, 7);
    assert_eq!(stats.histories, 1);

    // 3b. Monotonic counters across every pair of samples, and no torn
    // commits: scenarios arrive in whole batches of K.
    assert!(samples.len() >= 2, "the watcher sampled while workers ran");
    for pair in samples.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(b.requests >= a.requests, "{a:?} -> {b:?}");
        assert!(
            b.scenarios_answered >= a.scenarios_answered,
            "{a:?} -> {b:?}"
        );
        assert!(
            b.version_chains_built >= a.version_chains_built,
            "{a:?} -> {b:?}"
        );
        assert!(b.slices_computed >= a.slices_computed, "{a:?} -> {b:?}");
        assert!(b.slices_shared >= a.slices_shared, "{a:?} -> {b:?}");
        assert!(
            b.original_reenactments >= a.original_reenactments,
            "{a:?} -> {b:?}"
        );
    }
    for sample in &samples {
        assert_eq!(
            sample.scenarios_answered,
            sample.requests * K as u64,
            "torn snapshot: scenarios must arrive in whole batches of {K}: {sample:?}"
        );
        // Every batch here is one slice-sharing group, and slice counters
        // commit with the rest of the request — so they can never run
        // ahead of (or behind) the request count in a snapshot.
        assert_eq!(
            sample.slices_computed, sample.requests,
            "torn snapshot: slice counters must commit with their request: {sample:?}"
        );
        assert_eq!(
            sample.slices_shared,
            sample.requests * (K as u64 - 1),
            "torn snapshot: {sample:?}"
        );
    }
}

/// A history with the same shape as the running example but different
/// contents (u2 adds 9 instead of 5), so the same sweep answers
/// differently — the teeth of the stale-plan check below.
fn alternate_history() -> Vec<Statement> {
    let mut statements = running_example_history();
    statements[1] = Statement::update(
        "Order",
        SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(9))),
        and(eq(attr("Country"), slit("UK")), le(attr("Price"), lit(100))),
    );
    statements
}

/// Registry churn racing *cached* batch execution on one `Arc<Session>`:
///
/// * worker threads hammer the same sweep against a stable history, so
///   every batch after each worker's first is answered from the
///   provisioning cache — all answers must stay byte-identical to a cold
///   reference;
/// * a churn thread re-registers a second history name with *alternating
///   contents* and answers the same sweep cold + warm each generation —
///   the warm (cache-hit) answers must match the generation's own
///   contents, so a stale plan surviving re-registration is caught as a
///   wrong-bytes failure;
/// * a watcher samples `stats()` throughout: the plan-cache counters must
///   be monotonic and never torn (`hits + misses` only ever grows by whole
///   lookups).
#[test]
fn registry_churn_races_cached_batches_without_stale_plans() {
    const HOT_BATCHES: usize = 8;
    const CHURN_GENERATIONS: usize = 6;
    let fixed_thresholds = [41i64, 55, 65];
    let run_fixed = |session: &Session, history: &str| -> Response {
        session
            .on(history)
            .method(Method::ReenactPsDs)
            .run_batch(sweep("t", 0, fixed_thresholds, |t| threshold(*t)))
            .expect("fixed sweep succeeds")
    };
    let assert_same = |got: &Response, want: &Response, context: &str| {
        assert_eq!(got.len(), want.len(), "{context}");
        for (a, b) in got.scenarios.iter().zip(&want.scenarios) {
            assert_eq!(
                a.answer.delta, b.answer.delta,
                "{context}: scenario {}",
                a.name
            );
        }
    };

    // Cold references: one per contents variant, on fresh sessions.
    let reference_original = {
        let s = Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        run_fixed(&s, "retail")
    };
    let reference_alternate = {
        let s = Session::with_history(
            "flux",
            running_example_database(),
            History::new(alternate_history()),
        )
        .unwrap();
        run_fixed(&s, "flux")
    };
    // The stale-plan check needs the two variants to disagree.
    assert!(reference_original
        .scenarios
        .iter()
        .zip(&reference_alternate.scenarios)
        .any(|(a, b)| a.answer.delta != b.answer.delta));

    let session = Arc::new(
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap(),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let samples = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    (0..HOT_BATCHES)
                        .map(|_| run_fixed(&session, "retail"))
                        .collect::<Vec<Response>>()
                })
            })
            .collect();
        let churn = {
            let session = Arc::clone(&session);
            let reference_original = &reference_original;
            let reference_alternate = &reference_alternate;
            scope.spawn(move || {
                for generation in 0..CHURN_GENERATIONS {
                    let statements = if generation % 2 == 0 {
                        alternate_history()
                    } else {
                        running_example_history()
                    };
                    session
                        .register("flux", running_example_database(), History::new(statements))
                        .expect("churn registration succeeds");
                    // Cold, then warm from the cache: both must answer with
                    // *this* generation's contents.
                    let cold = run_fixed(&session, "flux");
                    let warm = run_fixed(&session, "flux");
                    let want = if generation % 2 == 0 {
                        &reference_alternate
                    } else {
                        &reference_original
                    };
                    assert_same(&cold, want, &format!("flux generation {generation}, cold"));
                    assert_same(
                        &warm,
                        want,
                        &format!("flux generation {generation}, warm (stale plan?)"),
                    );
                    session.unregister("flux").expect("churn unregistration");
                }
            })
        };
        let watcher = {
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut samples: Vec<SessionStats> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    samples.push(session.stats());
                    std::thread::yield_now();
                }
                samples.push(session.stats());
                samples
            })
        };
        let answers: Vec<Vec<Response>> = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        churn.join().expect("churn thread panicked");
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let samples = watcher.join().expect("watcher panicked");

        // Every hot-path answer — cached or not — equals the cold reference.
        for (worker, batches) in answers.iter().enumerate() {
            for (batch, response) in batches.iter().enumerate() {
                assert_same(
                    response,
                    &reference_original,
                    &format!("retail worker {worker} batch {batch}"),
                );
            }
        }
        samples
    });

    // Final accounting. Each sweep is one slice-sharing group, hence one
    // cache lookup: every lookup is a hit or a miss, never lost or torn.
    let stats = session.stats();
    let retail_lookups = (WORKERS * HOT_BATCHES) as u64;
    let flux_lookups = 2 * CHURN_GENERATIONS as u64;
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        retail_lookups + flux_lookups,
        "{stats:?}"
    );
    // A worker can only miss before the first insert lands; afterwards the
    // shared entry serves everyone. Each flux generation misses cold and
    // hits warm.
    assert!(
        stats.plan_cache_misses <= WORKERS as u64 + CHURN_GENERATIONS as u64,
        "{stats:?}"
    );
    assert!(
        stats.plan_cache_hits >= (WORKERS * (HOT_BATCHES - 1)) as u64 + CHURN_GENERATIONS as u64,
        "{stats:?}"
    );
    // Flux is unregistered: only retail's plan remains provisioned.
    assert_eq!(stats.plan_cache_entries, 1, "{stats:?}");

    // The watcher never saw the cache counters move backwards.
    for pair in samples.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(b.plan_cache_hits >= a.plan_cache_hits, "{a:?} -> {b:?}");
        assert!(b.plan_cache_misses >= a.plan_cache_misses, "{a:?} -> {b:?}");
        assert!(
            b.plan_cache_evictions >= a.plan_cache_evictions,
            "{a:?} -> {b:?}"
        );
    }
}
