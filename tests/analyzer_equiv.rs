//! The static analyzer's two contracts, tested end to end through the
//! session funnel:
//!
//! * **Acceptance soundness** — a batch the analyzer admits never hits a
//!   type fault during execution: for randomly generated (often ill-typed)
//!   modifications, a request either fails at admission with
//!   `ErrorKind::Analysis` or executes to completion, and an accepted
//!   request answers byte-identically with the analyzer on and off.
//! * **No-op proof identity** — every scenario the analyzer short-circuits
//!   as provably independent (identity replacement, vacuous statement,
//!   shadowed write) returns a delta byte-identical to the full,
//!   un-short-circuited answer, observable via
//!   `SessionStats::analyzer_noop_proofs`.

use proptest::prelude::*;

use mahif::{ErrorKind, Method, Session};
use mahif_expr::builder::*;
use mahif_expr::{Expr, Value};
use mahif_history::statement::{running_example_database, running_example_history};
use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};
use mahif_storage::{Attribute, Database, Relation, Schema, Tuple};

fn retail_session() -> Session {
    Session::with_history(
        "retail",
        running_example_database(),
        History::new(running_example_history()),
    )
    .unwrap()
}

/// A history whose last statement unconditionally overwrites ShippingFee:
/// any replacement of statement 0 that only rewrites ShippingFee (from
/// non-divergent inputs, unread in between) is statically a no-op.
fn shadowed_fee_session() -> Session {
    let history = History::new(vec![
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(1)),
            ge(attr("Price"), lit(50)),
        ),
        Statement::update(
            "Order",
            SetClause::single("Price", lit(100)),
            eq(attr("Country"), slit("UK")),
        ),
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            Expr::true_(),
        ),
    ]);
    Session::with_history("retail", running_example_database(), history).unwrap()
}

/// Acceptance criterion: a batch containing a statically-independent
/// scenario short-circuits it (`analyzer_noop_proofs` ≥ 1) and the
/// returned delta is byte-identical to the un-short-circuited answer.
#[test]
fn proven_noop_is_byte_identical_to_full_answer() {
    let session = shadowed_fee_session();
    let replacement = Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(2)),
        ge(attr("Price"), lit(60)),
    );
    let mods = ModificationSet::single_replace(0, replacement);

    let short = session
        .on("retail")
        .named("shadowed")
        .modifications(mods.clone())
        .run()
        .unwrap();
    assert!(
        session.stats().analyzer_noop_proofs >= 1,
        "the shadowed replacement must be proven independent, stats: {:?}",
        session.stats()
    );

    let full = session
        .on("retail")
        .named("shadowed")
        .modifications(mods)
        .without_analyzer()
        .run()
        .unwrap();
    assert_eq!(
        short.delta(),
        full.delta(),
        "short-circuited and full answers must be byte-identical"
    );
    assert!(
        short.delta().is_empty(),
        "the proof certifies an empty delta"
    );
}

/// An identity replacement and a vacuous insert are both proven no-ops;
/// mixed into a batch with a live scenario they are answered in place, at
/// their original positions, and count as answered scenarios.
#[test]
fn noops_rejoin_the_batch_at_their_positions() {
    let session = retail_session();
    let original_u1 = running_example_history().remove(0);
    let live = Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(60)),
    );
    let scenarios = vec![
        (
            "identity".to_string(),
            ModificationSet::single_replace(0, original_u1),
        ),
        (
            "live".to_string(),
            ModificationSet::single_replace(0, live.clone()),
        ),
        (
            "vacuous-insert".to_string(),
            ModificationSet::new(vec![Modification::insert(
                1,
                Statement::update(
                    "Order",
                    SetClause::single("ShippingFee", lit(9)),
                    Expr::false_(),
                ),
            )]),
        ),
    ];
    let batch = session.on("retail").run_batch(scenarios).unwrap();
    assert_eq!(batch.stats.scenarios, 3);
    assert_eq!(session.stats().analyzer_noop_proofs, 2);
    assert_eq!(session.stats().scenarios_answered, 3);
    // Positions and names are preserved across the partition/merge.
    let names: Vec<&str> = batch.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["identity", "live", "vacuous-insert"]);
    assert!(batch.get("identity").unwrap().answer.delta.is_empty());
    assert!(batch.get("vacuous-insert").unwrap().answer.delta.is_empty());
    // The live scenario's answer matches its solo run.
    let solo = session
        .on("retail")
        .modifications(ModificationSet::single_replace(0, live))
        .run()
        .unwrap();
    assert_eq!(&batch.get("live").unwrap().answer.delta, solo.delta());
}

/// Acceptance criterion: a scenario referencing an unknown attribute is
/// rejected at admission with the attribute named, before any engine work.
#[test]
fn unknown_attribute_is_rejected_at_admission() {
    let session = retail_session();
    let err = session
        .on("retail")
        .named("typo")
        .replace(
            0,
            Statement::update(
                "Order",
                SetClause::single("Freight", lit(0)),
                ge(attr("Price"), lit(50)),
            ),
        )
        .run()
        .unwrap_err();
    let mahif::Error { kind, .. } = &err;
    match kind {
        ErrorKind::Analysis(analysis) => {
            assert_eq!(analysis.attribute(), Some("Freight"));
            assert_eq!(analysis.relation(), Some("Order"));
        }
        other => panic!("expected an analysis rejection, got {other:?}"),
    }
    let text = err.to_string();
    assert!(text.contains("admission failed"), "{text}");
    assert!(text.contains("Freight"), "{text}");
    assert!(text.contains("scenario 'typo'"), "{text}");
    assert_eq!(session.stats().analyzer_rejections, 1);
    // Nothing was planned or executed for the rejected request.
    assert_eq!(session.stats().requests, 0);
    assert_eq!(session.stats().scenarios_answered, 0);
}

/// Type-mismatched predicates (arithmetic over a TEXT attribute) are
/// likewise structured admission rejections, not mid-execution faults.
#[test]
fn ill_typed_predicate_is_rejected_at_admission() {
    let session = retail_session();
    let err = session
        .on("retail")
        .replace(
            0,
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", add(attr("Customer"), lit(1))),
                ge(attr("Price"), lit(50)),
            ),
        )
        .run()
        .unwrap_err();
    assert!(matches!(err.kind, ErrorKind::Analysis(_)), "{err:?}");
    assert!(err.to_string().contains("Customer"), "{err}");
}

// ------------------------------------------------------- property testing

/// A generated statement over `R(K int, V int, C str)`. The `IllTyped*`
/// variants are deliberately invalid — the property is that the analyzer
/// catches them at admission instead of letting execution fault.
#[derive(Debug, Clone)]
enum GenStatement {
    UpdateByKey {
        lo: i64,
        hi: i64,
        delta: i64,
    },
    UpdateByTag {
        tag: char,
        value: i64,
    },
    DeleteByValue {
        threshold: i64,
    },
    Insert {
        k: i64,
        v: i64,
        tag: char,
    },
    /// `SET V = C + 1` — arithmetic over the TEXT attribute.
    IllTypedArith,
    /// `WHERE X >= 0` on SET — references an attribute `R` does not have.
    UnknownAttribute,
    /// Vacuous: `SET V = value WHERE FALSE`.
    Vacuous {
        value: i64,
    },
}

impl GenStatement {
    fn to_statement(&self) -> Statement {
        match self {
            GenStatement::UpdateByKey { lo, hi, delta } => Statement::update(
                "R",
                SetClause::single("V", add(attr("V"), lit(*delta))),
                and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))),
            ),
            GenStatement::UpdateByTag { tag, value } => Statement::update(
                "R",
                SetClause::single("V", lit(*value)),
                eq(attr("C"), slit(tag.to_string())),
            ),
            GenStatement::DeleteByValue { threshold } => {
                Statement::delete("R", lt(attr("V"), lit(*threshold)))
            }
            GenStatement::Insert { k, v, tag } => Statement::insert_values(
                "R",
                Tuple::new(vec![
                    Value::Int(*k),
                    Value::Int(*v),
                    Value::from(tag.to_string()),
                ]),
            ),
            GenStatement::IllTypedArith => Statement::update(
                "R",
                SetClause::single("V", add(attr("C"), lit(1))),
                ge(attr("K"), lit(0)),
            ),
            GenStatement::UnknownAttribute => {
                Statement::update("R", SetClause::single("V", lit(0)), ge(attr("X"), lit(0)))
            }
            GenStatement::Vacuous { value } => {
                Statement::update("R", SetClause::single("V", lit(*value)), Expr::false_())
            }
        }
    }
}

/// Well-typed statements only — histories must register successfully.
fn arb_history_statement() -> impl Strategy<Value = GenStatement> {
    prop_oneof![
        (0i64..20, 1i64..10, -5i64..10).prop_map(|(lo, len, delta)| GenStatement::UpdateByKey {
            lo,
            hi: lo + len,
            delta,
        }),
        (0u8..3, 0i64..50).prop_map(|(t, value)| GenStatement::UpdateByTag {
            tag: char::from(b'a' + t),
            value,
        }),
        (0i64..25).prop_map(|threshold| GenStatement::DeleteByValue { threshold }),
        (30i64..40, 0i64..50, 0u8..3).prop_map(|(k, v, t)| GenStatement::Insert {
            k,
            v,
            tag: char::from(b'a' + t),
        }),
    ]
}

/// Replacement statements include the ill-typed and vacuous variants.
fn arb_replacement() -> impl Strategy<Value = GenStatement> {
    prop_oneof![
        arb_history_statement(),
        Just(GenStatement::IllTypedArith),
        Just(GenStatement::UnknownAttribute),
        (0i64..50).prop_map(|value| GenStatement::Vacuous { value }),
    ]
}

fn database(rows: usize, values: &[i64]) -> Database {
    let schema = Schema::shared(
        "R",
        vec![
            Attribute::int("K"),
            Attribute::int("V"),
            Attribute::str("C"),
        ],
    );
    let mut relation = Relation::empty(schema);
    for k in 0..rows {
        let v = values[k % values.len()].rem_euclid(50);
        let tag = char::from(b'a' + (k % 3) as u8);
        relation
            .insert(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(v),
                Value::from(tag.to_string()),
            ]))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation(relation).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance soundness + no-op identity in one property: a request
    /// either fails at admission as `ErrorKind::Analysis` (never as a
    /// mid-execution type fault), or executes — and then the analyzer
    /// ablation answers byte-identically, proven no-ops included.
    #[test]
    fn accepted_requests_execute_and_match_the_ablation(
        statements in prop::collection::vec(arb_history_statement(), 1..8),
        replacement in arb_replacement(),
        position_seed in 0usize..8,
        identity_seed in 0u8..2,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
        let session =
            Session::with_history("prop", db, history).expect("history executes");
        let position = position_seed % statements.len();
        // Half the cases replace a statement with itself — the identity
        // proof must fire and still answer byte-identically (empty).
        let replacement = if identity_seed == 0 {
            statements[position].clone()
        } else {
            replacement
        };
        let mods = ModificationSet::single_replace(position, replacement.to_statement());
        for method in Method::all() {
            let analyzed = session
                .on("prop")
                .modifications(mods.clone())
                .method(method)
                .run();
            match analyzed {
                Err(e) => {
                    // The strictness contract: an inadmissible scenario is
                    // a structured analysis rejection at admission, never
                    // an execution-phase type fault.
                    prop_assert!(
                        matches!(e.kind, ErrorKind::Analysis(_)),
                        "expected an admission rejection, got {:?}",
                        e
                    );
                }
                Ok(response) => {
                    let full = session
                        .on("prop")
                        .modifications(mods.clone())
                        .method(method)
                        .without_analyzer()
                        .run()
                        .expect("the ablation executes whatever the analyzer admitted")
                        .into_answer();
                    prop_assert_eq!(
                        response.delta(),
                        &full.delta,
                        "analyzer-on and analyzer-off answers disagree under method {}",
                        method.label()
                    );
                }
            }
        }
    }
}
