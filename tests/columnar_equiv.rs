//! Property-based equivalence of the columnar reenactment path: for
//! randomly generated NULL-heavy databases, histories and modifications,
//! the default (columnar) configuration and the `without_columnar()`
//! ablation must produce **byte-identical** deltas under every execution
//! method. The generator deliberately mixes vectorizable statements with
//! ones the columnar path must decline (string-typed predicates over
//! NULL-heavy columns, inserts, arithmetic that can fault), so both the
//! fast path and its row fallback are exercised against each other.

use proptest::prelude::*;

use mahif::{Method, Session};
use mahif_expr::builder::*;
use mahif_expr::Value;
use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};
use mahif_storage::{Attribute, Database, Relation, Schema, Tuple};

/// A generated statement over `R(K int, V int-or-null, C str)`.
#[derive(Debug, Clone)]
enum GenStatement {
    /// `UPDATE R SET V = V + delta WHERE lo <= K AND K < hi` — NULL `V`s
    /// stay NULL through the arithmetic (Kleene semantics both paths).
    UpdateByKey { lo: i64, hi: i64, delta: i64 },
    /// `UPDATE R SET V = value WHERE C = tag` — a string predicate over
    /// the interned column.
    UpdateByTag { tag: char, value: i64 },
    /// `UPDATE R SET V = NULL WHERE V >= threshold` — introduces fresh
    /// NULLs mid-history (and a `Const(Null)` SET expression, whose
    /// inferred column type both paths must agree on).
    UpdateToNull { threshold: i64 },
    /// `DELETE FROM R WHERE V < threshold` — NULL `V`s survive (the
    /// condition is not FALSE for them... it is NULL, and the reenacted
    /// `σ_{¬θ}` keeps exactly the rows where θ is FALSE).
    DeleteByValue { threshold: i64 },
    /// `INSERT INTO R VALUES (k, v-or-null, tag)` — forces the
    /// insert-split around the columnar trunk.
    Insert { k: i64, v: Option<i64>, tag: char },
}

impl GenStatement {
    fn to_statement(&self) -> Statement {
        match self {
            GenStatement::UpdateByKey { lo, hi, delta } => Statement::update(
                "R",
                SetClause::single("V", add(attr("V"), lit(*delta))),
                and(ge(attr("K"), lit(*lo)), lt(attr("K"), lit(*hi))),
            ),
            GenStatement::UpdateByTag { tag, value } => Statement::update(
                "R",
                SetClause::single("V", lit(*value)),
                eq(attr("C"), slit(tag.to_string())),
            ),
            GenStatement::UpdateToNull { threshold } => Statement::update(
                "R",
                SetClause::single("V", null()),
                ge(attr("V"), lit(*threshold)),
            ),
            GenStatement::DeleteByValue { threshold } => {
                Statement::delete("R", lt(attr("V"), lit(*threshold)))
            }
            GenStatement::Insert { k, v, tag } => Statement::insert_values(
                "R",
                Tuple::new(vec![
                    Value::Int(*k),
                    v.map_or(Value::Null, Value::Int),
                    Value::from(tag.to_string()),
                ]),
            ),
        }
    }
}

fn arb_statement() -> impl Strategy<Value = GenStatement> {
    prop_oneof![
        (0i64..20, 1i64..10, -5i64..10).prop_map(|(lo, len, delta)| GenStatement::UpdateByKey {
            lo,
            hi: lo + len,
            delta,
        }),
        (0u8..3, 0i64..50).prop_map(|(t, value)| GenStatement::UpdateByTag {
            tag: char::from(b'a' + t),
            value,
        }),
        (20i64..45).prop_map(|threshold| GenStatement::UpdateToNull { threshold }),
        (0i64..25).prop_map(|threshold| GenStatement::DeleteByValue { threshold }),
        // A negative `v` encodes a NULL insert value (the shim has no
        // `prop::option`).
        (30i64..40, -10i64..50, 0u8..3).prop_map(|(k, v, t)| GenStatement::Insert {
            k,
            v: (v >= 0).then_some(v),
            tag: char::from(b'a' + t),
        }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<GenStatement>> {
    prop::collection::vec(arb_statement(), 1..8)
}

/// The database `R(K, V, C)` with keys `0..rows`, roughly every third `V`
/// NULL, and `C` cycling over three repeated tags (so the interner and the
/// columnar string pool both see heavy repetition).
fn database(rows: usize, values: &[i64]) -> Database {
    let schema = Schema::shared(
        "R",
        vec![
            Attribute::int("K"),
            Attribute::int("V"),
            Attribute::str("C"),
        ],
    );
    let mut relation = Relation::empty(schema);
    for k in 0..rows {
        let raw = values[k % values.len()];
        let v = if raw % 3 == 0 {
            Value::Null
        } else {
            Value::Int(raw.rem_euclid(50))
        };
        let tag = char::from(b'a' + (k % 3) as u8);
        relation
            .insert(Tuple::new(vec![
                Value::Int(k as i64),
                v,
                Value::from(tag.to_string()),
            ]))
            .unwrap();
    }
    let mut db = Database::new();
    db.add_relation(relation).unwrap();
    db
}

/// Answers `modifications` twice per method — columnar on (the default)
/// and off — and demands byte-identical deltas.
fn check_flag_both_ways(
    db: &Database,
    statements: &[GenStatement],
    modifications: ModificationSet,
) -> Result<(), TestCaseError> {
    let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
    let session = Session::with_history("prop", db.clone(), history).expect("history executes");
    for method in Method::all() {
        let columnar = session
            .on("prop")
            .modifications(modifications.clone())
            .method(method)
            .run()
            .expect("columnar what-if succeeds")
            .into_answer();
        let row = session
            .on("prop")
            .modifications(modifications.clone())
            .method(method)
            .without_columnar()
            .run()
            .expect("row what-if succeeds")
            .into_answer();
        prop_assert_eq!(
            &columnar.delta,
            &row.delta,
            "columnar and row paths disagree under method {}",
            method.label()
        );
        prop_assert_eq!(
            row.stats.columnar_batches + row.stats.row_fallbacks,
            0,
            "the ablation must never touch the columnar path"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replacing a random statement: the columnar path and the row path
    /// answer identically for every method, NULLs and strings included.
    #[test]
    fn replacement_deltas_are_byte_identical(
        statements in arb_history(),
        replacement in arb_statement(),
        position_seed in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let position = position_seed % statements.len();
        let modifications = ModificationSet::new(vec![Modification::replace(
            position,
            replacement.to_statement(),
        )]);
        check_flag_both_ways(&db, &statements, modifications)?;
    }

    /// Deleting and inserting statements (pads histories with no-ops,
    /// which the columnar trunk must skip exactly like the row path).
    #[test]
    fn structural_modification_deltas_are_byte_identical(
        statements in arb_history(),
        inserted in arb_statement(),
        seed_a in 0usize..8,
        seed_b in 0usize..9,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let modifications = if seed_a % 2 == 0 {
            ModificationSet::new(vec![Modification::delete(seed_a % statements.len())])
        } else {
            ModificationSet::new(vec![Modification::insert(
                seed_b % (statements.len() + 1),
                inserted.to_statement(),
            )])
        };
        check_flag_both_ways(&db, &statements, modifications)?;
    }

    /// Grouped sweeps: a k-scenario batch answered with the columnar path
    /// on and off — same grouping, same shared plan shape — must produce
    /// byte-identical deltas for every member. This cross-checks the
    /// shared original-side phase, the group plan's member answering and
    /// the solo paths against the row evaluator.
    #[test]
    fn grouped_batches_are_byte_identical(
        statements in arb_history(),
        replacements in prop::collection::vec(arb_statement(), 2..4),
        position_seed in 0usize..8,
        values in prop::collection::vec(-20i64..60, 4..10),
    ) {
        let db = database(25, &values);
        let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
        let session =
            Session::with_history("prop", db, history).expect("history executes");
        let position = position_seed % statements.len();
        let scenarios: Vec<(String, ModificationSet)> = replacements
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    format!("s{i}"),
                    ModificationSet::single_replace(position, r.to_statement()),
                )
            })
            .collect();
        let columnar = session
            .on("prop")
            .run_batch(scenarios.clone())
            .expect("columnar batch succeeds");
        let row = session
            .on("prop")
            .without_columnar()
            .run_batch(scenarios.clone())
            .expect("row batch succeeds");
        for (name, _) in &scenarios {
            prop_assert_eq!(
                &columnar.get(name).unwrap().answer.delta,
                &row.get(name).unwrap().answer.delta,
                "scenario {} statements {:?} replacements {:?} position {}",
                name,
                &statements,
                &replacements,
                position
            );
        }
    }
}

/// A non-random regression guard: a history whose statements all vectorize
/// reports its work through the columnar counters, and the ablation
/// reproduces the delta with the counters dark.
#[test]
fn vectorizable_history_reports_columnar_work() {
    let db = database(25, &[3, 7, 11, 42]);
    let statements = [
        GenStatement::UpdateByKey {
            lo: 0,
            hi: 10,
            delta: 5,
        },
        GenStatement::DeleteByValue { threshold: 8 },
    ];
    let history = History::new(statements.iter().map(|s| s.to_statement()).collect());
    let session = Session::with_history("prop", db, history).unwrap();
    let modifications = ModificationSet::single_replace(
        0,
        GenStatement::UpdateByKey {
            lo: 0,
            hi: 10,
            delta: 9,
        }
        .to_statement(),
    );
    let columnar = session
        .on("prop")
        .modifications(modifications.clone())
        .run()
        .unwrap()
        .into_answer();
    assert!(columnar.stats.columnar_batches > 0);
    assert!(columnar.stats.vectorized_predicates > 0);
    assert_eq!(columnar.stats.row_fallbacks, 0);
    let row = session
        .on("prop")
        .modifications(modifications)
        .without_columnar()
        .run()
        .unwrap()
        .into_answer();
    assert_eq!(columnar.delta, row.delta);
    assert_eq!(row.stats.columnar_batches, 0);
}
