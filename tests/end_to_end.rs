//! Cross-crate integration tests: the full pipeline (workload generation →
//! session middleware → all execution methods) must produce exactly the
//! answer obtained by directly executing both histories, on a variety of
//! workload shapes mirroring the paper's experiments.

use mahif::{EngineConfig, Method, Session, WhatIfAnswer};
use mahif_history::{HistoricalWhatIf, ModificationSet};
use mahif_workload::{Dataset, DatasetKind, WorkloadSpec};

/// Registers the workload's history under `"test"` in a fresh session.
fn session_for(dataset: &Dataset, history: mahif_history::History) -> Session {
    Session::with_history("test", dataset.database.clone(), history).unwrap()
}

/// One configured single-query request through the session funnel.
fn run(
    session: &Session,
    modifications: &ModificationSet,
    method: Method,
    config: &EngineConfig,
) -> WhatIfAnswer {
    session
        .on("test")
        .modifications(modifications.clone())
        .method(method)
        .config(config.clone())
        .run()
        .unwrap()
        .into_answer()
}

/// Runs every method on the given workload and asserts they all equal the
/// reference answer computed by direct execution.
fn assert_all_methods_agree(dataset: &Dataset, spec: &WorkloadSpec) {
    let workload = spec.generate(dataset);
    let reference = HistoricalWhatIf::new(
        workload.history.clone(),
        dataset.database.clone(),
        workload.modifications.clone(),
    )
    .answer_by_direct_execution()
    .expect("direct execution succeeds");

    let session = session_for(dataset, workload.history.clone());
    for method in Method::all() {
        let answer = run(
            &session,
            &workload.modifications,
            method,
            &EngineConfig::default(),
        );
        assert_eq!(
            answer.delta,
            reference,
            "method {} disagrees for spec {:?}",
            method.label(),
            spec
        );
    }
}

#[test]
fn taxi_default_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 11);
    assert_all_methods_agree(&dataset, &WorkloadSpec::default().with_updates(20));
}

#[test]
fn taxi_high_dependency_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 12);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default()
            .with_updates(25)
            .with_dependent_pct(100)
            .with_affected_pct(25),
    );
}

#[test]
fn taxi_low_selectivity_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 400, 13);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default()
            .with_updates(15)
            .with_affected_pct(0),
    );
}

#[test]
fn taxi_insert_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 14);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default().with_updates(20).with_insert_pct(20),
    );
}

#[test]
fn taxi_mixed_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 15);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default()
            .with_updates(20)
            .with_insert_pct(10)
            .with_delete_pct(10),
    );
}

#[test]
fn taxi_multiple_modifications_workload() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 300, 16);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default()
            .with_updates(20)
            .with_modifications(4)
            .with_dependent_pct(40),
    );
}

#[test]
fn tpcc_workload() {
    let dataset = Dataset::generate(DatasetKind::TpccStock, 300, 17);
    assert_all_methods_agree(
        &dataset,
        &WorkloadSpec::default()
            .with_updates(15)
            .with_affected_pct(20),
    );
}

#[test]
fn ycsb_workload() {
    let dataset = Dataset::generate(DatasetKind::Ycsb, 300, 18);
    assert_all_methods_agree(&dataset, &WorkloadSpec::default().with_updates(15));
}

#[test]
fn ablation_configurations_agree() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 250, 19);
    let spec = WorkloadSpec::default().with_updates(15).with_insert_pct(10);
    let workload = spec.generate(&dataset);
    let session = session_for(&dataset, workload.history.clone());
    let reference = run(
        &session,
        &workload.modifications,
        Method::Naive,
        &EngineConfig::default(),
    )
    .delta;

    let configs = vec![
        EngineConfig::default(),
        EngineConfig {
            use_greedy_slicer: true,
            ..Default::default()
        },
        EngineConfig {
            disable_insert_split: true,
            ..Default::default()
        },
        EngineConfig {
            skip_compression_constraint: true,
            ..Default::default()
        },
        EngineConfig {
            compression: mahif_symbolic::CompressionConfig::group_by("trip_id").with_max_groups(4),
            ..Default::default()
        },
    ];
    for config in configs {
        let answer = run(
            &session,
            &workload.modifications,
            Method::ReenactPsDs,
            &config,
        );
        assert_eq!(answer.delta, reference, "config {config:?} disagrees");
    }
}

#[test]
fn optimizations_actually_reduce_work() {
    // On the default workload (10% dependent, 10% affected), program slicing
    // must exclude statements and data slicing must filter tuples.
    let dataset = Dataset::generate(DatasetKind::Taxi, 500, 20);
    let spec = WorkloadSpec::default().with_updates(30);
    let workload = spec.generate(&dataset);
    let session = session_for(&dataset, workload.history.clone());

    let optimized = run(
        &session,
        &workload.modifications,
        Method::ReenactPsDs,
        &EngineConfig::default(),
    );
    let plain = run(
        &session,
        &workload.modifications,
        Method::Reenact,
        &EngineConfig::default(),
    );

    assert!(optimized.stats.statements_reenacted < plain.stats.statements_reenacted);
    assert!(optimized.stats.input_tuples < plain.stats.input_tuples);
    assert_eq!(optimized.delta, plain.delta);
    // The generated workload has ~10% dependent updates; the slice should
    // keep well under half of the history.
    assert!(optimized.stats.statements_reenacted * 2 < plain.stats.statements_reenacted);
}

#[test]
fn phase_timings_are_populated() {
    let dataset = Dataset::generate(DatasetKind::Taxi, 200, 21);
    let workload = WorkloadSpec::default().with_updates(10).generate(&dataset);
    let session = session_for(&dataset, workload.history.clone());
    let naive = run(
        &session,
        &workload.modifications,
        Method::Naive,
        &EngineConfig::default(),
    );
    assert!(naive.timings.copy > std::time::Duration::ZERO);
    let optimized = run(
        &session,
        &workload.modifications,
        Method::ReenactPsDs,
        &EngineConfig::default(),
    );
    assert!(optimized.timings.program_slicing > std::time::Duration::ZERO);
    assert!(optimized.timings.execution > std::time::Duration::ZERO);
    assert_eq!(optimized.timings.copy, std::time::Duration::ZERO);
}
