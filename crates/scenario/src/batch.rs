//! The scenario batch API: answering k what-if scenarios over one
//! registered history with shared work.
//!
//! Since the `Session` redesign the heavy lifting lives in
//! [`mahif::Session::execute`] — *the* funnel all entry points share — and
//! [`ScenarioSet`] is a convenience layer over it: named [`Scenario`]s,
//! duplicate-name checking, and ranking of the per-scenario impacts
//! ([`BatchAnswer::rank_by`]). The funnel executes a batch as **group
//! plans** (`mahif::GroupPlan`): scenarios whose normalizations share the
//! original history and modified positions form a group, and everything
//! that depends only on the shared side is computed once per group:
//!
//! * each scenario normalized once, then **grouped**;
//! * **one program slice per group** (via
//!   [`mahif_slicing::program_slice_multi`]) instead of one per scenario,
//!   optionally refined per member
//!   ([`BatchConfig::with_slice_refinement`]);
//! * **one original-side reenactment per `(group, relation)`** — the
//!   original history's reenactment result is identical across a group's
//!   members, so members only reenact their own modified side and diff
//!   against the group's cached original relations (observable via
//!   [`BatchStats::original_reenactments`]);
//! * identical answers across the batch **stored once** (equal relation
//!   deltas share one allocation; [`BatchStats::delta_tuples_deduped`]);
//! * the session's versioned database **borrowed** for every scenario —
//!   never cloned per call; and
//! * scenarios answered **in parallel** across a scoped thread pool.
//!
//! The per-scenario deltas are exactly those of the single-query engine:
//! shared slices are supersets of each member's individual slice, the
//! group's symmetric data-slicing conditions only admit tuples that cancel
//! in each member's delta, and both are certified answer-preserving — so
//! only the work changes, never the answer.

use mahif::{ImpactSpec, Method, Response, Session, WhatIfAnswer};

use crate::compare::{rank_scenarios, ScenarioComparison};
use crate::error::ScenarioError;
use crate::scenario::Scenario;

pub use mahif::BatchStats;

/// Configuration of a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// The single-query engine configuration applied to every scenario.
    pub engine: mahif::EngineConfig,
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub parallelism: usize,
    /// Disable slice sharing across scenarios (each scenario then computes
    /// its own slice, still in parallel). Useful for ablation; the answers
    /// are identical either way.
    pub no_slice_sharing: bool,
}

impl BatchConfig {
    /// Sets the worker-thread count (`0` = auto).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Disables slice sharing (ablation).
    pub fn without_slice_sharing(mut self) -> Self {
        self.no_slice_sharing = true;
        self
    }

    /// Disables the group plans' shared original-side reenactment
    /// (ablation / pre-group-plan baseline; answers are identical).
    pub fn without_group_reenactment(mut self) -> Self {
        self.engine.disable_group_reenactment = true;
        self
    }

    /// Disables the static analyzer's admission pre-validation and no-op
    /// proofs (ablation / byte-identity baseline; proven no-ops answer
    /// identically either way).
    pub fn without_analyzer(mut self) -> Self {
        self.engine.disable_analyzer = true;
        self
    }

    /// Forces per-member refinement of the group's union slice for every
    /// multi-member group — the explicit override over the default
    /// `mahif::RefinePolicy::Auto` cost model (see
    /// `mahif::EngineConfig::refine`).
    pub fn with_slice_refinement(mut self) -> Self {
        self.engine.refine = mahif::RefinePolicy::Always;
        self
    }

    /// Disables per-member slice refinement entirely (the explicit opt-out
    /// of the Auto cost model).
    pub fn without_slice_refinement(mut self) -> Self {
        self.engine.refine = mahif::RefinePolicy::Never;
        self
    }
}

/// One scenario's answer within a batch.
#[derive(Debug, Clone)]
pub struct ScenarioAnswer {
    /// The scenario's name.
    pub name: String,
    /// The what-if answer. Its **delta** is identical to what a single
    /// request returns for the same scenario. In the default group-plan
    /// path, timings are attributed without double counting: a member of a
    /// multi-scenario group reports only its own work (modified-side
    /// reenactment + delta) and carries `stats.shared_work = true`, while
    /// the group's shared slicing and original-reenactment time is
    /// reported **once** in [`BatchStats::slicing`] /
    /// [`BatchStats::group_reenactment`] — so summing those member timings
    /// plus the batch-level shared fields gives the true batch cost.
    /// Scenarios answered outside a multi-member plan (singleton groups,
    /// the ablations, refined members) fold their slicing work like single
    /// queries; see [`BatchStats::solver_calls`] for the deduplicated
    /// accounting.
    pub answer: WhatIfAnswer,
}

/// The result of answering a scenario batch.
#[derive(Debug, Clone)]
pub struct BatchAnswer {
    /// Per-scenario answers, in registration order.
    pub answers: Vec<ScenarioAnswer>,
    /// Work statistics.
    pub stats: BatchStats,
}

impl BatchAnswer {
    /// The answer of the scenario with the given name.
    pub fn get(&self, name: &str) -> Option<&ScenarioAnswer> {
        self.answers.iter().find(|a| a.name == name)
    }

    /// Ranks the scenarios by the net change of `spec`'s metric (largest
    /// first). See [`ScenarioComparison`].
    pub fn rank_by(&self, spec: &ImpactSpec) -> Result<ScenarioComparison, ScenarioError> {
        rank_scenarios(&self.answers, spec, None)
    }

    /// Like [`Self::rank_by`], with before/after totals computed against the
    /// current database state.
    pub fn rank_by_with_baseline(
        &self,
        spec: &ImpactSpec,
        current_state: &mahif_storage::Database,
    ) -> Result<ScenarioComparison, ScenarioError> {
        rank_scenarios(&self.answers, spec, Some(current_state))
    }

    /// The batch's phase timings as trace [`mahif_obs::Span`]s, offset so
    /// the first span starts at `start` — the same conversion (and span
    /// vocabulary: `plan`, `plan.slicing`, `execute.group.<relation>`, …)
    /// the serving layer grafts into request traces, so a library caller
    /// timing a batch reads the breakdown exactly as `/debug/slow` and
    /// `Server-Timing` report it. See [`mahif::Response::trace_spans`].
    pub fn trace_spans(&self, start: std::time::Duration) -> Vec<mahif_obs::Span> {
        mahif::batch_trace_spans(
            &self.stats,
            self.answers.iter().map(|a| &a.answer.timings),
            start,
        )
    }

    fn from_response(response: Response) -> BatchAnswer {
        let stats = response.stats.clone();
        BatchAnswer {
            answers: response
                .scenarios
                .into_iter()
                .map(|s| ScenarioAnswer {
                    name: s.name,
                    answer: s.answer,
                })
                .collect(),
            stats,
        }
    }
}

/// A batch of named what-if scenarios over one registered history of a
/// [`Session`].
#[derive(Debug, Clone)]
pub struct ScenarioSet<'a> {
    session: &'a Session,
    history: String,
    scenarios: Vec<Scenario>,
}

/// The batch API is also known as `BatchWhatIf` in the paper-facing docs.
pub type BatchWhatIf<'a> = ScenarioSet<'a>;

impl<'a> ScenarioSet<'a> {
    /// Creates an empty scenario set over the history registered under
    /// `history` in `session`.
    pub fn over(session: &'a Session, history: impl Into<String>) -> Self {
        ScenarioSet {
            session,
            history: history.into(),
            scenarios: Vec::new(),
        }
    }

    /// Creates an empty scenario set over a legacy [`mahif::Mahif`]
    /// middleware (its single registered history).
    #[deprecated(
        since = "0.2.0",
        note = "use ScenarioSet::over(&session, history_name)"
    )]
    #[allow(deprecated)]
    pub fn new(mahif: &'a mahif::Mahif) -> Self {
        ScenarioSet::over(mahif.session(), mahif::Mahif::HISTORY)
    }

    /// Registers a scenario; names must be unique within the set.
    pub fn add(&mut self, scenario: Scenario) -> Result<&mut Self, ScenarioError> {
        if self.scenarios.iter().any(|s| s.name() == scenario.name()) {
            return Err(ScenarioError::DuplicateName(scenario.name().to_string()));
        }
        self.scenarios.push(scenario);
        Ok(self)
    }

    /// Registers a scenario given as a what-if SQL script.
    pub fn add_sql(&mut self, name: &str, script: &str) -> Result<&mut Self, ScenarioError> {
        let scenario = Scenario::from_sql(name, script)?;
        self.add(scenario)
    }

    /// Registers a whole sweep (see [`Scenario::sweep_replace`]).
    pub fn add_all(
        &mut self,
        scenarios: impl IntoIterator<Item = Scenario>,
    ) -> Result<&mut Self, ScenarioError> {
        for s in scenarios {
            self.add(s)?;
        }
        Ok(self)
    }

    /// The registered scenarios, in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Answers every scenario with the default batch configuration.
    pub fn answer_all(&self, method: Method) -> Result<BatchAnswer, ScenarioError> {
        self.answer_all_configured(method, &BatchConfig::default())
    }

    /// Answers every scenario by funneling the whole set into
    /// [`Session::execute`]: normalization is shared, scenario groups share
    /// one program slice each, the registered version chain is borrowed
    /// (never cloned), and scenarios run in parallel. Re-answering the same
    /// (or an overlapping) set against an unchanged history additionally
    /// reuses the session's provisioning cache (`mahif::provision`), which
    /// skips slicing and plan construction entirely — the interactive
    /// re-run-the-sweep loop this batch API exists for.
    pub fn answer_all_configured(
        &self,
        method: Method,
        config: &BatchConfig,
    ) -> Result<BatchAnswer, ScenarioError> {
        if self.scenarios.is_empty() {
            return Err(ScenarioError::EmptyScenarioSet);
        }
        let mut request = self
            .session
            .on(&self.history)
            .method(method)
            .config(config.engine.clone())
            .parallelism(config.parallelism);
        if config.no_slice_sharing {
            request = request.without_slice_sharing();
        }
        let response = request.run_batch(self.scenarios.iter().cloned())?;
        Ok(BatchAnswer::from_response(response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};

    fn session() -> Session {
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn threshold(t: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(t)),
        )
    }

    fn sweep_set<'a>(session: &'a Session, thresholds: &[i64]) -> ScenarioSet<'a> {
        let mut set = ScenarioSet::over(session, "retail");
        set.add_all(Scenario::sweep_replace_values(
            "threshold",
            0,
            thresholds.iter().copied(),
            |t| threshold(*t),
        ))
        .unwrap();
        set
    }

    fn single(session: &Session, mods: &ModificationSet, method: Method) -> WhatIfAnswer {
        session
            .on("retail")
            .modifications(mods.clone())
            .method(method)
            .run()
            .unwrap()
            .into_answer()
    }

    #[test]
    fn registration_rejects_duplicates_and_counts() {
        let session = session();
        let mut set = ScenarioSet::over(&session, "retail");
        assert!(set.is_empty());
        set.add(Scenario::new(
            "a",
            ModificationSet::single_replace(0, running_example_u1_prime()),
        ))
        .unwrap();
        let err = set
            .add(Scenario::new("a", ModificationSet::default()))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateName(_)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.scenarios()[0].name(), "a");
    }

    #[test]
    fn empty_set_errors() {
        let session = session();
        let set = ScenarioSet::over(&session, "retail");
        assert!(matches!(
            set.answer_all(Method::ReenactPsDs),
            Err(ScenarioError::EmptyScenarioSet)
        ));
    }

    #[test]
    fn unknown_history_surfaces_the_unified_error() {
        let session = session();
        let mut set = ScenarioSet::over(&session, "nope");
        set.add(Scenario::new(
            "a",
            ModificationSet::single_replace(0, running_example_u1_prime()),
        ))
        .unwrap();
        let err = set.answer_all(Method::ReenactPsDs).unwrap_err();
        assert!(err.to_string().contains("'nope'"), "{err}");
    }

    #[test]
    fn batch_matches_single_calls_for_every_method() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65, 70]);
        for method in Method::all() {
            let batch = set.answer_all(method).unwrap();
            assert_eq!(batch.answers.len(), 4);
            for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
                let reference = single(&session, scenario.modifications(), method);
                assert_eq!(
                    answer.answer.delta,
                    reference.delta,
                    "scenario {} method {}",
                    scenario.name(),
                    method.label()
                );
            }
        }
    }

    #[test]
    fn sweep_shares_one_slice() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65, 70, 75]);
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert_eq!(batch.stats.scenarios, 5);
        assert_eq!(batch.stats.slice_groups, 1);
        assert_eq!(batch.stats.shared_slice_hits, 4);
    }

    #[test]
    fn mixed_positions_form_separate_groups() {
        let session = session();
        let mut set = sweep_set(&session, &[55, 60]);
        set.add(Scenario::new(
            "drop-u2",
            ModificationSet::new(vec![Modification::delete(1)]),
        ))
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert_eq!(batch.stats.slice_groups, 2);
        assert_eq!(batch.stats.shared_slice_hits, 1);
        // Answers still match singles.
        for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
            let reference = single(&session, scenario.modifications(), Method::ReenactPsDs);
            assert_eq!(answer.answer.delta, reference.delta, "{}", scenario.name());
        }
    }

    #[test]
    fn repeated_answer_all_hits_the_provisioning_cache() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65, 70, 75]);
        let first = set.answer_all(Method::ReenactPsDs).unwrap();
        assert_eq!(session.stats().plan_cache_hits, 0);
        // The interactive re-run: same set, same history — answered from
        // the provisioned plan, byte-identically.
        let second = set.answer_all(Method::ReenactPsDs).unwrap();
        assert!(session.stats().plan_cache_hits > 0);
        for (a, b) in first.answers.iter().zip(&second.answers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.answer.delta, b.answer.delta);
        }
        // An overlapping subset of the provisioned sweep also hits: the
        // group plan certifies each member individually.
        let subset = sweep_set(&session, &[60, 70]);
        let hits_before = session.stats().plan_cache_hits;
        let sub = subset.answer_all(Method::ReenactPsDs).unwrap();
        assert!(session.stats().plan_cache_hits > hits_before);
        for (answer, scenario) in sub.answers.iter().zip(subset.scenarios()) {
            let reference = single(&session, scenario.modifications(), Method::ReenactPsDs);
            assert_eq!(answer.answer.delta, reference.delta, "{}", scenario.name());
        }
    }

    #[test]
    fn no_sharing_ablation_matches() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65]);
        let shared = set.answer_all(Method::ReenactPsDs).unwrap();
        let unshared = set
            .answer_all_configured(
                Method::ReenactPsDs,
                &BatchConfig::default().without_slice_sharing(),
            )
            .unwrap();
        assert_eq!(unshared.stats.shared_slice_hits, 0);
        assert_eq!(unshared.stats.slice_groups, 3);
        for (a, b) in shared.answers.iter().zip(&unshared.answers) {
            assert_eq!(a.answer.delta, b.answer.delta);
        }
    }

    #[test]
    fn single_threaded_configuration_matches() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65]);
        let parallel = set.answer_all(Method::ReenactPsDs).unwrap();
        let serial = set
            .answer_all_configured(
                Method::ReenactPsDs,
                &BatchConfig::default().with_parallelism(1),
            )
            .unwrap();
        assert_eq!(serial.stats.threads, 1);
        for (a, b) in parallel.answers.iter().zip(&serial.answers) {
            assert_eq!(a.answer.delta, b.answer.delta);
        }
    }

    #[test]
    fn trace_spans_cover_the_batch_phases() {
        let session = session();
        let set = sweep_set(&session, &[55, 60, 65]);
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        let start = std::time::Duration::from_millis(1);
        let spans = batch.trace_spans(start);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"plan"), "{names:?}");
        assert!(names.contains(&"execute"), "{names:?}");
        // The sweep forms one multi-member group, so the group plan's
        // shared reenactment appears with per-relation children.
        assert!(names.contains(&"execute.group"), "{names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("execute.group.")),
            "{names:?}"
        );
        for span in &spans {
            assert!(span.start >= start, "spans are offset by `start`");
            assert!(!span.duration.is_zero(), "zero-duration spans are omitted");
        }
    }

    #[test]
    fn get_by_name_and_stats_totals() {
        let session = session();
        let set = sweep_set(&session, &[55, 60]);
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert!(batch.get("threshold/55").is_some());
        assert!(batch.get("nope").is_none());
        assert!(batch.stats.total >= batch.stats.execution);
    }

    #[test]
    fn sql_scenarios_join_the_batch() {
        let session = session();
        let mut set = ScenarioSet::over(&session, "retail");
        set.add_sql(
            "sql/60",
            "REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60",
        )
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        let reference = session
            .on("retail")
            .sql("REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60")
            .method(Method::ReenactPsDs)
            .run()
            .unwrap();
        assert_eq!(batch.answers[0].answer.delta, *reference.delta());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_constructor_still_works() {
        let mahif = mahif::Mahif::new(
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let mut set = ScenarioSet::new(&mahif);
        set.add(Scenario::new(
            "a",
            ModificationSet::single_replace(0, running_example_u1_prime()),
        ))
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        let reference = mahif
            .what_if(
                &ModificationSet::single_replace(0, running_example_u1_prime()),
                Method::ReenactPsDs,
            )
            .unwrap();
        assert_eq!(batch.answers[0].answer.delta, reference.delta);
    }
}
