//! The scenario batch engine: answering k what-if scenarios over one
//! registered history with shared work.
//!
//! Compared to k independent `Mahif::what_if` calls, a batch:
//!
//! * normalizes each scenario once and **groups** scenarios whose
//!   normalizations share the original history and modified positions;
//! * computes **one program slice per group** (via
//!   [`mahif_slicing::program_slice_multi`]) instead of one per scenario —
//!   for a parameter sweep that is 1 slicing pass instead of k;
//! * reuses the middleware's versioned database for every scenario instead
//!   of cloning the pre-history state per call; and
//! * answers scenarios **in parallel** across a scoped thread pool.
//!
//! The per-scenario deltas are exactly those of the single-query engine:
//! shared slices are supersets of each member's individual slice and
//! certified answer-preserving, so only the work changes, never the answer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mahif::{
    answer_normalized, answer_what_if, compute_program_slice, EngineConfig, ImpactSpec, Mahif,
    Method, WhatIfAnswer,
};
use mahif_history::{HistoricalWhatIf, NormalizedWhatIf};
use mahif_slicing::{program_slice_multi, ProgramSliceResult, ProgramSlicingConfig};

use crate::cache::{group_scenarios, SliceCache};
use crate::compare::{rank_scenarios, ScenarioComparison};
use crate::error::ScenarioError;
use crate::scenario::Scenario;

/// Configuration of a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// The single-query engine configuration applied to every scenario.
    pub engine: EngineConfig,
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub parallelism: usize,
    /// Disable slice sharing across scenarios (each scenario then computes
    /// its own slice, still in parallel). Useful for ablation; the answers
    /// are identical either way.
    pub no_slice_sharing: bool,
}

impl BatchConfig {
    /// Sets the worker-thread count (`0` = auto).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Disables slice sharing (ablation).
    pub fn without_slice_sharing(mut self) -> Self {
        self.no_slice_sharing = true;
        self
    }
}

/// One scenario's answer within a batch.
#[derive(Debug, Clone)]
pub struct ScenarioAnswer {
    /// The scenario's name.
    pub name: String,
    /// The what-if answer. Its **delta** is identical to what
    /// `Mahif::what_if` returns for the same scenario; the timings and work
    /// stats describe the batch's (possibly shared) work instead — with a
    /// shared group slice, every member reports the group's slicing duration,
    /// solver calls and union-slice size, so summing them across a batch
    /// overstates the slicing cost.
    pub answer: WhatIfAnswer,
}

/// Work statistics of a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of scenarios answered.
    pub scenarios: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct program slices computed (slice-sharing groups).
    pub slice_groups: usize,
    /// Scenarios that reused a group slice instead of computing their own.
    pub shared_slice_hits: usize,
    /// Wall-clock time normalizing and grouping the scenarios.
    pub normalize: Duration,
    /// Wall-clock time computing program slices.
    pub slicing: Duration,
    /// Wall-clock time reenacting and diffing all scenarios.
    pub execution: Duration,
    /// End-to-end wall-clock time of `answer_all`.
    pub total: Duration,
}

/// The result of answering a scenario batch.
#[derive(Debug, Clone)]
pub struct BatchAnswer {
    /// Per-scenario answers, in registration order.
    pub answers: Vec<ScenarioAnswer>,
    /// Work statistics.
    pub stats: BatchStats,
}

impl BatchAnswer {
    /// The answer of the scenario with the given name.
    pub fn get(&self, name: &str) -> Option<&ScenarioAnswer> {
        self.answers.iter().find(|a| a.name == name)
    }

    /// Ranks the scenarios by the net change of `spec`'s metric (largest
    /// first). See [`ScenarioComparison`].
    pub fn rank_by(&self, spec: &ImpactSpec) -> Result<ScenarioComparison, ScenarioError> {
        rank_scenarios(&self.answers, spec, None)
    }

    /// Like [`Self::rank_by`], with before/after totals computed against the
    /// current database state.
    pub fn rank_by_with_baseline(
        &self,
        spec: &ImpactSpec,
        current_state: &mahif_storage::Database,
    ) -> Result<ScenarioComparison, ScenarioError> {
        rank_scenarios(&self.answers, spec, Some(current_state))
    }
}

/// A batch of named what-if scenarios over one [`Mahif`] middleware.
#[derive(Debug, Clone)]
pub struct ScenarioSet<'a> {
    mahif: &'a Mahif,
    scenarios: Vec<Scenario>,
}

/// The batch API is also known as `BatchWhatIf` in the paper-facing docs.
pub type BatchWhatIf<'a> = ScenarioSet<'a>;

impl<'a> ScenarioSet<'a> {
    /// Creates an empty scenario set over the registered history.
    pub fn new(mahif: &'a Mahif) -> Self {
        ScenarioSet {
            mahif,
            scenarios: Vec::new(),
        }
    }

    /// Registers a scenario; names must be unique within the set.
    pub fn add(&mut self, scenario: Scenario) -> Result<&mut Self, ScenarioError> {
        if self.scenarios.iter().any(|s| s.name() == scenario.name()) {
            return Err(ScenarioError::DuplicateName(scenario.name().to_string()));
        }
        self.scenarios.push(scenario);
        Ok(self)
    }

    /// Registers a scenario given as a what-if SQL script.
    pub fn add_sql(&mut self, name: &str, script: &str) -> Result<&mut Self, ScenarioError> {
        let scenario = Scenario::from_sql(name, script)?;
        self.add(scenario)
    }

    /// Registers a whole sweep (see [`Scenario::sweep_replace`]).
    pub fn add_all(
        &mut self,
        scenarios: impl IntoIterator<Item = Scenario>,
    ) -> Result<&mut Self, ScenarioError> {
        for s in scenarios {
            self.add(s)?;
        }
        Ok(self)
    }

    /// The registered scenarios, in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Answers every scenario with the default batch configuration.
    pub fn answer_all(&self, method: Method) -> Result<BatchAnswer, ScenarioError> {
        self.answer_all_configured(method, &BatchConfig::default())
    }

    /// Answers every scenario, sharing normalization, program slices and the
    /// versioned database across the batch and running scenarios in
    /// parallel.
    pub fn answer_all_configured(
        &self,
        method: Method,
        config: &BatchConfig,
    ) -> Result<BatchAnswer, ScenarioError> {
        let total_start = Instant::now();
        if self.scenarios.is_empty() {
            return Err(ScenarioError::EmptyScenarioSet);
        }
        let threads = resolve_parallelism(config.parallelism, self.scenarios.len());
        let mut stats = BatchStats {
            scenarios: self.scenarios.len(),
            threads,
            ..Default::default()
        };

        let answers = if method == Method::Naive {
            // The naive algorithm re-executes the modified history over a
            // copy of the pre-history state; nothing is shareable beyond the
            // middleware's stored states, so scenarios just run in parallel.
            let exec_start = Instant::now();
            let answers = self.run_scenarios(threads, |i| {
                let query = HistoricalWhatIf::new(
                    self.mahif.history().clone(),
                    self.mahif.initial_state().clone(),
                    self.scenarios[i].modifications().clone(),
                );
                answer_what_if(
                    &query,
                    self.mahif.versions(),
                    self.mahif.current_state(),
                    method,
                    &config.engine,
                )
                .map_err(ScenarioError::from)
            })?;
            stats.execution = exec_start.elapsed();
            answers
        } else {
            // Normalize once per scenario and group scenarios that can share
            // a program slice.
            let normalize_start = Instant::now();
            let normalized = self.normalize_all()?;
            let groups = group_scenarios(&normalized);
            stats.normalize = normalize_start.elapsed();

            // One slice per group (shared), or one per scenario (ablation /
            // greedy slicer, whose certificates are pairwise only).
            let slice_start = Instant::now();
            let share = method.uses_program_slicing()
                && !config.no_slice_sharing
                && !config.engine.use_greedy_slicer;
            let slices: Vec<Arc<ProgramSliceResult>> = if share {
                let computed = run_indexed(groups.groups.len(), threads, |g| {
                    let group = &groups.groups[g];
                    // Borrow each member's modified history from the
                    // normalization results instead of cloning it into the
                    // group.
                    let variants: Vec<&mahif_history::History> = group
                        .members
                        .iter()
                        .map(|&i| &normalized[i].modified)
                        .collect();
                    program_slice_multi(
                        &group.original,
                        &variants,
                        &group.positions,
                        self.mahif.initial_state(),
                        &slicing_config(&config.engine),
                    )
                    .map(Arc::new)
                    .map_err(ScenarioError::from)
                });
                collect_results(computed)?
            } else {
                let computed = run_indexed(normalized.len(), threads, |i| {
                    compute_program_slice(
                        &normalized[i],
                        self.mahif.initial_state(),
                        method,
                        &config.engine,
                    )
                    .map(Arc::new)
                    .map_err(ScenarioError::from)
                });
                collect_results(computed)?
            };
            stats.slicing = slice_start.elapsed();

            let cache: Option<SliceCache> = share.then(|| SliceCache::new(&groups, slices.clone()));
            if share {
                stats.slice_groups = groups.groups.len();
                stats.shared_slice_hits = self.scenarios.len() - groups.groups.len();
            } else {
                stats.slice_groups = slices.len();
            }

            let exec_start = Instant::now();
            let answers = self.run_scenarios(threads, |i| {
                let slice = match &cache {
                    Some(cache) => cache.slice_for(i),
                    None => Arc::clone(&slices[i]),
                };
                answer_normalized(
                    &normalized[i],
                    &slice,
                    self.mahif.versions(),
                    method,
                    &config.engine,
                )
                .map_err(ScenarioError::from)
            })?;
            stats.execution = exec_start.elapsed();
            answers
        };

        stats.total = total_start.elapsed();
        Ok(BatchAnswer { answers, stats })
    }

    /// Normalizes every scenario against the registered history.
    fn normalize_all(&self) -> Result<Vec<NormalizedWhatIf>, ScenarioError> {
        self.scenarios
            .iter()
            .map(|s| {
                let (original, modified, modified_positions) =
                    s.modifications().normalize(self.mahif.history())?;
                Ok(NormalizedWhatIf {
                    original,
                    modified,
                    modified_positions,
                })
            })
            .collect()
    }

    /// Runs `answer` for every scenario on the worker pool and pairs the
    /// results with the scenario names, converting worker panics into
    /// [`ScenarioError::WorkerPanicked`].
    fn run_scenarios(
        &self,
        threads: usize,
        answer: impl Fn(usize) -> Result<WhatIfAnswer, ScenarioError> + Sync,
    ) -> Result<Vec<ScenarioAnswer>, ScenarioError> {
        let results = run_indexed(self.scenarios.len(), threads, |i| {
            catch_unwind(AssertUnwindSafe(|| answer(i))).unwrap_or_else(|_| {
                Err(ScenarioError::WorkerPanicked {
                    scenario: self.scenarios[i].name().to_string(),
                })
            })
        });
        let answers = collect_results(results)?;
        Ok(self
            .scenarios
            .iter()
            .zip(answers)
            .map(|(s, answer)| ScenarioAnswer {
                name: s.name().to_string(),
                answer,
            })
            .collect())
    }
}

/// Maps the engine configuration to the slicing configuration (the same
/// mapping `mahif::compute_program_slice` applies).
fn slicing_config(engine: &EngineConfig) -> ProgramSlicingConfig {
    ProgramSlicingConfig {
        compression: engine.compression.clone(),
        solver: engine.solver.clone(),
        skip_compression_constraint: engine.skip_compression_constraint,
    }
}

/// `0` means "use the machine's available parallelism"; the thread count is
/// never larger than the number of work items.
fn resolve_parallelism(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Runs `f(0..count)` on `threads` scoped workers with work stealing
/// (atomic index), preserving result order.
fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<Result<T, ScenarioError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, ScenarioError> + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, ScenarioError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index is claimed by exactly one worker")
        })
        .collect()
}

/// First error wins (in scenario order); otherwise unwraps all results.
fn collect_results<T>(results: Vec<Result<T, ScenarioError>>) -> Result<Vec<T>, ScenarioError> {
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};

    fn mahif() -> Mahif {
        Mahif::new(
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn threshold(t: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(t)),
        )
    }

    fn sweep_set<'a>(mahif: &'a Mahif, thresholds: &[i64]) -> ScenarioSet<'a> {
        let mut set = ScenarioSet::new(mahif);
        set.add_all(Scenario::sweep_replace_values(
            "threshold",
            0,
            thresholds.iter().copied(),
            |t| threshold(*t),
        ))
        .unwrap();
        set
    }

    #[test]
    fn registration_rejects_duplicates_and_counts() {
        let m = mahif();
        let mut set = ScenarioSet::new(&m);
        assert!(set.is_empty());
        set.add(Scenario::new(
            "a",
            ModificationSet::single_replace(0, running_example_u1_prime()),
        ))
        .unwrap();
        let err = set
            .add(Scenario::new("a", ModificationSet::default()))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateName(_)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.scenarios()[0].name(), "a");
    }

    #[test]
    fn empty_set_errors() {
        let m = mahif();
        let set = ScenarioSet::new(&m);
        assert!(matches!(
            set.answer_all(Method::ReenactPsDs),
            Err(ScenarioError::EmptyScenarioSet)
        ));
    }

    #[test]
    fn batch_matches_single_calls_for_every_method() {
        let m = mahif();
        let set = sweep_set(&m, &[55, 60, 65, 70]);
        for method in Method::all() {
            let batch = set.answer_all(method).unwrap();
            assert_eq!(batch.answers.len(), 4);
            for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
                let single = m.what_if(scenario.modifications(), method).unwrap();
                assert_eq!(
                    answer.answer.delta,
                    single.delta,
                    "scenario {} method {}",
                    scenario.name(),
                    method.label()
                );
            }
        }
    }

    #[test]
    fn sweep_shares_one_slice() {
        let m = mahif();
        let set = sweep_set(&m, &[55, 60, 65, 70, 75]);
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert_eq!(batch.stats.scenarios, 5);
        assert_eq!(batch.stats.slice_groups, 1);
        assert_eq!(batch.stats.shared_slice_hits, 4);
    }

    #[test]
    fn mixed_positions_form_separate_groups() {
        let m = mahif();
        let mut set = sweep_set(&m, &[55, 60]);
        set.add(Scenario::new(
            "drop-u2",
            ModificationSet::new(vec![Modification::delete(1)]),
        ))
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert_eq!(batch.stats.slice_groups, 2);
        assert_eq!(batch.stats.shared_slice_hits, 1);
        // Answers still match singles.
        for (scenario, answer) in set.scenarios().iter().zip(&batch.answers) {
            let single = m
                .what_if(scenario.modifications(), Method::ReenactPsDs)
                .unwrap();
            assert_eq!(answer.answer.delta, single.delta, "{}", scenario.name());
        }
    }

    #[test]
    fn no_sharing_ablation_matches() {
        let m = mahif();
        let set = sweep_set(&m, &[55, 60, 65]);
        let shared = set.answer_all(Method::ReenactPsDs).unwrap();
        let unshared = set
            .answer_all_configured(
                Method::ReenactPsDs,
                &BatchConfig::default().without_slice_sharing(),
            )
            .unwrap();
        assert_eq!(unshared.stats.shared_slice_hits, 0);
        assert_eq!(unshared.stats.slice_groups, 3);
        for (a, b) in shared.answers.iter().zip(&unshared.answers) {
            assert_eq!(a.answer.delta, b.answer.delta);
        }
    }

    #[test]
    fn single_threaded_configuration_matches() {
        let m = mahif();
        let set = sweep_set(&m, &[55, 60, 65]);
        let parallel = set.answer_all(Method::ReenactPsDs).unwrap();
        let serial = set
            .answer_all_configured(
                Method::ReenactPsDs,
                &BatchConfig::default().with_parallelism(1),
            )
            .unwrap();
        assert_eq!(serial.stats.threads, 1);
        for (a, b) in parallel.answers.iter().zip(&serial.answers) {
            assert_eq!(a.answer.delta, b.answer.delta);
        }
    }

    #[test]
    fn get_by_name_and_stats_totals() {
        let m = mahif();
        let set = sweep_set(&m, &[55, 60]);
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        assert!(batch.get("threshold/55").is_some());
        assert!(batch.get("nope").is_none());
        assert!(batch.stats.total >= batch.stats.execution);
    }

    #[test]
    fn sql_scenarios_join_the_batch() {
        let m = mahif();
        let mut set = ScenarioSet::new(&m);
        set.add_sql(
            "sql/60",
            "REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60",
        )
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        let single = m
            .what_if_sql(
                "REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60",
                Method::ReenactPsDs,
            )
            .unwrap();
        assert_eq!(batch.answers[0].answer.delta, single.delta);
    }

    #[test]
    fn run_indexed_preserves_order_and_reports_errors() {
        let results = run_indexed(8, 4, |i| {
            if i == 5 {
                Err(ScenarioError::EmptyScenarioSet)
            } else {
                Ok(i * 10)
            }
        });
        assert_eq!(results.len(), 8);
        assert_eq!(*results[3].as_ref().unwrap(), 30);
        assert!(results[5].is_err());
        assert!(collect_results(results).is_err());
    }

    #[test]
    fn resolve_parallelism_bounds() {
        assert_eq!(resolve_parallelism(4, 2), 2);
        assert_eq!(resolve_parallelism(1, 100), 1);
        assert!(resolve_parallelism(0, 100) >= 1);
    }
}
