//! Named what-if scenarios and sweep helpers.

use std::fmt;

use mahif_history::{Modification, ModificationSet, Statement};

use crate::error::ScenarioError;

/// One named hypothetical: a set of modifications to the registered history.
///
/// Scenarios are the unit of a batch — an analyst registers several of them
/// (alternative policies, or one policy swept over a parameter) and answers
/// them together with `ScenarioSet::answer_all`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    modifications: ModificationSet,
}

impl Scenario {
    /// Creates a named scenario from a modification set.
    pub fn new(name: impl Into<String>, modifications: ModificationSet) -> Self {
        Scenario {
            name: name.into(),
            modifications,
        }
    }

    /// Creates a scenario from a what-if script in SQL text, e.g.
    /// `"REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60"`.
    pub fn from_sql(name: impl Into<String>, script: &str) -> Result<Self, ScenarioError> {
        let name = name.into();
        let modifications =
            mahif_sqlparse::parse_whatif(script).map_err(|e| ScenarioError::InvalidScript {
                scenario: name.clone(),
                message: e.to_string(),
            })?;
        Ok(Scenario {
            name,
            modifications,
        })
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's modifications.
    pub fn modifications(&self) -> &ModificationSet {
        &self.modifications
    }

    /// Sweep helper: one scenario per `(label, statement)` pair, each
    /// replacing the statement at `position`. Scenario names are
    /// `"{prefix}/{label}"`. All resulting scenarios modify the same
    /// position, so a batch answers them with a single shared program slice.
    pub fn sweep_replace<L: fmt::Display>(
        prefix: &str,
        position: usize,
        variants: impl IntoIterator<Item = (L, Statement)>,
    ) -> Vec<Scenario> {
        variants
            .into_iter()
            .map(|(label, statement)| {
                Scenario::new(
                    format!("{prefix}/{label}"),
                    ModificationSet::new(vec![Modification::replace(position, statement)]),
                )
            })
            .collect()
    }

    /// Sweep helper over plain values: `make` builds the replacement
    /// statement for each value, and the value itself is the label.
    pub fn sweep_replace_values<V: fmt::Display>(
        prefix: &str,
        position: usize,
        values: impl IntoIterator<Item = V>,
        make: impl Fn(&V) -> Statement,
    ) -> Vec<Scenario> {
        values
            .into_iter()
            .map(|value| {
                let statement = make(&value);
                Scenario::new(
                    format!("{prefix}/{value}"),
                    ModificationSet::new(vec![Modification::replace(position, statement)]),
                )
            })
            .collect()
    }
}

impl From<Scenario> for mahif::ScenarioSpec {
    fn from(scenario: Scenario) -> Self {
        mahif::ScenarioSpec::new(scenario.name, scenario.modifications)
    }
}

impl From<&Scenario> for mahif::ScenarioSpec {
    fn from(scenario: &Scenario) -> Self {
        mahif::ScenarioSpec::new(scenario.name.clone(), scenario.modifications.clone())
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.modifications)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_history::SetClause;

    fn threshold_statement(threshold: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(threshold)),
        )
    }

    #[test]
    fn construction_and_accessors() {
        let s = Scenario::new(
            "t60",
            ModificationSet::single_replace(0, threshold_statement(60)),
        );
        assert_eq!(s.name(), "t60");
        assert_eq!(s.modifications().len(), 1);
        assert!(s.to_string().contains("t60"));
    }

    #[test]
    fn from_sql_parses_and_reports_errors() {
        let s = Scenario::from_sql(
            "sql",
            "REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60",
        )
        .unwrap();
        assert_eq!(s.modifications().len(), 1);
        let err = Scenario::from_sql("bad", "FROB STATEMENT 1").unwrap_err();
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn sweep_replace_builds_one_scenario_per_variant() {
        let scenarios = Scenario::sweep_replace(
            "threshold",
            0,
            [(55, threshold_statement(55)), (60, threshold_statement(60))],
        );
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].name(), "threshold/55");
        assert_eq!(scenarios[1].name(), "threshold/60");
        assert_eq!(
            scenarios[0].modifications().modifications()[0].position(),
            0
        );
    }

    #[test]
    fn sweep_replace_values_labels_with_value() {
        let scenarios =
            Scenario::sweep_replace_values("t", 0, [55i64, 60, 65], |v| threshold_statement(*v));
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[2].name(), "t/65");
    }
}
