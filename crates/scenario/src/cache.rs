//! Slice-sharing groups and the shared-slice cache.
//!
//! The grouping machinery moved down into `mahif-slicing` (module
//! `groups`) when the `Session` funnel unified the single and batch
//! execution paths — the core engine shares it now. This module re-exports
//! the types under their historical paths.

pub use mahif_slicing::{group_scenarios, ScenarioGroup, ScenarioGroups, SliceCache};
