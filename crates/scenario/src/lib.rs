//! # mahif-scenario
//!
//! The **scenario batch layer**: named what-if scenarios, sweeps and
//! cross-scenario ranking over a [`mahif::Session`].
//!
//! The paper answers one query `(H, D, M)` at a time, but real what-if
//! analysis is exploratory — an analyst sweeps a parameter ("what if the
//! free-shipping threshold had been $55 / $60 / $65…?") or compares
//! alternative policies over the same history. This crate names those
//! hypotheticals and ranks their impacts:
//!
//! * [`Scenario`] — a named [`ModificationSet`](mahif_history::ModificationSet)
//!   or what-if SQL script, with sweep helpers
//!   ([`Scenario::sweep_replace`], [`Scenario::sweep_replace_values`]);
//! * [`ScenarioSet`] (alias [`BatchWhatIf`]) — registers scenarios over one
//!   history of a [`mahif::Session`] and answers them all with
//!   [`ScenarioSet::answer_all`];
//! * [`BatchAnswer`] — per-scenario deltas plus batch work statistics, with
//!   [`BatchAnswer::rank_by`] reducing the batch to a ranked impact table
//!   via an [`ImpactSpec`](mahif::ImpactSpec).
//!
//! ## What is shared
//!
//! Execution funnels into [`mahif::Session::execute`] — the same path
//! single queries take (a single query is a batch of one):
//!
//! | work | per-call engines (pre-`Session`) | the session funnel |
//! |---|---|---|
//! | versioned database | cloned per call | borrowed, registered once |
//! | normalization | per call | once per scenario, grouped |
//! | program slice | per call | **one per group** ([`mahif_slicing::program_slice_multi`]) |
//! | execution | sequential | parallel worker pool |
//!
//! Scenarios whose normalizations share the original history and modified
//! positions (every parameter sweep) form a *group* answered with a single
//! shared program slice, certified for all members at once. The per-scenario
//! deltas are byte-identical to k independent single-query requests.
//!
//! ## Example
//!
//! ```
//! use mahif::{ImpactSpec, Method, Session};
//! use mahif_history::statement::{running_example_database, running_example_history};
//! use mahif_history::{History, SetClause, Statement};
//! use mahif_expr::builder::*;
//! use mahif_scenario::{Scenario, ScenarioSet};
//!
//! let session = Session::with_history(
//!     "retail",
//!     running_example_database(),
//!     History::new(running_example_history()),
//! )
//! .unwrap();
//!
//! // Sweep the free-shipping threshold.
//! let mut set = ScenarioSet::over(&session, "retail");
//! set.add_all(Scenario::sweep_replace_values("threshold", 0, [55i64, 60, 65], |t| {
//!     Statement::update(
//!         "Order",
//!         SetClause::single("ShippingFee", lit(0)),
//!         ge(attr("Price"), lit(*t)),
//!     )
//! }))
//! .unwrap();
//!
//! let batch = set.answer_all(Method::ReenactPsDs).unwrap();
//! assert_eq!(batch.stats.slice_groups, 1); // one shared slice for the sweep
//! let ranking = batch.rank_by(&ImpactSpec::sum_of("Order", "ShippingFee")).unwrap();
//! assert_eq!(ranking.best().unwrap().name, "threshold/65");
//! ```

#![forbid(unsafe_code)]
// `ScenarioError` wraps the unified `mahif::Error` (which carries its
// context inline); error paths are cold, see the same allow in `mahif`.
#![allow(clippy::result_large_err)]

pub mod batch;
pub mod cache;
pub mod compare;
pub mod error;
pub mod scenario;

pub use batch::{BatchAnswer, BatchConfig, BatchStats, BatchWhatIf, ScenarioAnswer, ScenarioSet};
pub use cache::{group_scenarios, ScenarioGroup, ScenarioGroups, SliceCache};
pub use compare::{rank_scenarios, RankedScenario, ScenarioComparison};
pub use error::ScenarioError;
pub use scenario::Scenario;
