//! Errors of the scenario batch engine.

use std::fmt;

use mahif::MahifError;
use mahif_history::HistoryError;
use mahif_slicing::SlicingError;

/// Errors raised while registering or answering scenario batches.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// The session funnel failed; the wrapped unified [`mahif::Error`]
    /// names the failing phase, scenario and history. Since the `Session`
    /// redesign this is the variant engine failures arrive as (worker
    /// panics excepted, see [`ScenarioError::WorkerPanicked`]).
    Mahif(MahifError),
    /// A history operation (normalization, application) failed. Retained
    /// for code constructing scenario errors directly; funnel failures
    /// arrive as [`ScenarioError::Mahif`] with full context instead.
    History(HistoryError),
    /// Shared program slicing failed. Retained for code constructing
    /// scenario errors directly; funnel failures arrive as
    /// [`ScenarioError::Mahif`] with full context instead.
    Slicing(SlicingError),
    /// A what-if script could not be parsed.
    InvalidScript {
        /// The scenario whose script failed to parse.
        scenario: String,
        /// Parser message.
        message: String,
    },
    /// Two scenarios were registered under the same name.
    DuplicateName(String),
    /// `answer_all` was called on an empty scenario set.
    EmptyScenarioSet,
    /// A worker thread panicked while answering a scenario.
    WorkerPanicked {
        /// The scenario being answered when the worker died.
        scenario: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Mahif(e) => write!(f, "engine error: {e}"),
            ScenarioError::History(e) => write!(f, "history error: {e}"),
            ScenarioError::Slicing(e) => write!(f, "slicing error: {e}"),
            ScenarioError::InvalidScript { scenario, message } => {
                write!(
                    f,
                    "invalid what-if script for scenario '{scenario}': {message}"
                )
            }
            ScenarioError::DuplicateName(name) => {
                write!(f, "a scenario named '{name}' is already registered")
            }
            ScenarioError::EmptyScenarioSet => {
                write!(f, "answer_all called on an empty scenario set")
            }
            ScenarioError::WorkerPanicked { scenario } => {
                write!(
                    f,
                    "worker thread panicked while answering scenario '{scenario}'"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<MahifError> for ScenarioError {
    fn from(e: MahifError) -> Self {
        // Preserve the pre-`Session` error contract for panics: callers
        // matching `ScenarioError::WorkerPanicked` keep working.
        if matches!(e.kind, mahif::ErrorKind::WorkerPanicked) {
            return ScenarioError::WorkerPanicked {
                scenario: e.scenario.unwrap_or_else(|| "<unknown>".to_string()),
            };
        }
        ScenarioError::Mahif(e)
    }
}

impl From<HistoryError> for ScenarioError {
    fn from(e: HistoryError) -> Self {
        ScenarioError::History(e)
    }
}

impl From<SlicingError> for ScenarioError {
    fn from(e: SlicingError) -> Self {
        ScenarioError::Slicing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(ScenarioError::DuplicateName("s".into())
            .to_string()
            .contains("already registered"));
        assert!(ScenarioError::EmptyScenarioSet
            .to_string()
            .contains("empty"));
        assert!(ScenarioError::InvalidScript {
            scenario: "s".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(ScenarioError::WorkerPanicked {
            scenario: "s".into()
        }
        .to_string()
        .contains("panicked"));
        let e: ScenarioError = HistoryError::PositionOutOfBounds {
            position: 9,
            length: 3,
        }
        .into();
        assert!(e.to_string().contains("history error"));
    }
}
