//! Cross-scenario comparison: reducing a batch's deltas to a ranked impact
//! table ("which threshold would have earned the most?").

use std::fmt;

use mahif::{ImpactReport, ImpactSpec};
use mahif_storage::Database;

use crate::batch::ScenarioAnswer;
use crate::error::ScenarioError;

/// One scenario's position in a comparison.
#[derive(Debug, Clone)]
pub struct RankedScenario {
    /// 1-based rank (1 = largest net change of the metric).
    pub rank: usize,
    /// The scenario's name.
    pub name: String,
    /// The scenario's impact report.
    pub report: ImpactReport,
}

/// A batch's scenarios ranked by the net change of one metric.
#[derive(Debug, Clone)]
pub struct ScenarioComparison {
    /// The analyzed relation.
    pub relation: String,
    /// The ranked metric's name.
    pub metric_name: String,
    /// The metric total over the current (actual) database state, when a
    /// baseline was requested.
    pub baseline: Option<i64>,
    /// Scenarios, largest net change first; ties break by name.
    pub entries: Vec<RankedScenario>,
}

impl ScenarioComparison {
    /// The scenario with the largest net change.
    pub fn best(&self) -> Option<&RankedScenario> {
        self.entries.first()
    }

    /// The entry for a scenario by name.
    pub fn get(&self, name: &str) -> Option<&RankedScenario> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// Ranks `answers` by the net change of `spec`'s metric; with a
/// `current_state`, each report also carries absolute before/after totals.
pub fn rank_scenarios(
    answers: &[ScenarioAnswer],
    spec: &ImpactSpec,
    current_state: Option<&Database>,
) -> Result<ScenarioComparison, ScenarioError> {
    let mut entries = Vec::with_capacity(answers.len());
    let mut baseline = None;
    for a in answers {
        let mut report = a.answer.impact(spec)?;
        if let Some(db) = current_state {
            report = report.with_baseline(db, spec)?;
            baseline = report.baseline;
        }
        entries.push(RankedScenario {
            rank: 0,
            name: a.name.clone(),
            report,
        });
    }
    entries.sort_by(|a, b| {
        b.report
            .net_change()
            .cmp(&a.report.net_change())
            .then_with(|| a.name.cmp(&b.name))
    });
    for (i, e) in entries.iter_mut().enumerate() {
        e.rank = i + 1;
    }
    Ok(ScenarioComparison {
        relation: spec.relation.clone(),
        metric_name: spec.metric_name.clone(),
        baseline,
        entries,
    })
}

impl fmt::Display for ScenarioComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario ranking by SUM({}) over {}:",
            self.metric_name, self.relation
        )?;
        let name_width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(8)
            .max("scenario".len());
        if self.baseline.is_some() {
            writeln!(
                f,
                "  {:>4}  {:<name_width$}  {:>12}  {:>12}  {:>10}",
                "rank", "scenario", "net change", "hypo total", "rows"
            )?;
        } else {
            writeln!(
                f,
                "  {:>4}  {:<name_width$}  {:>12}  {:>10}",
                "rank", "scenario", "net change", "rows"
            )?;
        }
        for e in &self.entries {
            match e.report.hypothetical_total() {
                Some(total) => writeln!(
                    f,
                    "  {:>4}  {:<name_width$}  {:>+12}  {:>12}  {:>10}",
                    e.rank,
                    e.name,
                    e.report.net_change(),
                    total,
                    e.report.rows_changed()
                )?,
                None => writeln!(
                    f,
                    "  {:>4}  {:<name_width$}  {:>+12}  {:>10}",
                    e.rank,
                    e.name,
                    e.report.net_change(),
                    e.report.rows_changed()
                )?,
            }
        }
        if let Some(baseline) = self.baseline {
            writeln!(f, "  actual total: {baseline}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ScenarioSet;
    use crate::scenario::Scenario;
    use mahif::{Method, Session};
    use mahif_expr::builder::*;
    use mahif_history::statement::{running_example_database, running_example_history};
    use mahif_history::{History, SetClause, Statement};

    fn session() -> Session {
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn batch() -> crate::batch::BatchAnswer {
        let session = session();
        let mut set = ScenarioSet::over(&session, "retail");
        set.add_all(Scenario::sweep_replace_values(
            "threshold",
            0,
            [55i64, 60, 100],
            |t| {
                Statement::update(
                    "Order",
                    SetClause::single("ShippingFee", lit(0)),
                    ge(attr("Price"), lit(*t)),
                )
            },
        ))
        .unwrap();
        set.answer_all(Method::ReenactPsDs).unwrap()
    }

    #[test]
    fn ranking_orders_by_net_change() {
        let batch = batch();
        let ranking = batch
            .rank_by(&ImpactSpec::sum_of("Order", "ShippingFee"))
            .unwrap();
        assert_eq!(ranking.entries.len(), 3);
        // A higher free-shipping threshold waives fewer fees, so fee revenue
        // grows with the threshold: 100 > 60 > 55 (55 changes nothing: the
        // only order between 50 and 55 is Alex's at exactly 50... none, so
        // the 55 scenario's net change is the smallest).
        let changes: Vec<i64> = ranking
            .entries
            .iter()
            .map(|e| e.report.net_change())
            .collect();
        assert!(changes.windows(2).all(|w| w[0] >= w[1]), "{changes:?}");
        assert_eq!(ranking.best().unwrap().rank, 1);
        assert_eq!(ranking.best().unwrap().name, "threshold/100");
        assert!(ranking.get("threshold/60").is_some());
        assert!(ranking.baseline.is_none());
        assert!(ranking.to_string().contains("net change"));
    }

    #[test]
    fn ranking_with_baseline_reports_totals() {
        let session = session();
        let mut set = ScenarioSet::over(&session, "retail");
        set.add_all(Scenario::sweep_replace_values(
            "threshold",
            0,
            [60i64],
            |t| {
                Statement::update(
                    "Order",
                    SetClause::single("ShippingFee", lit(0)),
                    ge(attr("Price"), lit(*t)),
                )
            },
        ))
        .unwrap();
        let batch = set.answer_all(Method::ReenactPsDs).unwrap();
        let ranking = batch
            .rank_by_with_baseline(
                &ImpactSpec::sum_of("Order", "ShippingFee"),
                session.history("retail").unwrap().current_state(),
            )
            .unwrap();
        // Current fees total 17 (Figure 3); threshold 60 charges Alex 5 more.
        assert_eq!(ranking.baseline, Some(17));
        assert_eq!(ranking.entries[0].report.hypothetical_total(), Some(22));
        assert!(ranking.to_string().contains("hypo total"));
        assert!(ranking.to_string().contains("actual total: 17"));
    }
}
