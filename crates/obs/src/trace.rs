//! Per-request tracing: a request id plus a flat list of timestamped
//! [`Span`]s, offsets relative to the trace's start.
//!
//! Nesting is encoded in the span **name** with dots (`execute.slicing`
//! is a child of `execute`), so the same names appear verbatim in the
//! `Server-Timing` response header (dots are legal token characters) and
//! in the slow-query log — a client can correlate its header against the
//! server-side trace without a translation table.
//!
//! Spans come from two sources: sections the handler measures directly
//! ([`Trace::time`] / [`Trace::add_span`] around parse, admission,
//! decode, encode, write), and **grafted** spans reconstructed from the
//! engine's own `PhaseTimings` after a batch returns. Grafted child spans
//! aggregate work that ran *in parallel* across the worker pool, so a
//! child's duration may legitimately exceed its parent's wall clock; the
//! start offsets of grafted children equal their parent's (the engine
//! does not record per-worker offsets, and inventing them would be
//! false precision).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

/// One timed section of a request. `start` is the offset from the owning
/// trace's start, so spans serialize without absolute clocks.
#[derive(Debug, Clone)]
pub struct Span {
    /// Dotted section name (`plan`, `execute.slicing`, …).
    pub name: String,
    /// Offset from the trace start.
    pub start: Duration,
    /// How long the section took (for grafted parallel children, the
    /// CPU-summed duration — may exceed the parent's wall clock).
    pub duration: Duration,
}

impl Span {
    /// The dot-depth of the span (`execute.slicing` → 1).
    pub fn depth(&self) -> usize {
        self.name.matches('.').count()
    }
}

/// The trace of one request: its id, its target (`POST /…/batch`), and
/// the spans recorded while handling it. Single-threaded by design — the
/// handler owns it mutably; parallel engine work reports through
/// `PhaseTimings` and is grafted afterwards.
#[derive(Debug)]
pub struct Trace {
    id: String,
    target: String,
    started: Instant,
    spans: Vec<Span>,
}

impl Trace {
    /// A trace starting now.
    pub fn begin(id: impl Into<String>, target: impl Into<String>) -> Trace {
        Trace::begin_at(id, target, Instant::now())
    }

    /// A trace whose clock started at `started` (use when work — e.g.
    /// reading the request head — happened before the trace object could
    /// be built).
    pub fn begin_at(id: impl Into<String>, target: impl Into<String>, started: Instant) -> Trace {
        Trace {
            id: id.into(),
            target: target.into(),
            started,
            spans: Vec::new(),
        }
    }

    /// The request id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The request target (`METHOD /path`).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Time elapsed since the trace started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The recorded spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the trace, returning its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Appends a span with explicit offsets (the grafting path).
    pub fn add_span(&mut self, name: impl Into<String>, start: Duration, duration: Duration) {
        self.spans.push(Span {
            name: name.into(),
            start,
            duration,
        });
    }

    /// Runs `f`, recording it as a span named `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = self.elapsed();
        let result = f();
        let duration = self.elapsed().saturating_sub(start);
        self.add_span(name, start, duration);
        result
    }

    /// Renders the spans as a `Server-Timing` header value:
    /// `parse;dur=0.102, queue;dur=0.001, …` (durations in milliseconds,
    /// names verbatim — dots are legal header tokens).
    pub fn server_timing(&self) -> String {
        server_timing(&self.spans)
    }
}

/// Renders spans as a `Server-Timing` header value (see
/// [`Trace::server_timing`]).
pub fn server_timing(spans: &[Span]) -> String {
    spans
        .iter()
        .map(|s| format!("{};dur={:.3}", s.name, s.duration.as_secs_f64() * 1e3))
        .collect::<Vec<_>>()
        .join(", ")
}

/// `true` when a client-supplied request id is safe to echo into logs and
/// headers: 1–64 characters from `[A-Za-z0-9._-]`. Anything else is
/// discarded (the server then generates its own id) — reflecting
/// arbitrary bytes into a response header or a log line is an injection
/// vector, not a convenience.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static SEED: OnceLock<u64> = OnceLock::new();

/// splitmix64: a bijection on `u64`, so distinct inputs give distinct ids.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a 16-hex-character request id: unique within the process (a
/// sequence number runs through a bijective mixer) and seeded from the
/// wall clock so ids from different server runs are distinguishable.
pub fn request_id() -> String {
    let seed = *SEED.get_or_init(|| {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    // seq → seq * odd-constant is a bijection mod 2^64; xor-ing the fixed
    // seed and mixing keeps it one — no two ids collide in one process.
    format!(
        "{:016x}",
        mix(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_monotonic_offsets() {
        let mut trace = Trace::begin("id", "GET /x");
        trace.time("first", || std::thread::sleep(Duration::from_millis(2)));
        trace.time("second", || std::thread::sleep(Duration::from_millis(1)));
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].start <= spans[1].start);
        assert!(
            spans[0].start + spans[0].duration <= spans[1].start,
            "sequential sections do not overlap"
        );
        assert!(spans[0].duration >= Duration::from_millis(2));
    }

    #[test]
    fn dotted_names_carry_depth() {
        let span = Span {
            name: "execute.slicing".into(),
            start: Duration::ZERO,
            duration: Duration::ZERO,
        };
        assert_eq!(span.depth(), 1);
    }

    #[test]
    fn server_timing_renders_names_and_millis() {
        let mut trace = Trace::begin("id", "POST /x");
        trace.add_span("parse", Duration::ZERO, Duration::from_micros(1500));
        trace.add_span(
            "execute.slicing",
            Duration::from_micros(1500),
            Duration::from_millis(2),
        );
        assert_eq!(
            trace.server_timing(),
            "parse;dur=1.500, execute.slicing;dur=2.000"
        );
    }

    #[test]
    fn request_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = request_id();
            assert_eq!(id.len(), 16);
            assert!(valid_request_id(&id), "{id}");
            assert!(seen.insert(id), "request ids must not repeat");
        }
    }

    #[test]
    fn client_request_ids_are_validated() {
        assert!(valid_request_id("abc-123_X.y"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"a".repeat(65)));
        assert!(!valid_request_id("evil\r\nSet-Cookie: x"));
        assert!(!valid_request_id("spaced id"));
    }
}
