//! # mahif-obs
//!
//! Std-only observability primitives for the Mahif workspace: the
//! instrumentation substrate under `mahif-serve`'s `GET /metrics`,
//! `GET /debug/slow`, access log and `Server-Timing` headers.
//!
//! The paper this workspace reproduces makes a *performance* argument —
//! program slicing and data slicing make historical what-if queries cheap
//! (its Figures 15/16 are per-phase timing breakdowns) — so the serving
//! layer has to be able to show where each request's time went. Three
//! pieces, all dependency-free:
//!
//! * [`metrics`] — a [`Registry`] of named atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s (with p50/p90/p99
//!   extraction), rendered in the Prometheus text exposition format.
//!   Recording never takes the registry lock; existing atomics can be
//!   *adopted* so `/stats` and `/metrics` scrape the same cells.
//! * [`trace`] — a per-request [`Trace`] of timestamped [`Span`]s with
//!   dot-nested names (`execute.slicing`), rendered verbatim into
//!   `Server-Timing` headers; plus request-id generation and validation.
//! * [`slow`] — a [`SlowLog`] ring buffer retaining the last N requests
//!   over a configurable threshold, each with its full span breakdown and
//!   engine-side shape (scenarios, groups, solver calls).
//!
//! ```
//! use mahif_obs::{Registry, Trace};
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let plan = registry.histogram(
//!     "mahif_plan_seconds",
//!     "Batch planning time",
//!     &mahif_obs::default_latency_buckets(),
//! );
//! let mut trace = Trace::begin(mahif_obs::request_id(), "POST /histories/x/batch");
//! let () = trace.time("plan", || { /* normalize + slice */ });
//! plan.observe_duration(trace.spans()[0].duration);
//! assert!(registry.render().contains("mahif_plan_seconds_count 1"));
//! assert!(trace.server_timing().starts_with("plan;dur="));
//! # let _ = Duration::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod slow;
pub mod trace;

pub use metrics::{
    default_latency_buckets, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
};
pub use slow::{SlowEntry, SlowLog};
pub use trace::{request_id, server_timing, valid_request_id, Span, Trace};
