//! The slow-query log: a bounded ring buffer of the most recent request
//! traces that exceeded a duration threshold.
//!
//! The ring holds the *last N* slow requests, not the N slowest ever —
//! an operator debugging "the server got slow ten minutes ago" needs
//! recency, and a max-heap of all-time outliers would pin one pathological
//! early batch forever. Eviction is strictly oldest-first.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use crate::trace::{Span, Trace};

/// One retained slow request: the trace plus the engine-side shape of the
/// work (scenario/group counts, solver calls) so a spike is attributable
/// without re-running anything.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request id (as echoed in `X-Request-Id`).
    pub id: String,
    /// `METHOD /path`.
    pub target: String,
    /// The response status.
    pub status: u16,
    /// Wall-clock total for the request.
    pub total: Duration,
    /// Scenarios in the batch (0 for non-batch requests).
    pub scenarios: usize,
    /// Slice groups the batch planned (0 for non-batch requests).
    pub groups: usize,
    /// Solver calls the batch spent.
    pub solver_calls: u64,
    /// Unix timestamp (milliseconds) when the entry was recorded.
    pub unix_ms: u64,
    /// The request's spans (see [`crate::trace`] for naming).
    pub spans: Vec<Span>,
}

impl SlowEntry {
    /// Builds an entry from a finished trace and its engine-side shape.
    pub fn from_trace(
        trace: &Trace,
        status: u16,
        total: Duration,
        scenarios: usize,
        groups: usize,
        solver_calls: u64,
    ) -> SlowEntry {
        SlowEntry {
            id: trace.id().to_string(),
            target: trace.target().to_string(),
            status,
            total,
            scenarios,
            groups,
            solver_calls,
            unix_ms: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            spans: trace.spans().to_vec(),
        }
    }
}

/// The bounded slow-request ring. Cheap when nothing is slow: `record`
/// compares against the threshold before taking the lock.
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    capacity: usize,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A ring keeping the last `capacity` requests slower than
    /// `threshold` (capacity is clamped to at least 1).
    pub fn new(threshold: Duration, capacity: usize) -> SlowLog {
        SlowLog {
            threshold,
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `entry` if it is at or over the threshold, evicting the
    /// oldest retained entry when full. Returns whether it was retained.
    pub fn record(&self, entry: SlowEntry) -> bool {
        if entry.total < self.threshold {
            return false;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, millis: u64) -> SlowEntry {
        SlowEntry {
            id: id.to_string(),
            target: "POST /x".to_string(),
            status: 200,
            total: Duration::from_millis(millis),
            scenarios: 1,
            groups: 1,
            solver_calls: 0,
            unix_ms: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn under_threshold_entries_are_dropped() {
        let log = SlowLog::new(Duration::from_millis(100), 4);
        assert!(!log.record(entry("fast", 5)));
        assert!(log.record(entry("slow", 150)));
        assert!(log.record(entry("exactly", 100)), "threshold is inclusive");
        let ids: Vec<String> = log.snapshot().into_iter().map(|e| e.id).collect();
        assert_eq!(ids, vec!["slow", "exactly"]);
    }

    #[test]
    fn eviction_is_oldest_first() {
        let log = SlowLog::new(Duration::ZERO, 2);
        log.record(entry("a", 1));
        log.record(entry("b", 2));
        log.record(entry("c", 3));
        let ids: Vec<String> = log.snapshot().into_iter().map(|e| e.id).collect();
        assert_eq!(ids, vec!["b", "c"], "the oldest entry is evicted first");
        assert_eq!(log.capacity(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let log = SlowLog::new(Duration::ZERO, 0);
        log.record(entry("only", 1));
        assert_eq!(log.snapshot().len(), 1);
    }
}
