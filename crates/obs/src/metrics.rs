//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! latency histograms, rendered in the Prometheus text exposition format.
//!
//! Recording is **lock-cheap**: every metric handle is an `Arc` over plain
//! atomics, so hot paths (a request commit, a histogram observation) cost
//! a few relaxed atomic adds and never take the registry lock. The
//! registry's mutex guards only *structure* — registering a new family or
//! label set, and rendering — which happens at startup and at scrape time.
//!
//! Scrapes are racy by design (Prometheus semantics): a snapshot taken
//! while writers run may be mid-update across *different* metrics. The
//! per-histogram snapshot is still internally safe: an observation bumps
//! its bucket before the total count, and [`Histogram::snapshot`] loads
//! the count first — so `count ≤ Σ buckets` always holds and quantile
//! extraction never reads past the recorded observations. Consistent
//! multi-counter snapshots (the session's `/stats` contract) remain the
//! job of the session's commit lock; this registry is the monitoring
//! mirror, not a replacement for it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, in-flight
/// work). Writers race benignly; the scrape sees some recent value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        self.value.fetch_sub(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The default latency bucket bounds, in seconds: 100 µs to 30 s,
/// roughly 2.5× apart — wide enough for both the sub-millisecond
/// keep-alive hot path and a multi-second deadline-bounded batch.
pub fn default_latency_buckets() -> Vec<f64> {
    vec![
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
        5.0, 10.0, 30.0,
    ]
}

/// A fixed-bucket latency histogram. Observations are clamped to `[0, ∞)`
/// and land in the first bucket whose upper bound is ≥ the value; values
/// beyond the last bound saturate into the implicit `+Inf` overflow
/// bucket. The sum is kept in whole microseconds (an `AtomicU64`), so it
/// never tears the way a shared `f64` would.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly increasing, in seconds.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (finite upper bounds in seconds, strictly
    /// increasing; the `+Inf` overflow bucket is implicit).
    ///
    /// # Panics
    /// If `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b > 0.0),
            "histogram bounds must be finite and positive"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// A histogram over [`default_latency_buckets`].
    pub fn latency() -> Histogram {
        Histogram::new(&default_latency_buckets())
    }

    /// Records one observation, in seconds.
    pub fn observe(&self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let i = self.bounds.partition_point(|b| *b < v);
        // Bucket first, count second: a snapshot loads the count first,
        // so `count ≤ Σ buckets` holds under concurrent observation and a
        // quantile never indexes past recorded data.
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
        self.sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// A point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Count before buckets (see `observe` for the pairing).
        let count = self.count.load(Ordering::Acquire);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum_seconds: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// A copied-out histogram state; quantiles are estimated from it by
/// linear interpolation within the landing bucket.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// The finite bucket upper bounds, in seconds.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; the final slot is
    /// the `+Inf` overflow bucket. `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations at snapshot time (never more than `Σ counts`).
    pub count: u64,
    /// Sum of all observed values, in seconds.
    pub sum_seconds: f64,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (`0.0 ..= 1.0`) in seconds: linear
    /// interpolation inside the landing bucket, with two saturations —
    /// an empty histogram reports `0.0`, and observations in the `+Inf`
    /// overflow bucket report the last finite bound (the histogram cannot
    /// see beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank target, 1-based.
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: saturate at the last finite bound.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                // Position of the target within this bucket, interpolated.
                let into = (target - seen) as f64 / n as f64;
                return lower + (upper - lower) * into;
            }
            seen += n;
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// The median estimate, in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate, in seconds.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate, in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// What kind of metric a family holds (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Sample {
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// One named metric family: a `# HELP`/`# TYPE` pair plus its samples
/// (one per label set; unlabeled metrics have exactly one).
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// The process-wide metric registry: named families of counters, gauges,
/// and histograms, rendered as Prometheus text by [`Registry::render`].
///
/// Handles returned by the `counter`/`gauge`/`histogram` methods are
/// get-or-create: asking for the same name (and label set) twice returns
/// the same underlying metric, so independent subsystems can share a
/// family without coordination. Existing atomics can also be *adopted*
/// (e.g. an admission controller's shed counter), so `/stats` and
/// `/metrics` read the very same cell instead of two drifting copies.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// `true` for a legal Prometheus metric name.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escapes a label value for the exposition format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set as `{k="v",…}` (empty string when unlabeled,
/// `{extra}` merged in front for histogram `le` labels).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in labels {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a bucket bound the way Prometheus clients do (no trailing
/// zeros beyond what `{}` prints; `f64` round-trips).
fn render_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // "1" not "1.0" — but keep a decimal form Prometheus accepts.
        format!("{v}")
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label name {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        let mut families = self.families.lock().expect("metric registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert!(
                    family.kind == kind,
                    "metric {name} already registered as a {}",
                    family.kind.label()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(sample) = family.samples.iter().find(|s| s.labels == labels) {
            return sample.handle.clone();
        }
        let handle = make();
        family.samples.push(Sample {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a counter with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, Kind::Counter, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Adopts an existing counter under `name` (so another subsystem's
    /// live atomic is scraped directly). Get-or-adopt: if the name is
    /// already registered, the existing handle is returned instead.
    pub fn adopt_counter(&self, name: &str, help: &str, counter: Arc<Counter>) -> Arc<Counter> {
        match self.get_or_insert(name, help, Kind::Counter, &[], || Handle::Counter(counter)) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a gauge with the given label set (e.g. one
    /// `mahif_connections{state=…}` cell per connection phase).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, Kind::Gauge, labels, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Adopts an existing gauge under `name` (get-or-adopt, mirroring
    /// [`adopt_counter`](Self::adopt_counter)): another subsystem's live
    /// cell — e.g. the session's plan-cache entry gauge — is scraped
    /// directly instead of being mirrored into a registry-owned copy.
    pub fn adopt_gauge(&self, name: &str, help: &str, gauge: Arc<Gauge>) -> Arc<Gauge> {
        match self.get_or_insert(name, help, Kind::Gauge, &[], || Handle::Gauge(gauge)) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates an unlabeled histogram over `bounds` (seconds).
    /// The bounds of an existing histogram are kept.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        match self.get_or_insert(name, help, Kind::Histogram, &[], || {
            Handle::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Adopts an existing histogram under `name` (get-or-adopt).
    pub fn adopt_histogram(
        &self,
        name: &str,
        help: &str,
        histogram: Arc<Histogram>,
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, Kind::Histogram, &[], || {
            Handle::Histogram(histogram)
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// The snapshot of a registered unlabeled histogram, if any.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let families = self.families.lock().expect("metric registry poisoned");
        families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| f.samples.iter().find(|s| s.labels.is_empty()))
            .and_then(|s| match &s.handle {
                Handle::Histogram(h) => Some(h.snapshot()),
                _ => None,
            })
    }

    /// The summed value of a counter family (across all label sets).
    pub fn counter_value(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("metric registry poisoned");
        families
            .iter()
            .find(|f| f.name == name)
            .map(|f| {
                f.samples
                    .iter()
                    .map(|s| match &s.handle {
                        Handle::Counter(c) => c.get(),
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Renders every family in the Prometheus text exposition format:
    /// `# HELP` and `# TYPE` lines strictly before the family's samples,
    /// histograms as cumulative `_bucket{le=…}` plus `_sum`/`_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metric registry poisoned");
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind.label()));
            for sample in &family.samples {
                match &sample.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&sample.labels, None),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&sample.labels, None),
                            g.get()
                        ));
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, n) in snap.counts.iter().enumerate() {
                            cumulative += n;
                            let le = if i < snap.bounds.len() {
                                render_f64(snap.bounds[i])
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                render_labels(&sample.labels, Some(("le", &le))),
                                cumulative
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&sample.labels, None),
                            render_f64(snap.sum_seconds)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&sample.labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.001); // lands in the first bucket (le is inclusive)
        h.observe(0.0010001); // second bucket
        h.observe(0.05); // third
        h.observe(0.5); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1, 1]);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn histogram_quantiles_on_a_known_distribution() {
        let h = Histogram::new(&[0.001, 0.01, 0.1, 1.0]);
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.observe(0.0005);
        }
        for _ in 0..10 {
            h.observe(0.05);
        }
        let snap = h.snapshot();
        // p50 interpolates inside the first bucket (0 .. 0.001).
        let p50 = snap.p50();
        assert!(p50 > 0.0 && p50 <= 0.001, "p50 = {p50}");
        // p99 lands among the slow observations: inside (0.01 .. 0.1].
        let p99 = snap.p99();
        assert!(p99 > 0.01 && p99 <= 0.1, "p99 = {p99}");
        // The sum is microsecond-accurate.
        assert!((snap.sum_seconds - (90.0 * 0.0005 + 10.0 * 0.05)).abs() < 1e-4);
    }

    #[test]
    fn overflow_bucket_saturates_quantiles_at_the_last_bound() {
        let h = Histogram::new(&[0.001, 0.01]);
        for _ in 0..100 {
            h.observe(5.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![0, 0, 100]);
        assert_eq!(snap.p50(), 0.01, "quantiles cannot see past the last bound");
        assert_eq!(snap.p99(), 0.01);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::latency();
        assert_eq!(h.snapshot().p99(), 0.0);
    }

    #[test]
    fn negative_and_nan_observations_clamp_to_zero() {
        let h = Histogram::new(&[0.001]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 0]);
        assert_eq!(snap.sum_seconds, 0.0);
    }

    #[test]
    fn registry_handles_are_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("mahif_test_total", "help");
        let b = registry.counter("mahif_test_total", "ignored on reuse");
        a.inc();
        assert_eq!(b.get(), 1, "same name yields the same counter");
        let l1 = registry.counter_with("mahif_labeled_total", "h", &[("route", "/x")]);
        let l2 = registry.counter_with("mahif_labeled_total", "h", &[("route", "/y")]);
        l1.add(2);
        l2.add(3);
        assert_eq!(registry.counter_value("mahif_labeled_total"), 5);
    }

    #[test]
    fn labeled_gauges_render_one_sample_per_label_set() {
        let registry = Registry::new();
        let idle = registry.gauge_with("mahif_connections", "h", &[("state", "idle")]);
        let active = registry.gauge_with("mahif_connections", "h", &[("state", "active")]);
        idle.set(12);
        active.set(3);
        let again = registry.gauge_with("mahif_connections", "h", &[("state", "idle")]);
        assert_eq!(again.get(), 12, "same label set yields the same cell");
        let text = registry.render();
        assert!(
            text.contains("mahif_connections{state=\"idle\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("mahif_connections{state=\"active\"} 3"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("mahif_thing", "h");
        registry.gauge("mahif_thing", "h");
    }

    #[test]
    fn adopted_counters_share_the_atomic() {
        let registry = Registry::new();
        let shed = Arc::new(Counter::new());
        let adopted = registry.adopt_counter("mahif_shed_total", "h", Arc::clone(&shed));
        shed.add(7);
        assert_eq!(adopted.get(), 7);
        assert_eq!(registry.counter_value("mahif_shed_total"), 7);
    }

    #[test]
    fn render_emits_help_and_type_before_samples() {
        let registry = Registry::new();
        registry.counter("mahif_a_total", "counts a").inc();
        registry.gauge("mahif_g", "a gauge").set(-2);
        let h = registry.histogram("mahif_h_seconds", "a histogram", &[0.01, 0.1]);
        h.observe(0.02);
        h.observe(0.02);
        let text = registry.render();
        let lines: Vec<&str> = text.lines().collect();
        // TYPE precedes the family's first sample.
        let type_pos = lines
            .iter()
            .position(|l| *l == "# TYPE mahif_a_total counter")
            .unwrap();
        let sample_pos = lines.iter().position(|l| *l == "mahif_a_total 1").unwrap();
        assert!(type_pos < sample_pos);
        assert!(lines.contains(&"mahif_g -2"));
        assert!(lines.contains(&"mahif_h_seconds_bucket{le=\"0.01\"} 0"));
        assert!(lines.contains(&"mahif_h_seconds_bucket{le=\"0.1\"} 2"));
        assert!(lines.contains(&"mahif_h_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(lines.contains(&"mahif_h_seconds_count 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("mahif_esc_total", "h", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = registry.render();
        assert!(
            text.contains(r#"mahif_esc_total{path="a\"b\\c\nd"} 1"#),
            "{text}"
        );
    }
}
