//! Concurrent stress over the metrics registry: many writer threads
//! hammering shared counters and one histogram while a watcher samples.
//!
//! Asserts the registry's concurrency contracts:
//!
//! 1. **Monotonic counters** — every sampled value is non-decreasing.
//! 2. **Histogram snapshots are never torn backwards** — a snapshot's
//!    `count` never exceeds the sum of its bucket counts (an observation
//!    bumps its bucket *before* the count, and the snapshot loads the
//!    count first), so quantile extraction never reads past the data.
//! 3. **Exact totals** — once the writers join, every observation is
//!    accounted for, bucket sums match the count, and registration from
//!    many threads get-or-creates the same underlying metrics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mahif_obs::Registry;

const WRITERS: usize = 4;
const OBSERVATIONS_PER_WRITER: usize = 5_000;

#[test]
fn concurrent_recording_stays_monotonic_and_untorn() {
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    let samples = std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Every writer asks the registry for the handles itself:
                // get-or-create must converge on the same atomics.
                let requests = registry.counter("stress_requests_total", "requests");
                let hist =
                    registry.histogram("stress_seconds", "latencies", &[0.001, 0.01, 0.1, 1.0]);
                for i in 0..OBSERVATIONS_PER_WRITER {
                    requests.inc();
                    // A deterministic spread across all buckets including
                    // overflow.
                    let v = match (w + i) % 5 {
                        0 => 0.0005,
                        1 => 0.005,
                        2 => 0.05,
                        3 => 0.5,
                        _ => 5.0,
                    };
                    hist.observe(v);
                }
            });
        }
        let watcher = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut samples = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let count = registry.counter_value("stress_requests_total");
                    let snap = registry.histogram_snapshot("stress_seconds");
                    samples.push((count, snap));
                    std::thread::yield_now();
                }
                samples.push((
                    registry.counter_value("stress_requests_total"),
                    registry.histogram_snapshot("stress_seconds"),
                ));
                samples
            })
        };
        // scope joins the writers when they fall off the end; the watcher
        // needs the explicit stop once they are done. Joining writers
        // first requires handles; simpler: spawn order guarantees nothing,
        // so poll the counter until the writers' total arrives.
        let total = (WRITERS * OBSERVATIONS_PER_WRITER) as u64;
        while registry.counter_value("stress_requests_total") < total {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        watcher.join().expect("watcher panicked")
    });

    // 1. Monotonic counter across every adjacent sample pair.
    for pair in samples.windows(2) {
        assert!(
            pair[1].0 >= pair[0].0,
            "counter went backwards: {} -> {}",
            pair[0].0,
            pair[1].0
        );
    }

    // 2. No torn histogram snapshot: count ≤ Σ buckets, and the count
    //    itself is monotonic across samples.
    let mut last_count = 0u64;
    for (_, snap) in samples.iter().flat_map(|(c, s)| s.as_ref().map(|s| (c, s))) {
        let bucket_sum: u64 = snap.counts.iter().sum();
        assert!(
            snap.count <= bucket_sum,
            "torn snapshot: count {} > bucket sum {bucket_sum}",
            snap.count
        );
        assert!(snap.count >= last_count, "histogram count went backwards");
        last_count = snap.count;
    }

    // 3. Final exact accounting.
    let total = (WRITERS * OBSERVATIONS_PER_WRITER) as u64;
    assert_eq!(registry.counter_value("stress_requests_total"), total);
    let snap = registry
        .histogram_snapshot("stress_seconds")
        .expect("histogram registered");
    assert_eq!(snap.count, total);
    assert_eq!(snap.counts.iter().sum::<u64>(), total);
    // The deterministic spread fills every bucket including overflow.
    assert!(snap.counts.iter().all(|&n| n > 0), "{:?}", snap.counts);
    // Quantiles stay inside the bounds under the known distribution
    // (20% per bucket: p50 in bucket 3 of 5, p99 saturates at the last
    // finite bound because 20% of observations overflow).
    assert_eq!(snap.p99(), 1.0);
    assert!(snap.p50() > 0.01 && snap.p50() <= 0.1, "{}", snap.p50());
}
