//! Cascade rules and the modification-augmentation algorithm.

use std::collections::BTreeSet;
use std::fmt;

use mahif_expr::Value;
use mahif_history::{History, HistoryError, Modification, ModificationSet, Statement};
use mahif_storage::Database;

/// A foreign-key-shaped dependency between insert statements: tuples inserted
/// into `child_relation` reference (via `child_fk`) the `parent_key` of a
/// tuple inserted into `parent_relation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeRule {
    /// The referenced relation (e.g. `Customer`).
    pub parent_relation: String,
    /// The referenced key attribute (e.g. `CID`).
    pub parent_key: String,
    /// The referencing relation (e.g. `Order`).
    pub child_relation: String,
    /// The referencing attribute (e.g. `CustomerID`).
    pub child_fk: String,
}

impl CascadeRule {
    /// Creates a rule `child_relation.child_fk → parent_relation.parent_key`.
    pub fn new(
        parent_relation: impl Into<String>,
        parent_key: impl Into<String>,
        child_relation: impl Into<String>,
        child_fk: impl Into<String>,
    ) -> Self {
        CascadeRule {
            parent_relation: parent_relation.into(),
            parent_key: parent_key.into(),
            child_relation: child_relation.into(),
            child_fk: child_fk.into(),
        }
    }
}

impl fmt::Display for CascadeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.child_relation, self.child_fk, self.parent_relation, self.parent_key
        )
    }
}

/// A set of cascade rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyPolicy {
    /// The rules; order is irrelevant (the analysis iterates to a fixpoint).
    pub rules: Vec<CascadeRule>,
}

impl DependencyPolicy {
    /// Creates a policy from rules.
    pub fn new(rules: Vec<CascadeRule>) -> Self {
        DependencyPolicy { rules }
    }

    /// Adds a rule.
    pub fn with_rule(mut self, rule: CascadeRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// A parent tuple whose insert the hypothetical history no longer performs.
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedParent {
    /// The parent relation.
    pub relation: String,
    /// The removed key value.
    pub key: Value,
    /// Position of the removed insert in the original history.
    pub position: usize,
}

/// The result of the cascade analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CascadePlan {
    /// Parent inserts the modifications remove (directly or transitively).
    pub removed_parents: Vec<RemovedParent>,
    /// Positions (in the original history) of child inserts that must be
    /// removed in addition to the user's modifications.
    pub cascaded_positions: Vec<usize>,
}

impl CascadePlan {
    /// True when no cascading is necessary.
    pub fn is_empty(&self) -> bool {
        self.cascaded_positions.is_empty()
    }
}

impl fmt::Display for CascadePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cascade plan: {} removed parent insert(s), {} cascaded child insert(s)",
            self.removed_parents.len(),
            self.cascaded_positions.len()
        )?;
        for p in &self.removed_parents {
            writeln!(
                f,
                "  removed {}[{}] (statement {})",
                p.relation, p.key, p.position
            )?;
        }
        for pos in &self.cascaded_positions {
            writeln!(f, "  also remove statement {pos}")?;
        }
        Ok(())
    }
}

/// Value of attribute `attr` of the tuple inserted by statement `stmt`
/// (which must be an `INSERT ... VALUES` into a relation whose schema is in
/// `db`); `None` when the statement is not such an insert or the attribute is
/// unknown.
fn inserted_value(db: &Database, stmt: &Statement, attr: &str) -> Option<Value> {
    let Statement::InsertValues { relation, tuple } = stmt else {
        return None;
    };
    let schema = &db.relation(relation).ok()?.schema;
    let idx = schema.index_of(attr)?;
    tuple.value(idx).cloned()
}

/// Computes which parent inserts are removed by `modifications` and which
/// child inserts must cascade, iterating the rules to a fixpoint so that
/// chains (`order_items → orders → customers`) are followed.
pub fn plan(
    history: &History,
    modifications: &ModificationSet,
    db: &Database,
    policy: &DependencyPolicy,
) -> Result<CascadePlan, HistoryError> {
    let modified_history = modifications.apply(history)?;

    // An insert of the original history is "removed" when no statement of
    // the modified history inserts the same tuple into the same relation.
    let still_inserted = |stmt: &Statement| -> bool {
        modified_history
            .statements()
            .iter()
            .any(|other| other == stmt)
    };

    let mut removed_parents: Vec<RemovedParent> = Vec::new();
    let mut cascaded: BTreeSet<usize> = BTreeSet::new();

    // Seed: parent inserts dropped directly by the user's modifications.
    for rule in &policy.rules {
        for (pos, stmt) in history.statements().iter().enumerate() {
            if stmt.relation() != rule.parent_relation {
                continue;
            }
            if let Some(key) = inserted_value(db, stmt, &rule.parent_key) {
                if !still_inserted(stmt)
                    && !removed_parents
                        .iter()
                        .any(|r| r.position == pos && r.relation == rule.parent_relation)
                {
                    removed_parents.push(RemovedParent {
                        relation: rule.parent_relation.clone(),
                        key,
                        position: pos,
                    });
                }
            }
        }
    }

    // Fixpoint: cascade child inserts, which may in turn be parents of other
    // rules.
    loop {
        let mut changed = false;
        for rule in &policy.rules {
            let removed_keys: Vec<Value> = removed_parents
                .iter()
                .filter(|r| r.relation == rule.parent_relation)
                .map(|r| r.key.clone())
                .collect();
            if removed_keys.is_empty() {
                continue;
            }
            for (pos, stmt) in history.statements().iter().enumerate() {
                if stmt.relation() != rule.child_relation || cascaded.contains(&pos) {
                    continue;
                }
                let Some(fk) = inserted_value(db, stmt, &rule.child_fk) else {
                    continue;
                };
                if !removed_keys.contains(&fk) || !still_inserted(stmt) {
                    continue;
                }
                cascaded.insert(pos);
                changed = true;
                // The cascaded child may itself be a parent of another rule.
                for other in &policy.rules {
                    if other.parent_relation == rule.child_relation {
                        if let Some(key) = inserted_value(db, stmt, &other.parent_key) {
                            if !removed_parents
                                .iter()
                                .any(|r| r.position == pos && r.relation == other.parent_relation)
                            {
                                removed_parents.push(RemovedParent {
                                    relation: other.parent_relation.clone(),
                                    key,
                                    position: pos,
                                });
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Ok(CascadePlan {
        removed_parents,
        cascaded_positions: cascaded.into_iter().collect(),
    })
}

/// Augments `modifications` with the cascaded removals required by `policy`.
///
/// Cascaded removals are expressed as replacements of the affected insert
/// statements with no-ops and are placed *before* the user's own
/// modifications: replacements never shift statement positions, so the
/// positions the user's modifications refer to stay valid, while the user's
/// inserting/deleting modifications would shift the positions of anything
/// appended after them.
pub fn augment(
    history: &History,
    modifications: &ModificationSet,
    db: &Database,
    policy: &DependencyPolicy,
) -> Result<(ModificationSet, CascadePlan), HistoryError> {
    let cascade = plan(history, modifications, db, policy)?;
    let mut all: Vec<Modification> = Vec::new();
    for &pos in &cascade.cascaded_positions {
        let relation = history.statement(pos)?.relation().to_string();
        all.push(Modification::replace(pos, Statement::no_op(relation)));
    }
    all.extend(modifications.modifications().iter().cloned());
    Ok((ModificationSet::new(all), cascade))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Expr;
    use mahif_history::{HistoricalWhatIf, SetClause};
    use mahif_storage::{Attribute, Schema, Tuple};

    /// A small customer/order/order-item database plus a history that inserts
    /// two customers, three orders and two order items, then applies a fee
    /// update.
    fn setup() -> (Database, History) {
        let mut db = Database::new();
        db.create_relation(Schema::shared(
            "Customer",
            vec![Attribute::int("CID"), Attribute::str("Name")],
        ))
        .unwrap();
        db.create_relation(Schema::shared(
            "Order",
            vec![
                Attribute::int("OID"),
                Attribute::int("CustomerID"),
                Attribute::int("Total"),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::shared(
            "OrderItem",
            vec![Attribute::int("IID"), Attribute::int("OrderID")],
        ))
        .unwrap();

        let history = History::new(vec![
            Statement::insert_values(
                "Customer",
                Tuple::new(vec![Value::int(1), Value::str("Ada")]),
            ),
            Statement::insert_values(
                "Customer",
                Tuple::new(vec![Value::int(2), Value::str("Bob")]),
            ),
            Statement::insert_values(
                "Order",
                Tuple::new(vec![Value::int(10), Value::int(1), Value::int(100)]),
            ),
            Statement::insert_values(
                "Order",
                Tuple::new(vec![Value::int(11), Value::int(1), Value::int(50)]),
            ),
            Statement::insert_values(
                "Order",
                Tuple::new(vec![Value::int(12), Value::int(2), Value::int(70)]),
            ),
            Statement::insert_values(
                "OrderItem",
                Tuple::new(vec![Value::int(100), Value::int(10)]),
            ),
            Statement::insert_values(
                "OrderItem",
                Tuple::new(vec![Value::int(101), Value::int(12)]),
            ),
            Statement::update(
                "Order",
                SetClause::single("Total", add(attr("Total"), lit(5))),
                Expr::true_(),
            ),
        ]);
        (db, history)
    }

    fn policy() -> DependencyPolicy {
        DependencyPolicy::default()
            .with_rule(CascadeRule::new("Customer", "CID", "Order", "CustomerID"))
            .with_rule(CascadeRule::new("Order", "OID", "OrderItem", "OrderID"))
    }

    #[test]
    fn deleting_a_customer_cascades_to_orders_and_items() {
        let (db, history) = setup();
        // "What if customer Ada had never signed up?"
        let mods = ModificationSet::new(vec![Modification::delete(0)]);
        let (augmented, plan) = augment(&history, &mods, &db, &policy()).unwrap();
        // Ada's two orders (positions 2, 3) and the item of order 10
        // (position 5) must be removed too.
        assert_eq!(plan.cascaded_positions, vec![2, 3, 5]);
        assert_eq!(plan.removed_parents.len(), 3); // Ada + her two orders
        assert_eq!(augmented.len(), 1 + 3);
        assert!(plan.to_string().contains("cascade plan"));

        // The augmented hypothetical state contains no trace of Ada: only
        // Bob, his order 12 and its item 101 remain.
        let q = HistoricalWhatIf::new(history.clone(), db.clone(), augmented);
        let delta = q.answer_by_direct_execution().unwrap();
        let hypothetical = q
            .modifications
            .apply(&history)
            .unwrap()
            .execute(&db)
            .unwrap();
        let customers = hypothetical.relation("Customer").unwrap();
        assert_eq!(customers.len(), 1);
        assert_eq!(customers.tuples[0].value(0), Some(&Value::int(2)));
        let orders = hypothetical.relation("Order").unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders.tuples[0].value(0), Some(&Value::int(12)));
        let items = hypothetical.relation("OrderItem").unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items.tuples[0].value(0), Some(&Value::int(101)));
        // The delta covers all three relations.
        assert_eq!(delta.relations.len(), 3);
    }

    #[test]
    fn unrelated_modifications_cascade_nothing() {
        let (db, history) = setup();
        // Changing the fee update does not remove any insert.
        let mods = ModificationSet::single_replace(
            7,
            Statement::update(
                "Order",
                SetClause::single("Total", add(attr("Total"), lit(9))),
                Expr::true_(),
            ),
        );
        let (augmented, plan) = augment(&history, &mods, &db, &policy()).unwrap();
        assert!(plan.is_empty());
        assert_eq!(augmented.len(), 1);
    }

    #[test]
    fn replacing_a_customer_insert_with_a_different_customer_cascades() {
        let (db, history) = setup();
        // Ada is replaced by Carol: Ada's orders must go, Bob's stay.
        let mods = ModificationSet::single_replace(
            0,
            Statement::insert_values(
                "Customer",
                Tuple::new(vec![Value::int(3), Value::str("Carol")]),
            ),
        );
        let (_, plan) = augment(&history, &mods, &db, &policy()).unwrap();
        assert_eq!(plan.cascaded_positions, vec![2, 3, 5]);
        assert!(plan
            .removed_parents
            .iter()
            .any(|r| r.relation == "Customer" && r.key == Value::int(1)));
        assert!(!plan
            .removed_parents
            .iter()
            .any(|r| r.relation == "Customer" && r.key == Value::int(2)));
    }

    #[test]
    fn deleting_an_order_cascades_only_its_items() {
        let (db, history) = setup();
        let mods = ModificationSet::new(vec![Modification::delete(4)]); // order 12
        let (_, plan) = augment(&history, &mods, &db, &policy()).unwrap();
        assert_eq!(plan.cascaded_positions, vec![6]);
        assert_eq!(plan.removed_parents.len(), 1);
        assert_eq!(plan.removed_parents[0].key, Value::int(12));
    }

    #[test]
    fn policy_and_rule_display() {
        let rule = CascadeRule::new("Customer", "CID", "Order", "CustomerID");
        assert_eq!(rule.to_string(), "Order.CustomerID -> Customer.CID");
        let p = DependencyPolicy::new(vec![rule.clone()]);
        assert_eq!(p.rules.len(), 1);
    }
}
