//! # mahif-causal
//!
//! Causal dependency rules for historical what-if queries.
//!
//! The paper leaves "augmenting a user's HWQ based on dependencies between
//! updates" to future work, with the motivating example: *"if we delete a
//! statement that inserted a customer, then this customer could have never
//! submitted any orders — all insert statements corresponding to orders by
//! this customer should be removed too"*. This crate implements that
//! extension for the common foreign-key-shaped case:
//!
//! * a [`CascadeRule`] declares that inserts into a child relation reference
//!   a key of a parent relation;
//! * [`augment`] inspects a what-if query's modifications, determines which
//!   parent inserts the hypothetical history no longer performs, and extends
//!   the modification set so that the dependent child inserts are removed as
//!   well (transitively across rules);
//! * [`plan`] returns the analysis without building the modification set,
//!   for reporting.
//!
//! Cascaded removals are expressed as replacements of the affected insert
//! statements with no-ops, so they never shift the positions the user's own
//! modifications refer to.

#![forbid(unsafe_code)]

pub mod policy;

pub use policy::{augment, plan, CascadePlan, CascadeRule, DependencyPolicy, RemovedParent};
