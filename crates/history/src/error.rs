//! Errors for history construction and execution.

use std::fmt;

use mahif_expr::ExprError;
use mahif_query::QueryError;
use mahif_storage::StorageError;

/// Errors raised while building or executing histories and what-if queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying expression error.
    Expr(ExprError),
    /// Underlying query error.
    Query(QueryError),
    /// A modification references a statement position outside the history.
    PositionOutOfBounds {
        /// Referenced position (0-based).
        position: usize,
        /// History length.
        length: usize,
    },
    /// A replacement statement targets a different relation than the
    /// statement it replaces (the engine rewrites such modifications into a
    /// delete + insert before this point; reaching here is a usage error).
    RelationMismatch {
        /// Relation of the original statement.
        original: String,
        /// Relation of the replacement statement.
        replacement: String,
    },
    /// The operation requires a tuple-independent statement (Definition 1)
    /// but the statement is an `INSERT ... SELECT`.
    NotTupleIndependent(String),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Storage(e) => write!(f, "storage error: {e}"),
            HistoryError::Expr(e) => write!(f, "expression error: {e}"),
            HistoryError::Query(e) => write!(f, "query error: {e}"),
            HistoryError::PositionOutOfBounds { position, length } => write!(
                f,
                "statement position {position} out of bounds for history of length {length}"
            ),
            HistoryError::RelationMismatch {
                original,
                replacement,
            } => write!(
                f,
                "replacement statement targets `{replacement}` but the original targets `{original}`"
            ),
            HistoryError::NotTupleIndependent(s) => {
                write!(f, "statement `{s}` is not tuple independent")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<StorageError> for HistoryError {
    fn from(e: StorageError) -> Self {
        HistoryError::Storage(e)
    }
}

impl From<ExprError> for HistoryError {
    fn from(e: ExprError) -> Self {
        HistoryError::Expr(e)
    }
}

impl From<QueryError> for HistoryError {
    fn from(e: QueryError) -> Self {
        HistoryError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: HistoryError = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: HistoryError = ExprError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e = HistoryError::PositionOutOfBounds {
            position: 7,
            length: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(HistoryError::NotTupleIndependent("INSERT".into())
            .to_string()
            .contains("tuple independent"));
    }
}
