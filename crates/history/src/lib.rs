//! # mahif-history
//!
//! Transactional histories, hypothetical modifications and the definition of
//! historical what-if queries (Sections 2–4 of the paper).
//!
//! * [`Statement`] — update / delete / insert statements with the semantics
//!   of Equations (1)–(4);
//! * [`History`] — a sequence of statements, with prefixes `H_i`,
//!   restrictions `H_I` and execution over a database (optionally recording
//!   every intermediate version for time travel);
//! * [`Modification`] / [`ModificationSet`] — `u ← u'`, `ins_i(u)`, `del(i)`
//!   and the construction of the modified history `H[M]`, including the
//!   no-op padding trick of Section 6 that turns inserts/deletes of
//!   statements into replacements;
//! * [`DatabaseDelta`] — the symmetric difference `Δ(D, D')` with `+`/`−`
//!   annotations;
//! * [`HistoricalWhatIf`] — the query `H = (H, D, M)` itself;
//! * [`naive`] — Algorithm 1, the baseline that copies the database and
//!   executes the modified history directly.

#![forbid(unsafe_code)]

pub mod delta;
pub mod error;
pub mod history;
pub mod hwq;
pub mod modification;
pub mod naive;
pub mod statement;

pub use delta::{Annotation, DatabaseDelta, DeltaInterner, DeltaTuple, RelationDelta};
pub use error::HistoryError;
pub use history::History;
pub use hwq::{HistoricalWhatIf, NormalizedWhatIf, WhatIfRef};
pub use modification::{Modification, ModificationSet};
pub use naive::{naive_what_if, NaiveBreakdown, NaiveResult};
pub use statement::{SetClause, Statement};
