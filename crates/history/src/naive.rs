//! The naïve algorithm for answering historical what-if queries
//! (Algorithm 1, Section 4).
//!
//! The naïve method copies the database state `D` as of the start of the
//! history (renaming the copied relations to avoid clashes), executes the
//! modified history over the copy, and computes the delta between the current
//! database state `H(D)` and the result. The per-phase timings (Creation /
//! Exe / Delta) are reported so that Figure 15 of the paper can be
//! regenerated.

use std::time::{Duration, Instant};

use mahif_storage::{Database, Schema};

use crate::delta::DatabaseDelta;
use crate::error::HistoryError;
use crate::hwq::WhatIfRef;

/// Per-phase timing breakdown of the naïve algorithm (the series of
/// Figure 15).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBreakdown {
    /// Time spent copying the relevant relations of `D`.
    pub creation: Duration,
    /// Time spent executing the modified history over the copy.
    pub execution: Duration,
    /// Time spent computing the delta.
    pub delta: Duration,
}

impl NaiveBreakdown {
    /// Total runtime.
    pub fn total(&self) -> Duration {
        self.creation + self.execution + self.delta
    }
}

/// Result of the naïve algorithm: the answer plus the phase breakdown.
#[derive(Debug, Clone)]
pub struct NaiveResult {
    /// The answer `Δ(H(D), H[M](D))`.
    pub delta: DatabaseDelta,
    /// Phase timings.
    pub breakdown: NaiveBreakdown,
}

/// Answers a historical what-if query with the naïve algorithm.
///
/// The query is the borrowed view [`WhatIfRef`] — the naïve method reads the
/// registered history and pre-history state but never clones them beyond the
/// relation copies the algorithm itself requires. `current_state` is `H(D)`,
/// the state of the database after the original history — in a deployment
/// this is simply the live database and does not need to be recomputed, so
/// it is an input here (pass
/// [`crate::HistoricalWhatIf::current_state`] or a previously materialized
/// state).
pub fn naive_what_if(
    query: WhatIfRef<'_>,
    current_state: &Database,
) -> Result<NaiveResult, HistoryError> {
    let mut breakdown = NaiveBreakdown::default();

    // Phase 1 (Creation): copy the relations accessed by the history under
    // fresh names. Only relations touched by the history need copying; the
    // state of any other relation is identical in H(D) and H[M](D).
    let start = Instant::now();
    let accessed = query.history.relations_accessed();
    let mut copy = Database::new();
    for name in &accessed {
        let rel = query.database.relation(name)?;
        let renamed_schema = Schema::shared(
            format!("{name}__whatif_copy"),
            rel.schema.attributes.clone(),
        );
        // The copy keeps the original relation name internally so the history
        // can run against it unchanged; the renamed schema documents that a
        // real deployment would create `name__whatif_copy`. We materialize
        // the tuples (a full copy) to model the write cost of the naive
        // approach.
        let mut copied = mahif_storage::Relation::empty(rel.schema.clone());
        copied.tuples = rel.tuples.clone();
        copy.put_relation(copied);
        // Keep the renamed schema alive so the copy cost includes schema
        // bookkeeping; it is otherwise unused.
        let _ = renamed_schema;
    }
    breakdown.creation = start.elapsed();

    // Phase 2 (Exe): run the modified history over the copy.
    let start = Instant::now();
    let modified_history = query.modified_history()?;
    let modified_state = modified_history.execute(&copy)?;
    breakdown.execution = start.elapsed();

    // Phase 3 (Delta): compute the delta restricted to the accessed
    // relations.
    let start = Instant::now();
    let delta = DatabaseDelta::compute_for_relations(current_state, &modified_state, &accessed);
    breakdown.delta = start.elapsed();

    Ok(NaiveResult { delta, breakdown })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::hwq::HistoricalWhatIf;
    use crate::modification::{Modification, ModificationSet};
    use crate::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_expr::Value;

    fn bob_query() -> HistoricalWhatIf {
        HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::single_replace(0, running_example_u1_prime()),
        )
    }

    #[test]
    fn naive_matches_direct_execution() {
        let q = bob_query();
        let current = q.current_state().unwrap();
        let naive = naive_what_if(q.as_ref(), &current).unwrap();
        let reference = q.answer_by_direct_execution().unwrap();
        assert_eq!(naive.delta, reference);
        assert_eq!(naive.delta.len(), 2);
    }

    #[test]
    fn naive_answer_values() {
        let q = bob_query();
        let current = q.current_state().unwrap();
        let naive = naive_what_if(q.as_ref(), &current).unwrap();
        let order = naive.delta.relation("Order").unwrap();
        assert_eq!(order.plus_tuples()[0].value(0), Some(&Value::int(12)));
        assert_eq!(order.plus_tuples()[0].value(4), Some(&Value::int(10)));
    }

    #[test]
    fn breakdown_total_is_sum() {
        let q = bob_query();
        let current = q.current_state().unwrap();
        let naive = naive_what_if(q.as_ref(), &current).unwrap();
        let b = naive.breakdown;
        assert_eq!(b.total(), b.creation + b.execution + b.delta);
    }

    #[test]
    fn naive_with_multiple_modifications() {
        let q = HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::new(vec![
                Modification::replace(0, running_example_u1_prime()),
                Modification::delete(1),
            ]),
        );
        let current = q.current_state().unwrap();
        let naive = naive_what_if(q.as_ref(), &current).unwrap();
        let reference = q.answer_by_direct_execution().unwrap();
        assert_eq!(naive.delta, reference);
    }

    #[test]
    fn naive_with_no_modifications_is_empty() {
        let q = HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::default(),
        );
        let current = q.current_state().unwrap();
        let naive = naive_what_if(q.as_ref(), &current).unwrap();
        assert!(naive.delta.is_empty());
    }
}
