//! Hypothetical modifications to a history (Section 3) and the construction
//! of the modified history `H[M]`.

use std::fmt;

use crate::error::HistoryError;
use crate::history::History;
use crate::statement::Statement;

/// A single modification `m` of a history.
#[derive(Debug, Clone, PartialEq)]
pub enum Modification {
    /// `u_i ← u'`: replace the statement at 0-based `position` with `new`.
    Replace {
        /// Position of the replaced statement.
        position: usize,
        /// Replacement statement.
        new: Statement,
    },
    /// `ins_i(u)`: insert `new` at 0-based `position` (statements at or after
    /// that position shift right).
    Insert {
        /// Insertion position.
        position: usize,
        /// Inserted statement.
        new: Statement,
    },
    /// `del(i)`: delete the statement at 0-based `position`.
    Delete {
        /// Position of the deleted statement.
        position: usize,
    },
}

impl Modification {
    /// Replacement constructor.
    pub fn replace(position: usize, new: Statement) -> Self {
        Modification::Replace { position, new }
    }

    /// Insertion constructor.
    pub fn insert(position: usize, new: Statement) -> Self {
        Modification::Insert { position, new }
    }

    /// Deletion constructor.
    pub fn delete(position: usize) -> Self {
        Modification::Delete { position }
    }

    /// Position in the original history this modification refers to.
    pub fn position(&self) -> usize {
        match self {
            Modification::Replace { position, .. }
            | Modification::Insert { position, .. }
            | Modification::Delete { position } => *position,
        }
    }
}

impl fmt::Display for Modification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Modification::Replace { position, new } => {
                write!(f, "u{} ← {}", position + 1, new)
            }
            Modification::Insert { position, new } => write!(f, "ins_{}({})", position + 1, new),
            Modification::Delete { position } => write!(f, "del({})", position + 1),
        }
    }
}

/// An ordered sequence of modifications `M`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModificationSet {
    modifications: Vec<Modification>,
}

impl ModificationSet {
    /// Creates a modification set.
    pub fn new(modifications: Vec<Modification>) -> Self {
        ModificationSet { modifications }
    }

    /// A single replacement `u_i ← u'`.
    pub fn single_replace(position: usize, new: Statement) -> Self {
        ModificationSet::new(vec![Modification::replace(position, new)])
    }

    /// The modifications.
    pub fn modifications(&self) -> &[Modification] {
        &self.modifications
    }

    /// Consumes the set into its modifications (used by request builders
    /// that accumulate modifications across several fluent calls).
    pub fn into_modifications(self) -> Vec<Modification> {
        self.modifications
    }

    /// Number of modifications.
    pub fn len(&self) -> usize {
        self.modifications.len()
    }

    /// True when there are no modifications.
    pub fn is_empty(&self) -> bool {
        self.modifications.is_empty()
    }

    /// Applies the modifications to `history`, producing `H[M]`.
    ///
    /// Modifications are applied in order; positions of later modifications
    /// refer to the history as already modified by earlier ones (matching the
    /// paper's sequential semantics for `M`).
    pub fn apply(&self, history: &History) -> Result<History, HistoryError> {
        let mut statements: Vec<Statement> = history.statements().to_vec();
        for m in &self.modifications {
            match m {
                Modification::Replace { position, new } => {
                    if *position >= statements.len() {
                        return Err(HistoryError::PositionOutOfBounds {
                            position: *position,
                            length: statements.len(),
                        });
                    }
                    statements[*position] = new.clone();
                }
                Modification::Insert { position, new } => {
                    if *position > statements.len() {
                        return Err(HistoryError::PositionOutOfBounds {
                            position: *position,
                            length: statements.len(),
                        });
                    }
                    statements.insert(*position, new.clone());
                }
                Modification::Delete { position } => {
                    if *position >= statements.len() {
                        return Err(HistoryError::PositionOutOfBounds {
                            position: *position,
                            length: statements.len(),
                        });
                    }
                    statements.remove(*position);
                }
            }
        }
        Ok(History::new(statements))
    }

    /// Normalizes the modification set against `history` into a pair of
    /// equal-length histories related purely by *replacements* (Section 6).
    ///
    /// The modified history `H[M]` is first materialized with [`Self::apply`]
    /// (the paper's sequential semantics, which is also what direct execution
    /// uses), and the two statement sequences are then aligned with a
    /// longest-common-subsequence diff. Statements missing on one side are
    /// padded with no-ops; an unmatched original statement and an unmatched
    /// new statement of the same kind over the same relation are paired into
    /// a single replacement position. Computing the alignment from the final
    /// `H[M]` (rather than re-interpreting the modification positions one by
    /// one) guarantees that the normalized modified history is semantically
    /// identical to `H[M]` even when modifications insert, delete or shift
    /// positions that later modifications refer to.
    ///
    /// Returns the padded original history, the padded modified history and
    /// the positions (0-based, valid in both padded histories) at which the
    /// two differ.
    pub fn normalize(
        &self,
        history: &History,
    ) -> Result<(History, History, Vec<usize>), HistoryError> {
        let target = self.apply(history)?;
        let a = history.statements();
        let b = target.statements();

        // Longest-common-subsequence table over statement equality.
        let n = a.len();
        let m = b.len();
        let mut lcs = vec![vec![0usize; m + 1]; n + 1];
        for i in (0..n).rev() {
            for j in (0..m).rev() {
                lcs[i][j] = if a[i] == b[j] {
                    lcs[i + 1][j + 1] + 1
                } else {
                    lcs[i + 1][j].max(lcs[i][j + 1])
                };
            }
        }

        let mut original: Vec<Statement> = Vec::with_capacity(n.max(m));
        let mut modified: Vec<Statement> = Vec::with_capacity(n.max(m));
        let mut pending_removed: Vec<Statement> = Vec::new();
        let mut pending_added: Vec<Statement> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < n || j < m {
            if i < n && j < m && a[i] == b[j] {
                flush_pending(
                    &mut original,
                    &mut modified,
                    std::mem::take(&mut pending_removed),
                    std::mem::take(&mut pending_added),
                );
                original.push(a[i].clone());
                modified.push(b[j].clone());
                i += 1;
                j += 1;
            } else if j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j]) {
                pending_added.push(b[j].clone());
                j += 1;
            } else {
                pending_removed.push(a[i].clone());
                i += 1;
            }
        }
        flush_pending(
            &mut original,
            &mut modified,
            std::mem::take(&mut pending_removed),
            std::mem::take(&mut pending_added),
        );

        debug_assert_eq!(original.len(), modified.len());
        let differing: Vec<usize> = original
            .iter()
            .zip(modified.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        Ok((History::new(original), History::new(modified), differing))
    }
}

/// Emits one run of unmatched statements from the diff: removed statements
/// are paired with added statements of the same kind over the same relation
/// (becoming replacements at a single padded position); everything left over
/// is padded with a no-op on the other side.
fn flush_pending(
    original: &mut Vec<Statement>,
    modified: &mut Vec<Statement>,
    removed: Vec<Statement>,
    added: Vec<Statement>,
) {
    let mut used = vec![false; added.len()];
    for old in removed {
        let paired = added
            .iter()
            .enumerate()
            .find(|(k, new)| !used[*k] && same_kind(&old, new) && old.relation() == new.relation())
            .map(|(k, _)| k);
        match paired {
            Some(k) => {
                used[k] = true;
                original.push(old);
                modified.push(added[k].clone());
            }
            None => {
                modified.push(Statement::no_op(old.relation()));
                original.push(old);
            }
        }
    }
    for (k, new) in added.into_iter().enumerate() {
        if !used[k] {
            original.push(Statement::no_op(new.relation()));
            modified.push(new);
        }
    }
}

fn same_kind(a: &Statement, b: &Statement) -> bool {
    matches!(
        (a, b),
        (Statement::Update { .. }, Statement::Update { .. })
            | (Statement::Delete { .. }, Statement::Delete { .. })
            | (
                Statement::InsertValues { .. },
                Statement::InsertValues { .. }
            )
            | (Statement::InsertQuery { .. }, Statement::InsertQuery { .. })
    )
}

impl fmt::Display for ModificationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M = (")?;
        for (i, m) in self.modifications.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{
        running_example_database, running_example_history, running_example_u1_prime, SetClause,
    };
    use mahif_expr::builder::*;
    use mahif_expr::Expr;

    fn h() -> History {
        History::new(running_example_history())
    }

    #[test]
    fn replace_builds_modified_history() {
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hm = m.apply(&h()).unwrap();
        assert_eq!(hm.len(), 3);
        assert_eq!(hm.statements()[0], running_example_u1_prime());
        assert_eq!(hm.statements()[1], h().statements()[1]);
    }

    #[test]
    fn paper_example_replace_and_delete() {
        // H = u1,u2,u3 and M = (u1 ← u1', del(3)) gives H[M] = u1', u2.
        let m = ModificationSet::new(vec![
            Modification::replace(0, running_example_u1_prime()),
            Modification::delete(2),
        ]);
        let hm = m.apply(&h()).unwrap();
        assert_eq!(hm.len(), 2);
        assert_eq!(hm.statements()[0], running_example_u1_prime());
        assert_eq!(hm.statements()[1], h().statements()[1]);
    }

    #[test]
    fn insert_shifts_statements() {
        let extra = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(1)),
            Expr::true_(),
        );
        let m = ModificationSet::new(vec![Modification::insert(1, extra.clone())]);
        let hm = m.apply(&h()).unwrap();
        assert_eq!(hm.len(), 4);
        assert_eq!(hm.statements()[1], extra);
        assert_eq!(hm.statements()[2], h().statements()[1]);
    }

    #[test]
    fn out_of_bounds_errors() {
        assert!(
            ModificationSet::new(vec![Modification::replace(9, running_example_u1_prime())])
                .apply(&h())
                .is_err()
        );
        assert!(ModificationSet::new(vec![Modification::delete(9)])
            .apply(&h())
            .is_err());
        assert!(
            ModificationSet::new(vec![Modification::insert(9, running_example_u1_prime())])
                .apply(&h())
                .is_err()
        );
    }

    #[test]
    fn normalize_replacement_same_type() {
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let (orig, modif, diff) = m.normalize(&h()).unwrap();
        assert_eq!(orig.len(), 3);
        assert_eq!(modif.len(), 3);
        assert_eq!(diff, vec![0]);
        assert_eq!(orig.statements()[0], h().statements()[0]);
        assert_eq!(modif.statements()[0], running_example_u1_prime());
    }

    #[test]
    fn normalize_delete_uses_noop() {
        let m = ModificationSet::new(vec![Modification::delete(1)]);
        let (orig, modif, diff) = m.normalize(&h()).unwrap();
        assert_eq!(orig.len(), 3);
        assert_eq!(modif.len(), 3);
        assert_eq!(diff, vec![1]);
        assert!(modif.statements()[1].is_no_op());
        // Executing the normalized modified history equals executing H[M].
        let db = running_example_database();
        let direct = m.apply(&h()).unwrap().execute(&db).unwrap();
        let normalized = modif.execute(&db).unwrap();
        assert!(direct.set_eq(&normalized));
    }

    #[test]
    fn normalize_insert_pads_original() {
        let extra = Statement::update(
            "Order",
            SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(1))),
            Expr::true_(),
        );
        let m = ModificationSet::new(vec![Modification::insert(1, extra.clone())]);
        let (orig, modif, diff) = m.normalize(&h()).unwrap();
        assert_eq!(orig.len(), 4);
        assert_eq!(modif.len(), 4);
        assert_eq!(diff, vec![1]);
        assert!(orig.statements()[1].is_no_op());
        assert_eq!(modif.statements()[1], extra);
        // Padding does not change the semantics of the original history.
        let db = running_example_database();
        assert!(orig
            .execute(&db)
            .unwrap()
            .set_eq(&h().execute(&db).unwrap()));
        // And the normalized modified history equals H[M].
        let direct = m.apply(&h()).unwrap().execute(&db).unwrap();
        assert!(modif.execute(&db).unwrap().set_eq(&direct));
    }

    #[test]
    fn normalize_cross_type_replacement() {
        // Replace update u2 with a delete: rewritten as u2 ← noop plus an
        // inserted delete.
        let del = Statement::delete("Order", ge(attr("Price"), lit(100)));
        let m = ModificationSet::single_replace(1, del.clone());
        let (orig, modif, diff) = m.normalize(&h()).unwrap();
        assert_eq!(orig.len(), 4);
        assert_eq!(modif.len(), 4);
        assert_eq!(diff.len(), 2);
        // Semantics preserved.
        let db = running_example_database();
        let direct = m.apply(&h()).unwrap().execute(&db).unwrap();
        assert!(modif.execute(&db).unwrap().set_eq(&direct));
        assert!(orig
            .execute(&db)
            .unwrap()
            .set_eq(&h().execute(&db).unwrap()));
    }

    #[test]
    fn display_forms() {
        let m = ModificationSet::new(vec![
            Modification::replace(0, running_example_u1_prime()),
            Modification::delete(2),
            Modification::insert(1, Statement::no_op("Order")),
        ]);
        let s = m.to_string();
        assert!(s.contains("u1 ←"));
        assert!(s.contains("del(3)"));
        assert!(s.contains("ins_2"));
        assert_eq!(m.modifications()[0].position(), 0);
        assert!(!m.is_empty());
        assert_eq!(m.len(), 3);
    }
}
