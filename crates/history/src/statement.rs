//! Update statements and their semantics (Section 2, Equations (1)–(4)).

use std::fmt;

use mahif_expr::{eval_condition, eval_expr, Expr, Value};
use mahif_query::{evaluate, Query};
use mahif_storage::{Database, Relation, Schema, Tuple, TupleBindings};

use crate::error::HistoryError;

/// The `Set` clause of an update: the attributes that are explicitly
/// assigned. All other attributes keep their value (identity), matching the
/// paper's notational shortcut `(A_{i1} ← e_1, ..., A_{im} ← e_m)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetClause {
    /// `(attribute, expression)` assignments.
    pub assignments: Vec<(String, Expr)>,
}

impl SetClause {
    /// Creates a set clause from assignments.
    pub fn new(assignments: Vec<(String, Expr)>) -> Self {
        SetClause { assignments }
    }

    /// Single-assignment convenience constructor.
    pub fn single(attr: impl Into<String>, expr: Expr) -> Self {
        SetClause {
            assignments: vec![(attr.into(), expr)],
        }
    }

    /// The expression assigned to `attr`, or `None` when the attribute is
    /// not modified.
    pub fn expr_for(&self, attr: &str) -> Option<&Expr> {
        self.assignments
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, e)| e)
    }

    /// Expands the partial assignment list into the full `Set` expression
    /// vector of the paper (one expression per schema attribute, identity
    /// where unspecified).
    pub fn full_set(&self, schema: &Schema) -> Vec<Expr> {
        schema
            .attributes
            .iter()
            .map(|a| {
                self.expr_for(&a.name)
                    .cloned()
                    .unwrap_or_else(|| Expr::Attr(a.name.clone()))
            })
            .collect()
    }

    /// Names of the attributes modified by this clause.
    pub fn modified_attributes(&self) -> Vec<String> {
        self.assignments.iter().map(|(a, _)| a.clone()).collect()
    }
}

/// A statement of a transactional history.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `UPDATE relation SET ... WHERE cond` — `U_{Set,θ}`.
    Update {
        /// Target relation.
        relation: String,
        /// Assignments.
        set: SetClause,
        /// The update's condition θ.
        cond: Expr,
    },
    /// `DELETE FROM relation WHERE cond` — `D_θ` (removes tuples satisfying
    /// `cond`, matching SQL; the paper's Equation (2) keeps tuples that do
    /// *not* fulfill the condition).
    Delete {
        /// Target relation.
        relation: String,
        /// The delete's condition θ.
        cond: Expr,
    },
    /// `INSERT INTO relation VALUES (...)` — `I_t`.
    InsertValues {
        /// Target relation.
        relation: String,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// `INSERT INTO relation SELECT ...` — `I_Q`.
    InsertQuery {
        /// Target relation.
        relation: String,
        /// The query producing inserted tuples.
        query: Query,
    },
}

impl Statement {
    /// Constructs an update statement.
    pub fn update(relation: impl Into<String>, set: SetClause, cond: Expr) -> Statement {
        Statement::Update {
            relation: relation.into(),
            set,
            cond,
        }
    }

    /// Constructs a delete statement.
    pub fn delete(relation: impl Into<String>, cond: Expr) -> Statement {
        Statement::Delete {
            relation: relation.into(),
            cond,
        }
    }

    /// Constructs an insert-values statement.
    pub fn insert_values(relation: impl Into<String>, tuple: Tuple) -> Statement {
        Statement::InsertValues {
            relation: relation.into(),
            tuple,
        }
    }

    /// Constructs an insert-query statement.
    pub fn insert_query(relation: impl Into<String>, query: Query) -> Statement {
        Statement::InsertQuery {
            relation: relation.into(),
            query,
        }
    }

    /// A *no-op* statement over `relation`: a delete whose condition is
    /// `false`, used to pad histories when rewriting statement insertions /
    /// deletions into replacements (Section 6).
    pub fn no_op(relation: impl Into<String>) -> Statement {
        Statement::delete(relation, Expr::false_())
    }

    /// True when this statement is a no-op (`D_false`).
    pub fn is_no_op(&self) -> bool {
        matches!(self, Statement::Delete { cond, .. } if cond.is_false())
    }

    /// The relation modified by this statement.
    pub fn relation(&self) -> &str {
        match self {
            Statement::Update { relation, .. }
            | Statement::Delete { relation, .. }
            | Statement::InsertValues { relation, .. }
            | Statement::InsertQuery { relation, .. } => relation,
        }
    }

    /// The statement's condition θ (updates and deletes only).
    pub fn condition(&self) -> Option<&Expr> {
        match self {
            Statement::Update { cond, .. } | Statement::Delete { cond, .. } => Some(cond),
            _ => None,
        }
    }

    /// Tuple independence (Definition 1 / Lemma 1): all statements except
    /// `INSERT ... SELECT` are tuple independent.
    pub fn is_tuple_independent(&self) -> bool {
        !matches!(self, Statement::InsertQuery { .. })
    }

    /// Short SQL-ish label for error messages and reports.
    pub fn label(&self) -> String {
        match self {
            Statement::Update { relation, .. } => format!("UPDATE {relation}"),
            Statement::Delete { relation, cond } if cond.is_false() => {
                format!("NOOP {relation}")
            }
            Statement::Delete { relation, .. } => format!("DELETE {relation}"),
            Statement::InsertValues { relation, .. } => format!("INSERT VALUES {relation}"),
            Statement::InsertQuery { relation, .. } => format!("INSERT SELECT {relation}"),
        }
    }

    /// Applies the statement to a database, returning the updated database
    /// (Equations (1)–(4)). Only the target relation changes; for
    /// `INSERT ... SELECT` the query may read any relation of the input
    /// database.
    pub fn apply(&self, db: &Database) -> Result<Database, HistoryError> {
        let mut out = db.clone();
        match self {
            Statement::Update {
                relation,
                set,
                cond,
            } => {
                let rel = db.relation(relation)?;
                let schema = rel.schema.clone();
                let full = set.full_set(&schema);
                let mut new_rel = Relation::empty(schema.clone());
                for t in rel.iter() {
                    let bind = TupleBindings::new(&schema, t);
                    if eval_condition(cond, &bind)? {
                        let mut values = Vec::with_capacity(full.len());
                        for e in &full {
                            values.push(eval_expr(e, &bind)?);
                        }
                        new_rel.tuples.push(Tuple::new(values));
                    } else {
                        new_rel.tuples.push(t.clone());
                    }
                }
                out.put_relation(new_rel);
            }
            Statement::Delete { relation, cond } => {
                let rel = db.relation(relation)?;
                let schema = rel.schema.clone();
                let mut new_rel = Relation::empty(schema.clone());
                for t in rel.iter() {
                    let bind = TupleBindings::new(&schema, t);
                    if !eval_condition(cond, &bind)? {
                        new_rel.tuples.push(t.clone());
                    }
                }
                out.put_relation(new_rel);
            }
            Statement::InsertValues { relation, tuple } => {
                let rel = out.relation_mut(relation)?;
                rel.insert(tuple.clone())?;
            }
            Statement::InsertQuery { relation, query } => {
                let result = evaluate(query, db)?;
                let rel = out.relation_mut(relation)?;
                for t in result.iter() {
                    rel.insert(t.clone())?;
                }
            }
        }
        Ok(out)
    }

    /// Applies a tuple-independent statement to a single tuple of its target
    /// relation, returning the surviving (possibly modified) tuple or `None`
    /// if the tuple is deleted. Insert statements return the tuple unchanged
    /// (they never modify existing tuples).
    pub fn apply_to_tuple(
        &self,
        schema: &Schema,
        tuple: &Tuple,
    ) -> Result<Option<Tuple>, HistoryError> {
        match self {
            Statement::Update { set, cond, .. } => {
                let bind = TupleBindings::new(schema, tuple);
                if eval_condition(cond, &bind)? {
                    let full = set.full_set(schema);
                    let mut values = Vec::with_capacity(full.len());
                    for e in &full {
                        values.push(eval_expr(e, &bind)?);
                    }
                    Ok(Some(Tuple::new(values)))
                } else {
                    Ok(Some(tuple.clone()))
                }
            }
            Statement::Delete { cond, .. } => {
                let bind = TupleBindings::new(schema, tuple);
                if eval_condition(cond, &bind)? {
                    Ok(None)
                } else {
                    Ok(Some(tuple.clone()))
                }
            }
            Statement::InsertValues { .. } => Ok(Some(tuple.clone())),
            Statement::InsertQuery { .. } => Err(HistoryError::NotTupleIndependent(self.label())),
        }
    }

    /// Fresh value assigned to attribute `attr` when the condition holds
    /// (update statements only): the paper's `Set(A_i)`.
    pub fn set_expr_for(&self, attr: &str) -> Option<&Expr> {
        match self {
            Statement::Update { set, .. } => set.expr_for(attr),
            _ => None,
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Update {
                relation,
                set,
                cond,
            } => {
                write!(f, "UPDATE {relation} SET ")?;
                for (i, (a, e)) in set.assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} = {e}")?;
                }
                write!(f, " WHERE {cond}")
            }
            Statement::Delete { relation, cond } => {
                write!(f, "DELETE FROM {relation} WHERE {cond}")
            }
            Statement::InsertValues { relation, tuple } => {
                write!(f, "INSERT INTO {relation} VALUES {tuple}")
            }
            Statement::InsertQuery { relation, query } => {
                write!(f, "INSERT INTO {relation} ({query})")
            }
        }
    }
}

/// Builds the running-example `Order` database of Figure 1. Exposed because
/// many crates' tests and the examples use it.
pub fn running_example_database() -> Database {
    use mahif_storage::Attribute;
    let schema = Schema::shared(
        "Order",
        vec![
            Attribute::int("ID"),
            Attribute::str("Customer"),
            Attribute::str("Country"),
            Attribute::int("Price"),
            Attribute::int("ShippingFee"),
        ],
    );
    let mut r = Relation::empty(schema);
    for (id, customer, country, price, fee) in [
        (11, "Susan", "UK", 20, 5),
        (12, "Alex", "UK", 50, 5),
        (13, "Jack", "US", 60, 3),
        (14, "Mark", "US", 30, 4),
    ] {
        r.insert(Tuple::new(vec![
            Value::int(id),
            Value::str(customer),
            Value::str(country),
            Value::int(price),
            Value::int(fee),
        ]))
        .unwrap();
    }
    let mut db = Database::new();
    db.add_relation(r).unwrap();
    db
}

/// The running-example history `H = (u1, u2, u3)` of Figure 2.
pub fn running_example_history() -> Vec<Statement> {
    use mahif_expr::builder::*;
    vec![
        // u1: UPDATE Order SET ShippingFee = 0 WHERE Price >= 50
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(50)),
        ),
        // u2: UPDATE Order SET ShippingFee = ShippingFee + 5
        //     WHERE Country = 'UK' AND Price <= 100
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(5))),
            and(eq(attr("Country"), slit("UK")), le(attr("Price"), lit(100))),
        ),
        // u3: UPDATE Order SET ShippingFee = ShippingFee - 2
        //     WHERE Price <= 30 AND ShippingFee >= 10
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", sub(attr("ShippingFee"), lit(2))),
            and(le(attr("Price"), lit(30)), ge(attr("ShippingFee"), lit(10))),
        ),
    ]
}

/// The hypothetical replacement `u1'` of the running example (waive shipping
/// fees only for orders of at least $60).
pub fn running_example_u1_prime() -> Statement {
    use mahif_expr::builder::*;
    Statement::update(
        "Order",
        SetClause::single("ShippingFee", lit(0)),
        ge(attr("Price"), lit(60)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;

    fn fees(db: &Database) -> Vec<i64> {
        db.relation("Order")
            .unwrap()
            .iter()
            .map(|t| t.value(4).unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn set_clause_expansion() {
        let schema = Schema::new(
            "R",
            vec![
                mahif_storage::Attribute::int("A"),
                mahif_storage::Attribute::int("B"),
            ],
        );
        let set = SetClause::single("B", add(attr("B"), lit(3)));
        let full = set.full_set(&schema);
        assert_eq!(full.len(), 2);
        assert_eq!(full[0], attr("A"));
        assert_eq!(full[1], add(attr("B"), lit(3)));
        assert_eq!(set.modified_attributes(), vec!["B"]);
        assert!(set.expr_for("A").is_none());
    }

    #[test]
    fn update_semantics_running_example_u1() {
        let db = running_example_database();
        let u1 = &running_example_history()[0];
        let after = u1.apply(&db).unwrap();
        assert_eq!(fees(&after), vec![5, 0, 0, 4]);
    }

    #[test]
    fn full_history_matches_figure_3() {
        let mut db = running_example_database();
        for u in running_example_history() {
            db = u.apply(&db).unwrap();
        }
        assert_eq!(fees(&db), vec![8, 5, 0, 4]);
    }

    #[test]
    fn modified_history_matches_figure_4() {
        let mut db = running_example_database();
        let mut history = running_example_history();
        history[0] = running_example_u1_prime();
        for u in history {
            db = u.apply(&db).unwrap();
        }
        // Figure 4: Alex's order (ID 12) now pays 10 instead of 5.
        assert_eq!(fees(&db), vec![8, 10, 0, 4]);
    }

    #[test]
    fn delete_semantics() {
        let db = running_example_database();
        let d = Statement::delete("Order", ge(attr("Price"), lit(50)));
        let after = d.apply(&db).unwrap();
        assert_eq!(after.relation("Order").unwrap().len(), 2);
    }

    #[test]
    fn insert_values_semantics() {
        let db = running_example_database();
        let t = Tuple::new(vec![
            Value::int(15),
            Value::str("Eve"),
            Value::str("UK"),
            Value::int(10),
            Value::int(2),
        ]);
        let i = Statement::insert_values("Order", t.clone());
        let after = i.apply(&db).unwrap();
        assert_eq!(after.relation("Order").unwrap().len(), 5);
        assert!(after.relation("Order").unwrap().contains(&t));
    }

    #[test]
    fn insert_query_semantics() {
        // Insert a copy of all UK orders (with new IDs offset by 100).
        let db = running_example_database();
        let q = Query::project(
            vec![
                mahif_query::ProjectItem::new(add(attr("ID"), lit(100)), "ID"),
                mahif_query::ProjectItem::identity("Customer"),
                mahif_query::ProjectItem::identity("Country"),
                mahif_query::ProjectItem::identity("Price"),
                mahif_query::ProjectItem::identity("ShippingFee"),
            ],
            Query::select(eq(attr("Country"), slit("UK")), Query::scan("Order")),
        );
        let i = Statement::insert_query("Order", q);
        let after = i.apply(&db).unwrap();
        assert_eq!(after.relation("Order").unwrap().len(), 6);
        assert!(!i.is_tuple_independent());
    }

    #[test]
    fn no_op_does_nothing() {
        let db = running_example_database();
        let n = Statement::no_op("Order");
        assert!(n.is_no_op());
        let after = n.apply(&db).unwrap();
        assert!(after.set_eq(&db));
        assert!(!Statement::delete("Order", Expr::true_()).is_no_op());
    }

    #[test]
    fn apply_to_tuple_update_and_delete() {
        let db = running_example_database();
        let schema = db.relation("Order").unwrap().schema.clone();
        let expensive = Tuple::new(vec![
            Value::int(13),
            Value::str("Jack"),
            Value::str("US"),
            Value::int(60),
            Value::int(3),
        ]);
        let u1 = &running_example_history()[0];
        let updated = u1.apply_to_tuple(&schema, &expensive).unwrap().unwrap();
        assert_eq!(updated.value(4), Some(&Value::int(0)));

        let cheap = Tuple::new(vec![
            Value::int(11),
            Value::str("Susan"),
            Value::str("UK"),
            Value::int(20),
            Value::int(5),
        ]);
        let unchanged = u1.apply_to_tuple(&schema, &cheap).unwrap().unwrap();
        assert_eq!(unchanged, cheap);

        let del = Statement::delete("Order", ge(attr("Price"), lit(50)));
        assert!(del.apply_to_tuple(&schema, &expensive).unwrap().is_none());
        assert!(del.apply_to_tuple(&schema, &cheap).unwrap().is_some());
    }

    #[test]
    fn apply_to_tuple_rejects_insert_query() {
        let db = running_example_database();
        let schema = db.relation("Order").unwrap().schema.clone();
        let i = Statement::insert_query("Order", Query::scan("Order"));
        let t = Tuple::new(vec![
            Value::int(1),
            Value::str("x"),
            Value::str("UK"),
            Value::int(1),
            Value::int(1),
        ]);
        assert!(matches!(
            i.apply_to_tuple(&schema, &t),
            Err(HistoryError::NotTupleIndependent(_))
        ));
    }

    #[test]
    fn tuple_independence_lemma_1() {
        // u(D) = ∪_{t∈D} u({t}) for updates and deletes over the running
        // example instance.
        let db = running_example_database();
        let rel = db.relation("Order").unwrap();
        let schema = rel.schema.clone();
        for stmt in [
            running_example_history()[0].clone(),
            running_example_history()[1].clone(),
            Statement::delete("Order", ge(attr("Price"), lit(50))),
        ] {
            let full = stmt.apply(&db).unwrap();
            let full_rel = full.relation("Order").unwrap();
            let mut union: Vec<Tuple> = Vec::new();
            for t in rel.iter() {
                if let Some(out) = stmt.apply_to_tuple(&schema, t).unwrap() {
                    union.push(out);
                }
            }
            let mut a = full_rel.sorted_tuples();
            let mut b = union;
            b.sort_by(|x, y| x.total_cmp(y));
            a.sort_by(|x, y| x.total_cmp(y));
            assert_eq!(a, b, "tuple independence violated for {stmt}");
        }
    }

    #[test]
    fn labels_and_display() {
        let u = &running_example_history()[0];
        assert_eq!(u.label(), "UPDATE Order");
        assert!(u.to_string().contains("UPDATE Order SET ShippingFee"));
        assert_eq!(Statement::no_op("Order").label(), "NOOP Order");
        let d = Statement::delete("Order", Expr::true_());
        assert_eq!(d.label(), "DELETE Order");
        assert!(d.to_string().contains("DELETE FROM Order"));
        let iv = Statement::insert_values("Order", Tuple::new(vec![Value::int(1)]));
        assert!(iv.to_string().contains("INSERT INTO Order VALUES"));
        assert_eq!(iv.label(), "INSERT VALUES Order");
        let iq = Statement::insert_query("Order", Query::scan("Order"));
        assert!(iq.to_string().contains("INSERT INTO Order"));
        assert_eq!(iq.label(), "INSERT SELECT Order");
    }
}
