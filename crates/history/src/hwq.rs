//! Historical what-if queries `H = (H, D, M)` (Definition 2).

use std::fmt;

use mahif_storage::Database;

use crate::delta::DatabaseDelta;
use crate::error::HistoryError;
use crate::history::History;
use crate::modification::ModificationSet;

/// A historical what-if query: a history `H` executed over database `D`
/// together with a sequence of hypothetical modifications `M`.
///
/// The database `D` is the state *before* the history was executed; it is
/// obtained via time travel in a deployment and is stored explicitly here.
///
/// This owning form is convenient for constructing reference queries in
/// tests and tools. The engines consume the borrowed view [`WhatIfRef`]
/// (obtained via [`HistoricalWhatIf::as_ref`]) so that a long-lived session
/// can answer many queries against one registered history without cloning
/// `H` or `D` per call.
#[derive(Debug, Clone)]
pub struct HistoricalWhatIf {
    /// The original transactional history.
    pub history: History,
    /// The database state before the history executed.
    pub database: Database,
    /// The hypothetical modifications.
    pub modifications: ModificationSet,
}

impl HistoricalWhatIf {
    /// Creates a historical what-if query.
    pub fn new(history: History, database: Database, modifications: ModificationSet) -> Self {
        HistoricalWhatIf {
            history,
            database,
            modifications,
        }
    }

    /// The borrowed view of this query.
    pub fn as_ref(&self) -> WhatIfRef<'_> {
        WhatIfRef {
            history: &self.history,
            database: &self.database,
            modifications: &self.modifications,
        }
    }

    /// The modified history `H[M]`.
    pub fn modified_history(&self) -> Result<History, HistoryError> {
        self.as_ref().modified_history()
    }

    /// Normalizes into equal-length original/modified histories plus the
    /// differing positions (see [`ModificationSet::normalize`]).
    pub fn normalize(&self) -> Result<NormalizedWhatIf, HistoryError> {
        self.as_ref().normalize()
    }

    /// Reference answer by direct execution (no reenactment, no copy
    /// avoidance): `Δ(H(D), H[M](D))`. The optimized engine in the `mahif`
    /// crate must produce exactly this result; tests compare against it.
    pub fn answer_by_direct_execution(&self) -> Result<DatabaseDelta, HistoryError> {
        self.as_ref().answer_by_direct_execution()
    }

    /// The current database state `H(D)` (what a deployed system would have
    /// on disk when the what-if question is asked).
    pub fn current_state(&self) -> Result<Database, HistoryError> {
        self.as_ref().current_state()
    }
}

/// A historical what-if query borrowing its history and pre-history state.
///
/// This is the form the engines consume: the history and database belong to
/// a registered session (or to an owning [`HistoricalWhatIf`]) and are only
/// borrowed for the duration of one answer — answering a query is O(answer),
/// not O(|H| + |D|) in copies.
#[derive(Debug, Clone, Copy)]
pub struct WhatIfRef<'a> {
    /// The original transactional history.
    pub history: &'a History,
    /// The database state before the history executed.
    pub database: &'a Database,
    /// The hypothetical modifications.
    pub modifications: &'a ModificationSet,
}

impl<'a> WhatIfRef<'a> {
    /// Creates a borrowed what-if query.
    pub fn new(
        history: &'a History,
        database: &'a Database,
        modifications: &'a ModificationSet,
    ) -> Self {
        WhatIfRef {
            history,
            database,
            modifications,
        }
    }

    /// The modified history `H[M]`.
    pub fn modified_history(&self) -> Result<History, HistoryError> {
        self.modifications.apply(self.history)
    }

    /// Normalizes into equal-length original/modified histories plus the
    /// differing positions (see [`ModificationSet::normalize`]).
    pub fn normalize(&self) -> Result<NormalizedWhatIf, HistoryError> {
        let (original, modified, positions) = self.modifications.normalize(self.history)?;
        Ok(NormalizedWhatIf {
            original,
            modified,
            modified_positions: positions,
        })
    }

    /// Reference answer by direct execution: `Δ(H(D), H[M](D))`.
    pub fn answer_by_direct_execution(&self) -> Result<DatabaseDelta, HistoryError> {
        let original_final = self.history.execute(self.database)?;
        let modified_final = self.modified_history()?.execute(self.database)?;
        Ok(DatabaseDelta::compute(&original_final, &modified_final))
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> Result<Database, HistoryError> {
        self.history.execute(self.database)
    }

    /// Clones the borrowed parts into an owning query.
    pub fn to_owned(&self) -> HistoricalWhatIf {
        HistoricalWhatIf {
            history: self.history.clone(),
            database: self.database.clone(),
            modifications: self.modifications.clone(),
        }
    }
}

impl<'a> From<&'a HistoricalWhatIf> for WhatIfRef<'a> {
    fn from(query: &'a HistoricalWhatIf) -> Self {
        query.as_ref()
    }
}

impl fmt::Display for HistoricalWhatIf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Historical what-if query:")?;
        writeln!(f, "history ({} statements):", self.history.len())?;
        write!(f, "{}", self.history)?;
        writeln!(f, "{}", self.modifications)
    }
}

/// The result of normalizing a what-if query: two equal-length histories that
/// differ only at `modified_positions`, with every pair of statements at the
/// same position targeting the same relation.
#[derive(Debug, Clone)]
pub struct NormalizedWhatIf {
    /// Padded original history.
    pub original: History,
    /// Padded modified history.
    pub modified: History,
    /// Positions (0-based) where the two histories differ.
    pub modified_positions: Vec<usize>,
}

impl NormalizedWhatIf {
    /// Position of the first modified statement; statements before it can be
    /// ignored for reenactment (Section 4: "we can simply ignore the prefix
    /// of the history before the first modified statement").
    pub fn first_modified_position(&self) -> Option<usize> {
        self.modified_positions.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modification::Modification;
    use crate::statement::{
        running_example_database, running_example_history, running_example_u1_prime, Statement,
    };
    use mahif_expr::builder::*;
    use mahif_expr::Value;

    fn bob_query() -> HistoricalWhatIf {
        HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::single_replace(0, running_example_u1_prime()),
        )
    }

    #[test]
    fn answer_matches_example_2() {
        let q = bob_query();
        let answer = q.answer_by_direct_execution().unwrap();
        assert_eq!(answer.len(), 2);
        let order = answer.relation("Order").unwrap();
        assert_eq!(order.minus_tuples()[0].value(0), Some(&Value::int(12)));
        assert_eq!(order.plus_tuples()[0].value(4), Some(&Value::int(10)));
    }

    #[test]
    fn modified_history_and_current_state() {
        let q = bob_query();
        assert_eq!(q.modified_history().unwrap().len(), 3);
        let current = q.current_state().unwrap();
        let fees: Vec<i64> = current
            .relation("Order")
            .unwrap()
            .iter()
            .map(|t| t.value(4).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(fees, vec![8, 5, 0, 4]);
    }

    #[test]
    fn normalize_exposes_first_modified_position() {
        let q = bob_query();
        let n = q.normalize().unwrap();
        assert_eq!(n.first_modified_position(), Some(0));
        assert_eq!(n.original.len(), n.modified.len());
    }

    #[test]
    fn empty_modifications_give_empty_answer() {
        let q = HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::default(),
        );
        assert!(q.answer_by_direct_execution().unwrap().is_empty());
        assert_eq!(q.normalize().unwrap().first_modified_position(), None);
    }

    #[test]
    fn delete_modification_answer() {
        // Deleting u2 (the UK surcharge) changes both UK orders.
        let q = HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::new(vec![Modification::delete(1)]),
        );
        let answer = q.answer_by_direct_execution().unwrap();
        let order = answer.relation("Order").unwrap();
        assert_eq!(order.minus_tuples().len(), 2);
        assert_eq!(order.plus_tuples().len(), 2);
    }

    #[test]
    fn insert_modification_answer() {
        // Inserting a new update that charges 1 extra for US orders.
        let extra = Statement::update(
            "Order",
            crate::statement::SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(1))),
            eq(attr("Country"), slit("US")),
        );
        let q = HistoricalWhatIf::new(
            History::new(running_example_history()),
            running_example_database(),
            ModificationSet::new(vec![Modification::insert(3, extra)]),
        );
        let answer = q.answer_by_direct_execution().unwrap();
        let order = answer.relation("Order").unwrap();
        assert_eq!(order.plus_tuples().len(), 2);
        assert_eq!(order.minus_tuples().len(), 2);
    }

    #[test]
    fn borrowed_view_matches_owning_query() {
        let q = bob_query();
        let r = q.as_ref();
        assert_eq!(
            r.answer_by_direct_execution().unwrap(),
            q.answer_by_direct_execution().unwrap()
        );
        assert_eq!(r.current_state().unwrap(), q.current_state().unwrap());
        let n = r.normalize().unwrap();
        assert_eq!(n.modified_positions, vec![0]);
        // A ref built from parts behaves identically, and round-trips.
        let parts = WhatIfRef::new(&q.history, &q.database, &q.modifications);
        assert_eq!(parts.modified_history().unwrap().len(), 3);
        assert_eq!(parts.to_owned().history.len(), q.history.len());
        let from: WhatIfRef<'_> = (&q).into();
        assert_eq!(from.history.len(), 3);
    }

    #[test]
    fn display_mentions_history_and_modifications() {
        let q = bob_query();
        let s = q.to_string();
        assert!(s.contains("3 statements"));
        assert!(s.contains("M = ("));
    }
}
