//! Transactional histories `H = u_1, ..., u_n`.

use std::fmt;

use mahif_storage::{Database, VersionedDatabase};

use crate::error::HistoryError;
use crate::statement::Statement;

/// A transactional history: an ordered sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct History {
    statements: Vec<Statement>,
}

impl History {
    /// Creates a history from statements.
    pub fn new(statements: Vec<Statement>) -> Self {
        History { statements }
    }

    /// The empty history.
    pub fn empty() -> Self {
        History::default()
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when the history has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// The statements.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// The statement at 0-based `position`.
    pub fn statement(&self, position: usize) -> Result<&Statement, HistoryError> {
        self.statements
            .get(position)
            .ok_or(HistoryError::PositionOutOfBounds {
                position,
                length: self.statements.len(),
            })
    }

    /// Appends a statement.
    pub fn push(&mut self, statement: Statement) {
        self.statements.push(statement);
    }

    /// The prefix `H_i` containing the first `i` statements (0 ≤ i ≤ n).
    pub fn prefix(&self, i: usize) -> History {
        History {
            statements: self.statements[..i.min(self.statements.len())].to_vec(),
        }
    }

    /// The sub-history `H_{i,j}` (1-based inclusive indexes in the paper;
    /// here 0-based `start..=end`).
    pub fn range(&self, start: usize, end: usize) -> History {
        let end = end.min(self.statements.len().saturating_sub(1));
        if start > end || self.statements.is_empty() {
            return History::empty();
        }
        History {
            statements: self.statements[start..=end].to_vec(),
        }
    }

    /// The restriction `H_I`: the statements at the given (sorted,
    /// deduplicated) 0-based positions.
    pub fn restrict(&self, positions: &[usize]) -> History {
        let mut pos: Vec<usize> = positions
            .iter()
            .copied()
            .filter(|p| *p < self.statements.len())
            .collect();
        pos.sort_unstable();
        pos.dedup();
        History {
            statements: pos.iter().map(|p| self.statements[*p].clone()).collect(),
        }
    }

    /// Names of the relations accessed (modified or read) by this history.
    pub fn relations_accessed(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.statements {
            out.push(s.relation().to_string());
            if let Statement::InsertQuery { query, .. } = s {
                out.extend(query.referenced_relations());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// True when every statement is tuple independent (Definition 1), i.e.
    /// the history contains no `INSERT ... SELECT`.
    pub fn is_tuple_independent(&self) -> bool {
        self.statements.iter().all(|s| s.is_tuple_independent())
    }

    /// Executes the history over `db`, returning the final state `H(D)`.
    pub fn execute(&self, db: &Database) -> Result<Database, HistoryError> {
        let mut current = db.clone();
        for s in &self.statements {
            current = s.apply(&current)?;
        }
        Ok(current)
    }

    /// Executes the history recording every intermediate state, producing the
    /// time-travel substrate: version `i` is `D_i = H_i(D)`.
    pub fn execute_versioned(&self, db: &Database) -> Result<VersionedDatabase, HistoryError> {
        let mut versioned = VersionedDatabase::new(db.clone());
        let mut current = db.clone();
        for s in &self.statements {
            current = s.apply(&current)?;
            versioned.push_version(current.clone());
        }
        Ok(versioned)
    }

    /// Positions (0-based) of the statements that are inserts.
    pub fn insert_positions(&self) -> Vec<usize> {
        self.statements
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(
                    s,
                    Statement::InsertValues { .. } | Statement::InsertQuery { .. }
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a copy of the history with all insert statements removed —
    /// the `H_noIns` of the insert-split optimization (Section 10).
    pub fn without_inserts(&self) -> History {
        History {
            statements: self
                .statements
                .iter()
                .filter(|s| {
                    !matches!(
                        s,
                        Statement::InsertValues { .. } | Statement::InsertQuery { .. }
                    )
                })
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.statements.iter().enumerate() {
            writeln!(f, "u{}: {s};", i + 1)?;
        }
        Ok(())
    }
}

impl FromIterator<Statement> for History {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Self {
        History::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{running_example_database, running_example_history, SetClause};
    use mahif_expr::builder::*;
    use mahif_expr::{Expr, Value};
    use mahif_storage::Tuple;

    fn h() -> History {
        History::new(running_example_history())
    }

    #[test]
    fn basic_accessors() {
        let h = h();
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert!(History::empty().is_empty());
        assert!(h.statement(0).is_ok());
        assert!(matches!(
            h.statement(9),
            Err(HistoryError::PositionOutOfBounds { .. })
        ));
        assert_eq!(h.relations_accessed(), vec!["Order"]);
        assert!(h.is_tuple_independent());
    }

    #[test]
    fn prefix_range_restrict() {
        let h = h();
        assert_eq!(h.prefix(2).len(), 2);
        assert_eq!(h.prefix(10).len(), 3);
        assert_eq!(h.range(1, 2).len(), 2);
        assert_eq!(h.range(2, 1).len(), 0);
        let r = h.restrict(&[2, 0, 2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.statements()[0], h.statements()[0]);
        assert_eq!(r.statements()[1], h.statements()[2]);
        // out-of-range positions are ignored
        assert_eq!(h.restrict(&[7]).len(), 0);
    }

    #[test]
    fn execute_matches_figure_3() {
        let db = running_example_database();
        let out = h().execute(&db).unwrap();
        let fees: Vec<i64> = out
            .relation("Order")
            .unwrap()
            .iter()
            .map(|t| t.value(4).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(fees, vec![8, 5, 0, 4]);
    }

    #[test]
    fn execute_versioned_records_all_states() {
        let db = running_example_database();
        let versioned = h().execute_versioned(&db).unwrap();
        assert_eq!(versioned.version_count(), 4);
        // Version 0 is the original database.
        assert!(versioned.at(0).unwrap().set_eq(&db));
        // Version 3 equals direct execution.
        assert!(versioned.current().set_eq(&h().execute(&db).unwrap()));
        // Version 1 is the state after u1: fee of order 12 and 13 is 0.
        let v1 = versioned.at(1).unwrap();
        let fees: Vec<i64> = v1
            .relation("Order")
            .unwrap()
            .iter()
            .map(|t| t.value(4).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(fees, vec![5, 0, 0, 4]);
    }

    #[test]
    fn insert_positions_and_without_inserts() {
        let mut history = h();
        history.push(Statement::insert_values(
            "Order",
            Tuple::new(vec![
                Value::int(15),
                Value::str("Eve"),
                Value::str("UK"),
                Value::int(10),
                Value::int(2),
            ]),
        ));
        assert_eq!(history.insert_positions(), vec![3]);
        assert_eq!(history.without_inserts().len(), 3);
        assert!(history.without_inserts().insert_positions().is_empty());
    }

    #[test]
    fn relations_accessed_includes_query_sources() {
        let mut history = History::empty();
        history.push(Statement::update(
            "A",
            SetClause::single("X", lit(1)),
            Expr::true_(),
        ));
        history.push(Statement::insert_query("A", mahif_query::Query::scan("B")));
        assert_eq!(history.relations_accessed(), vec!["A", "B"]);
        assert!(!history.is_tuple_independent());
    }

    #[test]
    fn from_iterator_and_display() {
        let h: History = running_example_history().into_iter().collect();
        assert_eq!(h.len(), 3);
        let s = h.to_string();
        assert!(s.contains("u1:"));
        assert!(s.contains("u3:"));
    }
}
