//! Database deltas: the symmetric difference `Δ(D, D')` with `+`/`−`
//! annotations (Section 3).

use std::fmt;

use mahif_storage::{Database, Relation, SchemaRef, Tuple};

/// Whether a delta tuple appears only in the second database (`+`) or only in
/// the first (`−`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Tuple present in `D'` but not `D` (new under the hypothetical
    /// history).
    Plus,
    /// Tuple present in `D` but not `D'` (removed under the hypothetical
    /// history).
    Minus,
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Plus => write!(f, "+"),
            Annotation::Minus => write!(f, "-"),
        }
    }
}

/// A single annotated tuple of a delta.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaTuple {
    /// `+` or `−`.
    pub annotation: Annotation,
    /// The tuple.
    pub tuple: Tuple,
}

/// The delta of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDelta {
    /// Relation name.
    pub relation: String,
    /// Relation schema.
    pub schema: SchemaRef,
    /// Annotated tuples, sorted deterministically.
    pub tuples: Vec<DeltaTuple>,
}

impl RelationDelta {
    /// Computes `Δ(left, right)` for a single relation:
    /// `{+t | t ∉ left ∧ t ∈ right} ∪ {−t | t ∈ left ∧ t ∉ right}`.
    pub fn compute(relation: &str, left: &Relation, right: &Relation) -> RelationDelta {
        let minus = left.set_difference(right);
        let plus = right.set_difference(left);
        let mut tuples: Vec<DeltaTuple> = Vec::with_capacity(minus.len() + plus.len());
        for t in minus.iter() {
            tuples.push(DeltaTuple {
                annotation: Annotation::Minus,
                tuple: t.clone(),
            });
        }
        for t in plus.iter() {
            tuples.push(DeltaTuple {
                annotation: Annotation::Plus,
                tuple: t.clone(),
            });
        }
        tuples.sort_by(|a, b| {
            a.tuple
                .total_cmp(&b.tuple)
                .then_with(|| annotation_rank(a.annotation).cmp(&annotation_rank(b.annotation)))
        });
        RelationDelta {
            relation: relation.to_string(),
            schema: left.schema.clone(),
            tuples,
        }
    }

    /// Number of annotated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples annotated `+`.
    pub fn plus_tuples(&self) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|t| t.annotation == Annotation::Plus)
            .map(|t| &t.tuple)
            .collect()
    }

    /// The tuples annotated `−`.
    pub fn minus_tuples(&self) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|t| t.annotation == Annotation::Minus)
            .map(|t| &t.tuple)
            .collect()
    }
}

fn annotation_rank(a: Annotation) -> u8 {
    match a {
        Annotation::Minus => 0,
        Annotation::Plus => 1,
    }
}

/// The delta of an entire database: one [`RelationDelta`] per relation that
/// differs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatabaseDelta {
    /// Per-relation deltas (only non-empty ones are stored), sorted by
    /// relation name.
    pub relations: Vec<RelationDelta>,
}

impl DatabaseDelta {
    /// Computes `Δ(left, right)` over all relations present in either
    /// database. Relations missing from one side are treated as empty.
    pub fn compute(left: &Database, right: &Database) -> DatabaseDelta {
        let mut names: Vec<String> = left.relation_names();
        for n in right.relation_names() {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        names.sort();
        let mut relations = Vec::new();
        for name in names {
            let delta = match (left.relation(&name), right.relation(&name)) {
                (Ok(l), Ok(r)) => RelationDelta::compute(&name, l, r),
                (Ok(l), Err(_)) => {
                    RelationDelta::compute(&name, l, &Relation::empty(l.schema.clone()))
                }
                (Err(_), Ok(r)) => {
                    RelationDelta::compute(&name, &Relation::empty(r.schema.clone()), r)
                }
                (Err(_), Err(_)) => continue,
            };
            if !delta.is_empty() {
                relations.push(delta);
            }
        }
        DatabaseDelta { relations }
    }

    /// Computes the delta restricted to the given relations.
    pub fn compute_for_relations(
        left: &Database,
        right: &Database,
        relations: &[String],
    ) -> DatabaseDelta {
        let mut out = Vec::new();
        for name in relations {
            if let (Ok(l), Ok(r)) = (left.relation(name), right.relation(name)) {
                let delta = RelationDelta::compute(name, l, r);
                if !delta.is_empty() {
                    out.push(delta);
                }
            }
        }
        out.sort_by(|a, b| a.relation.cmp(&b.relation));
        DatabaseDelta { relations: out }
    }

    /// Total number of annotated tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// True when no relation differs.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The delta of a specific relation, if it differs.
    pub fn relation(&self, name: &str) -> Option<&RelationDelta> {
        self.relations.iter().find(|r| r.relation == name)
    }
}

impl fmt::Display for DatabaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "Δ = ∅");
        }
        for rel in &self.relations {
            writeln!(f, "Δ[{}]:", rel.relation)?;
            for t in &rel.tuples {
                writeln!(f, "  {}{}", t.annotation, t.tuple)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::modification::ModificationSet;
    use crate::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_expr::Value;

    #[test]
    fn delta_of_identical_databases_is_empty() {
        let db = running_example_database();
        let d = DatabaseDelta::compute(&db, &db);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.to_string().contains("∅"));
    }

    #[test]
    fn running_example_delta_matches_example_2() {
        // Δ(H(D), H[M](D)) = {−o6, +o6'}: Alex's order with fee 5 removed,
        // fee 10 added.
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute(&hd, &hmd);
        assert_eq!(delta.len(), 2);
        let order_delta = delta.relation("Order").unwrap();
        let minus = order_delta.minus_tuples();
        let plus = order_delta.plus_tuples();
        assert_eq!(minus.len(), 1);
        assert_eq!(plus.len(), 1);
        assert_eq!(minus[0].value(0), Some(&Value::int(12)));
        assert_eq!(minus[0].value(4), Some(&Value::int(5)));
        assert_eq!(plus[0].value(0), Some(&Value::int(12)));
        assert_eq!(plus[0].value(4), Some(&Value::int(10)));
    }

    #[test]
    fn delta_display_contains_annotations() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute(&hd, &hmd);
        let s = delta.to_string();
        assert!(s.contains("Δ[Order]"));
        assert!(s.contains("+"));
        assert!(s.contains("-"));
    }

    #[test]
    fn compute_for_relations_filters() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute_for_relations(&hd, &hmd, &["Order".to_string()]);
        assert_eq!(delta.len(), 2);
        let none = DatabaseDelta::compute_for_relations(&hd, &hmd, &["Other".to_string()]);
        assert!(none.is_empty());
    }

    #[test]
    fn delta_is_symmetric_up_to_annotation_swap() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let d1 = DatabaseDelta::compute(&hd, &hmd);
        let d2 = DatabaseDelta::compute(&hmd, &hd);
        assert_eq!(d1.len(), d2.len());
        let r1 = d1.relation("Order").unwrap();
        let r2 = d2.relation("Order").unwrap();
        assert_eq!(r1.plus_tuples().len(), r2.minus_tuples().len());
        assert_eq!(r1.minus_tuples().len(), r2.plus_tuples().len());
    }

    #[test]
    fn missing_relation_treated_as_empty() {
        let db = running_example_database();
        let empty = mahif_storage::Database::new();
        let d = DatabaseDelta::compute(&db, &empty);
        assert_eq!(d.len(), 4);
        assert!(d.relation("Order").unwrap().plus_tuples().is_empty());
        let d2 = DatabaseDelta::compute(&empty, &db);
        assert_eq!(d2.relation("Order").unwrap().plus_tuples().len(), 4);
    }
}
