//! Database deltas: the symmetric difference `Δ(D, D')` with `+`/`−`
//! annotations (Section 3).
//!
//! Per-relation deltas are stored behind [`Arc`] so that a batch of
//! what-if scenarios whose answers coincide (the common case in a
//! parameter sweep: most thresholds waive the same two orders) can share
//! one allocation of the common tuples — the base of a *base + diff*
//! representation. [`DeltaInterner`] performs that sharing after a batch
//! is answered; equality and display semantics are unchanged, only the
//! storage is deduplicated.

use std::fmt;
use std::sync::Arc;

use mahif_storage::{Database, Relation, SchemaRef, Tuple};

/// Whether a delta tuple appears only in the second database (`+`) or only in
/// the first (`−`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Tuple present in `D'` but not `D` (new under the hypothetical
    /// history).
    Plus,
    /// Tuple present in `D` but not `D'` (removed under the hypothetical
    /// history).
    Minus,
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Plus => write!(f, "+"),
            Annotation::Minus => write!(f, "-"),
        }
    }
}

/// A single annotated tuple of a delta.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct DeltaTuple {
    /// `+` or `−`.
    pub annotation: Annotation,
    /// The tuple.
    pub tuple: Tuple,
}

/// The delta of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDelta {
    /// Relation name.
    pub relation: String,
    /// Relation schema.
    pub schema: SchemaRef,
    /// Annotated tuples, sorted deterministically.
    pub tuples: Vec<DeltaTuple>,
}

impl RelationDelta {
    /// Computes `Δ(left, right)` for a single relation:
    /// `{+t | t ∉ left ∧ t ∈ right} ∪ {−t | t ∈ left ∧ t ∉ right}`.
    pub fn compute(relation: &str, left: &Relation, right: &Relation) -> RelationDelta {
        let minus = left.set_difference(right);
        let plus = right.set_difference(left);
        let mut tuples: Vec<DeltaTuple> = Vec::with_capacity(minus.len() + plus.len());
        for t in minus.iter() {
            tuples.push(DeltaTuple {
                annotation: Annotation::Minus,
                tuple: t.clone(),
            });
        }
        for t in plus.iter() {
            tuples.push(DeltaTuple {
                annotation: Annotation::Plus,
                tuple: t.clone(),
            });
        }
        tuples.sort_by(|a, b| {
            a.tuple
                .total_cmp(&b.tuple)
                .then_with(|| annotation_rank(a.annotation).cmp(&annotation_rank(b.annotation)))
        });
        RelationDelta {
            relation: relation.to_string(),
            schema: left.schema.clone(),
            tuples,
        }
    }

    /// Number of annotated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples annotated `+`.
    pub fn plus_tuples(&self) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|t| t.annotation == Annotation::Plus)
            .map(|t| &t.tuple)
            .collect()
    }

    /// The tuples annotated `−`.
    pub fn minus_tuples(&self) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|t| t.annotation == Annotation::Minus)
            .map(|t| &t.tuple)
            .collect()
    }
}

fn annotation_rank(a: Annotation) -> u8 {
    match a {
        Annotation::Minus => 0,
        Annotation::Plus => 1,
    }
}

/// The delta of an entire database: one [`RelationDelta`] per relation that
/// differs.
///
/// Relation deltas are reference-counted so identical answers across a
/// scenario batch can share storage (see [`DeltaInterner`]); two deltas
/// compare equal whenever their relation deltas compare equal, shared or
/// not.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatabaseDelta {
    /// Per-relation deltas (only non-empty ones are stored), sorted by
    /// relation name.
    pub relations: Vec<Arc<RelationDelta>>,
}

impl DatabaseDelta {
    /// Builds a delta from owned per-relation deltas (callers need not care
    /// about the shared representation).
    pub fn from_relations(relations: Vec<RelationDelta>) -> DatabaseDelta {
        DatabaseDelta {
            relations: relations.into_iter().map(Arc::new).collect(),
        }
    }

    /// Computes `Δ(left, right)` over all relations present in either
    /// database. Relations missing from one side are treated as empty.
    pub fn compute(left: &Database, right: &Database) -> DatabaseDelta {
        let mut names: Vec<String> = left.relation_names();
        for n in right.relation_names() {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        names.sort();
        let mut relations = Vec::new();
        for name in names {
            let delta = match (left.relation(&name), right.relation(&name)) {
                (Ok(l), Ok(r)) => RelationDelta::compute(&name, l, r),
                (Ok(l), Err(_)) => {
                    RelationDelta::compute(&name, l, &Relation::empty(l.schema.clone()))
                }
                (Err(_), Ok(r)) => {
                    RelationDelta::compute(&name, &Relation::empty(r.schema.clone()), r)
                }
                (Err(_), Err(_)) => continue,
            };
            if !delta.is_empty() {
                relations.push(delta);
            }
        }
        DatabaseDelta::from_relations(relations)
    }

    /// Computes the delta restricted to the given relations.
    pub fn compute_for_relations(
        left: &Database,
        right: &Database,
        relations: &[String],
    ) -> DatabaseDelta {
        let mut out = Vec::new();
        for name in relations {
            if let (Ok(l), Ok(r)) = (left.relation(name), right.relation(name)) {
                let delta = RelationDelta::compute(name, l, r);
                if !delta.is_empty() {
                    out.push(delta);
                }
            }
        }
        out.sort_by(|a, b| a.relation.cmp(&b.relation));
        DatabaseDelta::from_relations(out)
    }

    /// Total number of annotated tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// True when no relation differs.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The delta of a specific relation, if it differs.
    pub fn relation(&self, name: &str) -> Option<&RelationDelta> {
        self.relations
            .iter()
            .find(|r| r.relation == name)
            .map(Arc::as_ref)
    }

    /// Number of annotated tuples whose storage is shared with another
    /// [`DatabaseDelta`] (i.e. held behind an `Arc` with other references).
    /// Purely observational — used by batch statistics.
    pub fn shared_tuples(&self) -> usize {
        self.relations
            .iter()
            .filter(|r| Arc::strong_count(r) > 1)
            .map(|r| r.len())
            .sum()
    }
}

/// Interns equal relation deltas across the answers of a scenario batch so
/// the common base of a sweep is stored once ("base + per-scenario diff":
/// relation deltas equal to an earlier scenario's become shared references —
/// the base — while genuinely different relation deltas stay owned — the
/// diff).
///
/// Interning never changes what a delta *contains*: equality, iteration
/// order and display are untouched. It only collapses identical allocations,
/// which for a k-scenario sweep where most thresholds produce the same
/// answer reduces delta storage from `O(k · |Δ|)` to `O(|Δ|)`.
#[derive(Debug, Default)]
pub struct DeltaInterner {
    /// Seen relation deltas, bucketed by content hash so interning a batch
    /// stays linear in the number of distinct deltas (a full-content
    /// equality check runs only within a bucket). Held as [`Weak`]
    /// references: the interner never keeps a delta alive and never
    /// inflates `Arc::strong_count`, so [`DatabaseDelta::shared_tuples`]
    /// counts only genuine sharing between answers.
    seen: std::collections::HashMap<u64, Vec<std::sync::Weak<RelationDelta>>>,
    deduped_tuples: usize,
}

fn relation_delta_key(delta: &RelationDelta) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    delta.relation.hash(&mut hasher);
    delta.tuples.hash(&mut hasher);
    hasher.finish()
}

impl DeltaInterner {
    /// Creates an empty interner (typically one per answered batch).
    pub fn new() -> DeltaInterner {
        DeltaInterner::default()
    }

    /// Rewrites `delta` in place so every relation delta equal to one seen
    /// earlier shares that earlier allocation. Returns the number of
    /// annotated tuples deduplicated by this call.
    pub fn intern(&mut self, delta: &mut DatabaseDelta) -> usize {
        let mut deduped = 0;
        for rel in &mut delta.relations {
            let bucket = self.seen.entry(relation_delta_key(rel)).or_default();
            bucket.retain(|w| w.strong_count() > 0);
            if let Some(existing) = bucket
                .iter()
                .filter_map(std::sync::Weak::upgrade)
                .find(|s| **s == **rel)
            {
                if !Arc::ptr_eq(&existing, rel) {
                    deduped += rel.len();
                    *rel = existing;
                }
            } else {
                bucket.push(Arc::downgrade(rel));
            }
        }
        self.deduped_tuples += deduped;
        deduped
    }

    /// Total annotated tuples deduplicated over the interner's lifetime.
    pub fn deduped_tuples(&self) -> usize {
        self.deduped_tuples
    }
}

impl fmt::Display for DatabaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "Δ = ∅");
        }
        for rel in &self.relations {
            writeln!(f, "Δ[{}]:", rel.relation)?;
            for t in &rel.tuples {
                writeln!(f, "  {}{}", t.annotation, t.tuple)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::modification::ModificationSet;
    use crate::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_expr::Value;

    #[test]
    fn delta_of_identical_databases_is_empty() {
        let db = running_example_database();
        let d = DatabaseDelta::compute(&db, &db);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.to_string().contains("∅"));
    }

    #[test]
    fn running_example_delta_matches_example_2() {
        // Δ(H(D), H[M](D)) = {−o6, +o6'}: Alex's order with fee 5 removed,
        // fee 10 added.
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute(&hd, &hmd);
        assert_eq!(delta.len(), 2);
        let order_delta = delta.relation("Order").unwrap();
        let minus = order_delta.minus_tuples();
        let plus = order_delta.plus_tuples();
        assert_eq!(minus.len(), 1);
        assert_eq!(plus.len(), 1);
        assert_eq!(minus[0].value(0), Some(&Value::int(12)));
        assert_eq!(minus[0].value(4), Some(&Value::int(5)));
        assert_eq!(plus[0].value(0), Some(&Value::int(12)));
        assert_eq!(plus[0].value(4), Some(&Value::int(10)));
    }

    #[test]
    fn delta_display_contains_annotations() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute(&hd, &hmd);
        let s = delta.to_string();
        assert!(s.contains("Δ[Order]"));
        assert!(s.contains("+"));
        assert!(s.contains("-"));
    }

    #[test]
    fn compute_for_relations_filters() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let delta = DatabaseDelta::compute_for_relations(&hd, &hmd, &["Order".to_string()]);
        assert_eq!(delta.len(), 2);
        let none = DatabaseDelta::compute_for_relations(&hd, &hmd, &["Other".to_string()]);
        assert!(none.is_empty());
    }

    #[test]
    fn delta_is_symmetric_up_to_annotation_swap() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let d1 = DatabaseDelta::compute(&hd, &hmd);
        let d2 = DatabaseDelta::compute(&hmd, &hd);
        assert_eq!(d1.len(), d2.len());
        let r1 = d1.relation("Order").unwrap();
        let r2 = d2.relation("Order").unwrap();
        assert_eq!(r1.plus_tuples().len(), r2.minus_tuples().len());
        assert_eq!(r1.minus_tuples().len(), r2.plus_tuples().len());
    }

    #[test]
    fn interner_shares_equal_relation_deltas() {
        let db = running_example_database();
        let h = History::new(running_example_history());
        let m = ModificationSet::single_replace(0, running_example_u1_prime());
        let hd = h.execute(&db).unwrap();
        let hmd = m.apply(&h).unwrap().execute(&db).unwrap();
        let reference = DatabaseDelta::compute(&hd, &hmd);

        // Two scenarios with the same answer, one with a different answer.
        let mut a = DatabaseDelta::compute(&hd, &hmd);
        let mut b = DatabaseDelta::compute(&hd, &hmd);
        let mut c = DatabaseDelta::compute(&hmd, &hd);
        let mut interner = DeltaInterner::new();
        assert_eq!(interner.intern(&mut a), 0, "first answer owns its delta");
        assert_eq!(
            interner.intern(&mut b),
            reference.len(),
            "equal answer shares the base"
        );
        assert_eq!(interner.intern(&mut c), 0, "different answer stays owned");
        assert_eq!(interner.deduped_tuples(), reference.len());

        // Sharing is observable but equality semantics are unchanged.
        assert!(std::sync::Arc::ptr_eq(&a.relations[0], &b.relations[0]));
        assert_eq!(a, reference);
        assert_eq!(b, reference);
        assert_ne!(c, reference);
        assert_eq!(b.shared_tuples(), reference.len());
        // The interner holds only weak references: a delta no other answer
        // shares reports zero shared tuples even while the interner lives.
        assert_eq!(c.shared_tuples(), 0);
        // Re-interning an already shared delta dedupes nothing new.
        assert_eq!(interner.intern(&mut b), 0);
    }

    #[test]
    fn missing_relation_treated_as_empty() {
        let db = running_example_database();
        let empty = mahif_storage::Database::new();
        let d = DatabaseDelta::compute(&db, &empty);
        assert_eq!(d.len(), 4);
        assert!(d.relation("Order").unwrap().plus_tuples().is_empty());
        let d2 = DatabaseDelta::compute(&empty, &db);
        assert_eq!(d2.relation("Order").unwrap().plus_tuples().len(), 4);
    }
}
