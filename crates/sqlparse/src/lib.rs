//! # mahif-sqlparse
//!
//! A small, hand-written parser for the SQL subset in which transactional
//! histories and insert queries are expressed in the paper (Figure 2 and
//! Section 2): `UPDATE ... SET ... WHERE ...`, `DELETE FROM ... WHERE ...`,
//! `INSERT INTO ... VALUES (...)`, `INSERT INTO ... SELECT ...` and simple
//! `SELECT ... FROM ... WHERE ...` queries.
//!
//! The parser exists so that examples, tests and workloads can state
//! histories as SQL text instead of building ASTs by hand:
//!
//! ```
//! use mahif_sqlparse::parse_history;
//!
//! let history = parse_history(
//!     "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
//!      UPDATE Orders SET ShippingFee = ShippingFee + 5
//!        WHERE Country = 'UK' AND Price <= 100;",
//! )
//! .unwrap();
//! assert_eq!(history.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod lexer;
pub mod parser;

pub use error::ParseError;
pub use lexer::{tokenize, Token};
pub use parser::{
    parse_condition, parse_expression, parse_history, parse_select, parse_statement, parse_whatif,
};
