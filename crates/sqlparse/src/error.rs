//! Parse errors.

use std::fmt;

/// A syntax error with a human-readable message and the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (best effort).
    pub position: usize,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ParseError::new("unexpected token", 7);
        assert!(e.to_string().contains("offset 7"));
        assert!(e.to_string().contains("unexpected token"));
    }
}
