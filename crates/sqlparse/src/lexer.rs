//! Tokenizer for the SQL subset.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keyword or identifier (identifiers keep their original case, keywords
    /// are matched case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (single quotes, `''` escapes a quote).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Splits `input` into tokens, returning `(token, byte offset)` pairs.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, i));
                i += 1;
            }
            ';' => {
                tokens.push((Token::Semicolon, i));
                i += 1;
            }
            '+' => {
                tokens.push((Token::Plus, i));
                i += 1;
            }
            '-' => {
                tokens.push((Token::Minus, i));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, i));
                i += 1;
            }
            '/' => {
                tokens.push((Token::Slash, i));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Eq, i));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push((Token::Neq, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected `!`", i));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push((Token::Le, i));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push((Token::Neq, i));
                    i += 2;
                } else {
                    tokens.push((Token::Lt, i));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push((Token::Ge, i));
                    i += 2;
                } else {
                    tokens.push((Token::Gt, i));
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push((Token::Str(s), start));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid integer `{text}`"), start))?;
                tokens.push((Token::Int(value), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    i,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_numbers_strings() {
        assert_eq!(
            toks("UPDATE Orders SET Fee = 0"),
            vec![
                Token::Ident("UPDATE".into()),
                Token::Ident("Orders".into()),
                Token::Ident("SET".into()),
                Token::Ident("Fee".into()),
                Token::Eq,
                Token::Int(0)
            ]
        );
        assert_eq!(
            toks("'UK' 'O''Brien'"),
            vec![Token::Str("UK".into()), Token::Str("O'Brien".into())]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= <> != < > = + - * / ( ) , ;"),
            vec![
                Token::Le,
                Token::Ge,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Semicolon
            ]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(
            toks("SELECT -- a comment\n 1"),
            vec![Token::Ident("SELECT".into()), Token::Int(1)]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = Token::Ident("where".into());
        assert!(t.is_keyword("WHERE"));
        assert!(!t.is_keyword("SET"));
        assert!(!Token::Int(1).is_keyword("WHERE"));
    }
}
