//! Recursive-descent parser for statements, queries and expressions.

use std::sync::Arc;

use mahif_expr::{ArithOp, CmpOp, Expr, Value};
use mahif_history::{History, SetClause, Statement};
use mahif_query::{ProjectItem, Query};
use mahif_storage::{Schema, Tuple};

use crate::error::ParseError;
use crate::lexer::{tokenize, Token};

/// Parses a semicolon-separated sequence of statements into a [`History`].
pub fn parse_history(input: &str) -> Result<History, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let mut statements = Vec::new();
    while !parser.at_end() {
        statements.push(parser.statement()?);
        // Optional trailing semicolons.
        while parser.eat_token(&Token::Semicolon) {}
    }
    Ok(History::new(statements))
}

/// Parses a single statement (`UPDATE`, `DELETE`, `INSERT`).
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let stmt = parser.statement()?;
    while parser.eat_token(&Token::Semicolon) {}
    parser.expect_end()?;
    Ok(stmt)
}

/// Parses a `SELECT` query.
pub fn parse_select(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let q = parser.select()?;
    while parser.eat_token(&Token::Semicolon) {}
    parser.expect_end()?;
    Ok(q)
}

/// Parses a *what-if script*: a semicolon-separated list of hypothetical
/// changes to a transactional history, producing the corresponding
/// [`mahif_history::ModificationSet`].
///
/// Statement numbers are 1-based (statement 1 is the first statement of the
/// registered history). Three forms are supported:
///
/// ```text
/// REPLACE STATEMENT <n> WITH <statement>;
/// DROP STATEMENT <n>;
/// INSERT STATEMENT AT <n> <statement>;
/// ```
///
/// ```
/// use mahif_sqlparse::parse_whatif;
/// let m = parse_whatif(
///     "REPLACE STATEMENT 1 WITH UPDATE Orders SET Fee = 0 WHERE Price >= 60;
///      DROP STATEMENT 3;",
/// )
/// .unwrap();
/// assert_eq!(m.len(), 2);
/// ```
pub fn parse_whatif(input: &str) -> Result<mahif_history::ModificationSet, ParseError> {
    use mahif_history::Modification;
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let mut modifications = Vec::new();
    while !parser.at_end() {
        if parser.eat_keyword("REPLACE") {
            parser.expect_keyword("STATEMENT")?;
            let position = parser.statement_number()?;
            parser.expect_keyword("WITH")?;
            let stmt = parser.statement()?;
            modifications.push(Modification::replace(position, stmt));
        } else if parser.eat_keyword("DROP") {
            parser.expect_keyword("STATEMENT")?;
            let position = parser.statement_number()?;
            modifications.push(Modification::delete(position));
        } else if parser.eat_keyword("INSERT") && parser.eat_keyword("STATEMENT") {
            parser.expect_keyword("AT")?;
            let position = parser.statement_number()?;
            let stmt = parser.statement()?;
            modifications.push(Modification::insert(position, stmt));
        } else {
            return Err(ParseError::new(
                "expected `REPLACE STATEMENT`, `DROP STATEMENT` or `INSERT STATEMENT AT` in what-if script",
                0,
            ));
        }
        while parser.eat_token(&Token::Semicolon) {}
    }
    Ok(mahif_history::ModificationSet::new(modifications))
}

/// Parses a scalar expression.
pub fn parse_expression(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let e = parser.expression()?;
    parser.expect_end()?;
    Ok(e)
}

/// Parses a condition (boolean expression).
pub fn parse_condition(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    let e = parser.condition()?;
    parser.expect_end()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn new(tokens: Vec<(Token, usize)>, input_len: usize) -> Self {
        Parser {
            tokens,
            pos: 0,
            input_len,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(self.input_len)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.offset())
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn eat_token(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn expect_token(&mut self, token: Token, what: &str) -> Result<(), ParseError> {
        if self.eat_token(&token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn identifier(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    /// Reads a 1-based statement number (what-if scripts) and converts it to
    /// the 0-based history position.
    fn statement_number(&mut self) -> Result<usize, ParseError> {
        match self.next() {
            Some(Token::Int(n)) if n >= 1 => Ok((n - 1) as usize),
            Some(Token::Int(_)) => Err(self.error("statement numbers are 1-based")),
            _ => Err(self.error("expected a statement number")),
        }
    }

    // ----- statements -------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("UPDATE") {
            return self.update_statement();
        }
        if self.eat_keyword("DELETE") {
            return self.delete_statement();
        }
        if self.eat_keyword("INSERT") {
            return self.insert_statement();
        }
        Err(self.error("expected UPDATE, DELETE or INSERT"))
    }

    fn update_statement(&mut self) -> Result<Statement, ParseError> {
        let relation = self.identifier("relation name")?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let attr = self.identifier("attribute name")?;
            self.expect_token(Token::Eq, "`=`")?;
            let expr = self.expression()?;
            assignments.push((attr, expr));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let cond = if self.eat_keyword("WHERE") {
            self.condition()?
        } else {
            Expr::true_()
        };
        Ok(Statement::update(
            relation,
            SetClause::new(assignments),
            cond,
        ))
    }

    fn delete_statement(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("FROM")?;
        let relation = self.identifier("relation name")?;
        let cond = if self.eat_keyword("WHERE") {
            self.condition()?
        } else {
            Expr::true_()
        };
        Ok(Statement::delete(relation, cond))
    }

    fn insert_statement(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INTO")?;
        let relation = self.identifier("relation name")?;
        if self.eat_keyword("VALUES") {
            self.expect_token(Token::LParen, "`(`")?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal_value()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(Token::RParen, "`)`")?;
            return Ok(Statement::insert_values(relation, Tuple::new(values)));
        }
        if self.peek().is_some_and(|t| t.is_keyword("SELECT")) {
            let query = self.select()?;
            return Ok(Statement::insert_query(relation, query));
        }
        Err(self.error("expected VALUES or SELECT"))
    }

    fn literal_value(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(i)) => Ok(Value::Int(-i)),
                _ => Err(self.error("expected integer after `-`")),
            },
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            _ => Err(self.error("expected literal value")),
        }
    }

    // ----- queries ----------------------------------------------------

    fn select(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        // Projection list: `*` or expr [AS name], ...
        let star = self.eat_token(&Token::Star);
        let mut items: Vec<(Expr, Option<String>)> = Vec::new();
        if !star {
            loop {
                let expr = self.expression()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.identifier("alias")?)
                } else {
                    None
                };
                items.push((expr, alias));
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let relation = self.identifier("relation name")?;
        let mut query = Query::scan(&relation);
        if self.eat_keyword("WHERE") {
            let cond = self.condition()?;
            query = Query::select(cond, query);
        }
        if !star {
            let project_items = items
                .into_iter()
                .enumerate()
                .map(|(i, (expr, alias))| {
                    let name = alias.unwrap_or_else(|| match &expr {
                        Expr::Attr(a) => a.clone(),
                        _ => format!("col{}", i + 1),
                    });
                    ProjectItem::new(expr, name)
                })
                .collect();
            query = Query::project(project_items, query);
        }
        Ok(query)
    }

    // ----- expressions --------------------------------------------------
    //
    // condition  := and_cond (OR and_cond)*
    // and_cond   := not_cond (AND not_cond)*
    // not_cond   := NOT not_cond | predicate
    // predicate  := expression ((=|<>|<|<=|>|>=) expression | IS [NOT] NULL)?
    // expression := term ((+|-) term)*
    // term       := factor ((*|/) factor)*
    // factor     := literal | identifier | ( condition ) | - factor
    //               | CASE WHEN condition THEN expression ELSE expression END

    fn condition(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_condition()?;
        while self.eat_keyword("OR") {
            let right = self.and_condition()?;
            left = Expr::Or(Arc::new(left), Arc::new(right));
        }
        Ok(left)
    }

    fn and_condition(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_condition()?;
        while self.eat_keyword("AND") {
            let right = self.not_condition()?;
            left = Expr::And(Arc::new(left), Arc::new(right));
        }
        Ok(left)
    }

    fn not_condition(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_condition()?;
            return Ok(Expr::Not(Arc::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.expression()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let test = Expr::IsNull(Arc::new(left));
            return Ok(if negated {
                Expr::Not(Arc::new(test))
            } else {
                test
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Neq) => Some(CmpOp::Neq),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.expression()?;
                Ok(Expr::Cmp {
                    op,
                    left: Arc::new(left),
                    right: Arc::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.term()?;
            left = Expr::Arith {
                op,
                left: Arc::new(left),
                right: Arc::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = Expr::Arith {
                op,
                left: Arc::new(left),
                right: Arc::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Int(i)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.factor()?;
                Ok(Expr::Arith {
                    op: ArithOp::Sub,
                    left: Arc::new(Expr::Const(Value::Int(0))),
                    right: Arc::new(inner),
                })
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.condition()?;
                self.expect_token(Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Const(Value::Null))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => {
                self.pos += 1;
                Ok(Expr::true_())
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => {
                self.pos += 1;
                Ok(Expr::false_())
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("CASE") => {
                self.pos += 1;
                self.expect_keyword("WHEN")?;
                let cond = self.condition()?;
                self.expect_keyword("THEN")?;
                let then_branch = self.expression()?;
                self.expect_keyword("ELSE")?;
                let else_branch = self.expression()?;
                self.expect_keyword("END")?;
                Ok(Expr::IfThenElse {
                    cond: Arc::new(cond),
                    then_branch: Arc::new(then_branch),
                    else_branch: Arc::new(else_branch),
                })
            }
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(Expr::Attr(s))
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

/// Convenience: the schema-aware tuple constructor used by examples — builds
/// a tuple for `schema` from SQL literal text like `(11, 'Susan', 'UK', 20, 5)`.
pub fn parse_tuple(schema: &Schema, input: &str) -> Result<Tuple, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens, input.len());
    parser.expect_token(Token::LParen, "`(`")?;
    let mut values = Vec::new();
    loop {
        values.push(parser.literal_value()?);
        if !parser.eat_token(&Token::Comma) {
            break;
        }
    }
    parser.expect_token(Token::RParen, "`)`")?;
    parser.expect_end()?;
    if values.len() != schema.arity() {
        return Err(ParseError::new(
            format!(
                "tuple has {} values but schema `{}` has arity {}",
                values.len(),
                schema.relation,
                schema.arity()
            ),
            0,
        ));
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_history::statement::{running_example_database, running_example_history};
    use mahif_query::evaluate;

    #[test]
    fn parse_running_example_history() {
        let sql = "
            UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
            UPDATE Orders SET ShippingFee = ShippingFee + 5
              WHERE Country = 'UK' AND Price <= 100;
            UPDATE Orders SET ShippingFee = ShippingFee - 2
              WHERE Price <= 30 AND ShippingFee >= 10;
        ";
        let history = parse_history(sql).unwrap();
        assert_eq!(history.len(), 3);
        // Semantically identical to the hand-built running example (modulo
        // the relation name used in the SQL text).
        let expected = running_example_history();
        if let (
            Statement::Update { cond, .. },
            Statement::Update {
                cond: expected_cond,
                ..
            },
        ) = (&history.statements()[0], &expected[0])
        {
            assert_eq!(cond, expected_cond);
        } else {
            panic!("expected updates");
        }
    }

    #[test]
    fn parsed_history_executes_like_hand_built_one() {
        let sql = "
            UPDATE Order SET ShippingFee = 0 WHERE Price >= 50;
            UPDATE Order SET ShippingFee = ShippingFee + 5
              WHERE Country = 'UK' AND Price <= 100;
            UPDATE Order SET ShippingFee = ShippingFee - 2
              WHERE Price <= 30 AND ShippingFee >= 10;
        ";
        let parsed = parse_history(sql).unwrap();
        let db = running_example_database();
        let from_sql = parsed.execute(&db).unwrap();
        let from_api = History::new(running_example_history())
            .execute(&db)
            .unwrap();
        assert!(from_sql.set_eq(&from_api));
    }

    #[test]
    fn parse_update_without_where() {
        let stmt = parse_statement("UPDATE R SET A = A + 1").unwrap();
        match stmt {
            Statement::Update { cond, .. } => assert!(cond.is_true()),
            _ => panic!("expected update"),
        }
    }

    #[test]
    fn parse_delete() {
        let stmt = parse_statement("DELETE FROM Orders WHERE Price >= 50").unwrap();
        assert_eq!(
            stmt,
            Statement::delete("Orders", ge(attr("Price"), lit(50)))
        );
    }

    #[test]
    fn parse_insert_values() {
        let stmt =
            parse_statement("INSERT INTO Orders VALUES (15, 'Eve', 'UK', -10, NULL)").unwrap();
        match stmt {
            Statement::InsertValues { relation, tuple } => {
                assert_eq!(relation, "Orders");
                assert_eq!(tuple.arity(), 5);
                assert_eq!(tuple.value(3), Some(&Value::Int(-10)));
                assert_eq!(tuple.value(4), Some(&Value::Null));
            }
            _ => panic!("expected insert"),
        }
    }

    #[test]
    fn parse_insert_select_and_evaluate() {
        let stmt = parse_statement(
            "INSERT INTO Order SELECT ID + 100 AS ID, Customer, Country, Price, ShippingFee \
             FROM Order WHERE Country = 'UK'",
        )
        .unwrap();
        let db = running_example_database();
        let after = stmt.apply(&db).unwrap();
        assert_eq!(after.relation("Order").unwrap().len(), 6);
    }

    #[test]
    fn parse_select_star_and_projection() {
        let db = running_example_database();
        let q = parse_select("SELECT * FROM Order WHERE Price >= 50").unwrap();
        assert_eq!(evaluate(&q, &db).unwrap().len(), 2);
        let q = parse_select("SELECT ID, Price + ShippingFee AS Total FROM Order").unwrap();
        let r = evaluate(&q, &db).unwrap();
        assert_eq!(r.schema.attribute_names(), vec!["ID", "Total"]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(simplified_int(&e), 7);
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert_eq!(simplified_int(&e), 9);
        let e = parse_expression("10 - 2 - 3").unwrap();
        assert_eq!(simplified_int(&e), 5);
        let e = parse_expression("-4 + 10").unwrap();
        assert_eq!(simplified_int(&e), 6);
    }

    fn simplified_int(e: &Expr) -> i64 {
        match mahif_expr::simplify(e) {
            Expr::Const(Value::Int(i)) => i,
            other => panic!("expected constant, got {other}"),
        }
    }

    #[test]
    fn condition_precedence_and_not() {
        // AND binds tighter than OR.
        let c = parse_condition("A = 1 OR B = 2 AND C = 3").unwrap();
        assert!(matches!(c, Expr::Or(..)));
        let c = parse_condition("NOT A = 1 AND B = 2").unwrap();
        assert!(matches!(c, Expr::And(..)));
        let c = parse_condition("A IS NULL OR B IS NOT NULL").unwrap();
        assert!(matches!(c, Expr::Or(..)));
    }

    #[test]
    fn case_when_parses_to_if_then_else() {
        let e = parse_expression("CASE WHEN Price >= 50 THEN 0 ELSE ShippingFee END").unwrap();
        assert!(matches!(e, Expr::IfThenElse { .. }));
    }

    #[test]
    fn parse_tuple_checks_arity() {
        let schema = Schema::new(
            "R",
            vec![
                mahif_storage::Attribute::int("A"),
                mahif_storage::Attribute::str("B"),
            ],
        );
        let t = parse_tuple(&schema, "(1, 'x')").unwrap();
        assert_eq!(t.arity(), 2);
        assert!(parse_tuple(&schema, "(1)").is_err());
        assert!(parse_tuple(&schema, "(1, 'x', 3)").is_err());
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_statement("SELECT * FROM R").is_err());
        assert!(parse_statement("UPDATE R").is_err());
        assert!(parse_statement("UPDATE R SET").is_err());
        assert!(parse_statement("DELETE R WHERE A = 1").is_err());
        assert!(parse_statement("INSERT INTO R (1, 2)").is_err());
        assert!(parse_condition("A = ").is_err());
        assert!(parse_expression("1 + ").is_err());
        assert!(parse_expression("(1 + 2").is_err());
        assert!(parse_condition("A = 1 extra").is_err());
    }
}
