//! # mahif-provenance
//!
//! Lineage tracking for transactional histories and *explanations* of
//! historical what-if answers.
//!
//! Reenactment was originally developed to capture the provenance of
//! transactional workloads (the MV-semiring line of work the paper builds
//! on). This crate provides the tuple-level counterpart for Mahif-rs:
//!
//! * [`trace_history`] replays a history tuple-at-a-time and records, for
//!   every tuple of a relation, which statements affected it, where it was
//!   inserted (if it was), where it was deleted (if it was), and its final
//!   value — its *lineage*;
//! * [`explain_answer`] takes the delta of a historical what-if query and
//!   maps every annotated tuple back to the input tuple it derives from, the
//!   statements that touched it under the original and the hypothetical
//!   history, and the first position at which the two runs diverge.
//!
//! Explanations answer the follow-up question every what-if result raises:
//! *why* is this tuple different under the hypothetical history?

#![forbid(unsafe_code)]

pub mod error;
pub mod explain;
pub mod trace;

pub use error::ProvenanceError;
pub use explain::{explain_answer, explain_delta, DeltaExplanation};
pub use trace::{trace_history, RelationTrace, TupleSource, TupleTrace};
