//! Tuple-level lineage of a transactional history.

use std::fmt;

use mahif_expr::eval_condition;
use mahif_history::{History, Statement};
use mahif_query::evaluate;
use mahif_storage::{Database, SchemaRef, Tuple, TupleBindings};

use crate::error::ProvenanceError;

/// Where a traced tuple came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleSource {
    /// The tuple was already present in the database before the history.
    Base,
    /// The tuple was contributed by the `INSERT ... VALUES` statement at the
    /// given history position.
    InsertedValues {
        /// 0-based statement position.
        position: usize,
    },
    /// The tuple was contributed by the `INSERT ... SELECT` statement at the
    /// given history position.
    InsertedQuery {
        /// 0-based statement position.
        position: usize,
    },
}

impl fmt::Display for TupleSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleSource::Base => write!(f, "base relation"),
            TupleSource::InsertedValues { position } => {
                write!(f, "inserted by statement {position}")
            }
            TupleSource::InsertedQuery { position } => {
                write!(f, "inserted by INSERT..SELECT at statement {position}")
            }
        }
    }
}

/// The lineage of a single tuple through a history.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleTrace {
    /// Where the tuple came from.
    pub source: TupleSource,
    /// The tuple's value when it entered the relation (base value or
    /// inserted value).
    pub initial: Tuple,
    /// Positions of the statements whose condition the tuple satisfied (i.e.
    /// the statements that affected it), in history order.
    pub affecting: Vec<usize>,
    /// Position of the delete statement that removed the tuple, if any.
    pub deleted_at: Option<usize>,
    /// The tuple's value after the history, or `None` when it was deleted.
    pub final_tuple: Option<Tuple>,
}

impl TupleTrace {
    /// True when the tuple survives the history.
    pub fn survives(&self) -> bool {
        self.final_tuple.is_some()
    }

    /// True when at least one statement affected the tuple.
    pub fn was_affected(&self) -> bool {
        !self.affecting.is_empty()
    }
}

/// The lineage of every tuple of one relation through a history.
#[derive(Debug, Clone)]
pub struct RelationTrace {
    /// The traced relation.
    pub relation: String,
    /// Its schema.
    pub schema: SchemaRef,
    /// One trace per tuple (base tuples first, then inserted tuples in
    /// insertion order).
    pub traces: Vec<TupleTrace>,
}

impl RelationTrace {
    /// Traces whose final tuple equals `tuple` (there may be several under
    /// bag semantics).
    pub fn traces_producing(&self, tuple: &Tuple) -> Vec<&TupleTrace> {
        self.traces
            .iter()
            .filter(|t| t.final_tuple.as_ref() == Some(tuple))
            .collect()
    }

    /// Traces of tuples that were deleted by the history.
    pub fn deleted(&self) -> Vec<&TupleTrace> {
        self.traces.iter().filter(|t| !t.survives()).collect()
    }

    /// Number of traced tuples.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

/// Replays `history` over `db` and records the lineage of every tuple of
/// `relation`.
///
/// Statements over other relations are still executed (they may feed
/// `INSERT ... SELECT` statements into `relation`), but only tuples of
/// `relation` are traced.
pub fn trace_history(
    history: &History,
    db: &Database,
    relation: &str,
) -> Result<RelationTrace, ProvenanceError> {
    let rel = db.relation(relation)?;
    let schema = rel.schema.clone();
    let mut traces: Vec<TupleTrace> = rel
        .iter()
        .map(|t| TupleTrace {
            source: TupleSource::Base,
            initial: t.clone(),
            affecting: Vec::new(),
            deleted_at: None,
            final_tuple: Some(t.clone()),
        })
        .collect();

    // A working copy of the whole database is maintained so that
    // `INSERT ... SELECT` sources see the state at the time of the insert.
    let mut working = db.clone();

    for (pos, stmt) in history.statements().iter().enumerate() {
        if stmt.relation() == relation {
            match stmt {
                Statement::Update { cond, .. } | Statement::Delete { cond, .. } => {
                    for trace in traces.iter_mut() {
                        let Some(current) = trace.final_tuple.clone() else {
                            continue;
                        };
                        let bind = TupleBindings::new(&schema, &current);
                        let fires = eval_condition(cond, &bind).unwrap_or(false);
                        if !fires {
                            continue;
                        }
                        trace.affecting.push(pos);
                        match stmt.apply_to_tuple(&schema, &current)? {
                            Some(next) => trace.final_tuple = Some(next),
                            None => {
                                trace.final_tuple = None;
                                trace.deleted_at = Some(pos);
                            }
                        }
                    }
                }
                Statement::InsertValues { tuple, .. } => {
                    traces.push(TupleTrace {
                        source: TupleSource::InsertedValues { position: pos },
                        initial: tuple.clone(),
                        affecting: Vec::new(),
                        deleted_at: None,
                        final_tuple: Some(tuple.clone()),
                    });
                }
                Statement::InsertQuery { query, .. } => {
                    let result = evaluate(query, &working)?;
                    for t in result.iter() {
                        traces.push(TupleTrace {
                            source: TupleSource::InsertedQuery { position: pos },
                            initial: t.clone(),
                            affecting: Vec::new(),
                            deleted_at: None,
                            final_tuple: Some(t.clone()),
                        });
                    }
                }
            }
        }
        working = stmt.apply(&working)?;
    }

    Ok(RelationTrace {
        relation: relation.to_string(),
        schema,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Value;
    use mahif_history::statement::{running_example_database, running_example_history};
    use mahif_history::SetClause;
    use mahif_query::Query;

    fn trace_running_example() -> RelationTrace {
        let db = running_example_database();
        let history = History::new(running_example_history());
        trace_history(&history, &db, "Order").unwrap()
    }

    #[test]
    fn base_tuples_are_traced_with_affecting_statements() {
        let trace = trace_running_example();
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        // Susan (ID 11, UK, 20): u2 (the UK surcharge) raises her fee to 10,
        // which then qualifies for u3's discount — final fee 8 (Figure 3).
        let susan = &trace.traces[0];
        assert_eq!(susan.source, TupleSource::Base);
        assert_eq!(susan.affecting, vec![1, 2]);
        assert!(susan.survives());
        assert_eq!(
            susan.final_tuple.as_ref().unwrap().value(4),
            Some(&Value::int(8))
        );
        // Alex (ID 12, UK, 50): u1 waives the fee, u2 adds 5.
        let alex = &trace.traces[1];
        assert_eq!(alex.affecting, vec![0, 1]);
        assert!(alex.was_affected());
        assert_eq!(
            alex.final_tuple.as_ref().unwrap().value(4),
            Some(&Value::int(5))
        );
        // Mark (ID 14, US, 30): nothing fires.
        let mark = &trace.traces[3];
        assert!(!mark.was_affected());
        assert_eq!(mark.final_tuple.as_ref(), Some(&mark.initial));
    }

    #[test]
    fn traces_producing_finds_final_tuples() {
        let trace = trace_running_example();
        let jack_final = Tuple::new(vec![
            Value::int(13),
            Value::str("Jack"),
            Value::str("US"),
            Value::int(60),
            Value::int(0),
        ]);
        let producers = trace.traces_producing(&jack_final);
        assert_eq!(producers.len(), 1);
        assert_eq!(producers[0].initial.value(4), Some(&Value::int(3)));
        assert!(trace
            .traces_producing(&Tuple::new(vec![Value::int(999)]))
            .is_empty());
    }

    #[test]
    fn deletes_record_the_deleting_statement() {
        let db = running_example_database();
        let mut statements = running_example_history();
        statements.push(Statement::delete("Order", ge(attr("Price"), lit(60))));
        let trace = trace_history(&History::new(statements), &db, "Order").unwrap();
        let deleted = trace.deleted();
        assert_eq!(deleted.len(), 1);
        assert_eq!(deleted[0].initial.value(0), Some(&Value::int(13)));
        assert_eq!(deleted[0].deleted_at, Some(3));
        assert!(!deleted[0].survives());
    }

    #[test]
    fn inserted_values_tuples_flow_through_later_statements() {
        let db = running_example_database();
        let mut statements = running_example_history();
        statements.insert(
            0,
            Statement::insert_values(
                "Order",
                Tuple::new(vec![
                    Value::int(15),
                    Value::str("Eve"),
                    Value::str("UK"),
                    Value::int(70),
                    Value::int(9),
                ]),
            ),
        );
        let trace = trace_history(&History::new(statements), &db, "Order").unwrap();
        assert_eq!(trace.len(), 5);
        let eve = trace
            .traces
            .iter()
            .find(|t| t.source == TupleSource::InsertedValues { position: 0 })
            .unwrap();
        // u1 (now at position 1) waives Eve's fee, u2 (position 2) adds 5.
        assert_eq!(eve.affecting, vec![1, 2]);
        assert_eq!(
            eve.final_tuple.as_ref().unwrap().value(4),
            Some(&Value::int(5))
        );
    }

    #[test]
    fn insert_select_sources_see_the_state_at_insert_time() {
        let db = running_example_database();
        let history = History::new(vec![
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(0)),
                ge(attr("Price"), lit(50)),
            ),
            Statement::insert_query(
                "Order",
                Query::project(
                    vec![
                        mahif_query::ProjectItem::new(add(attr("ID"), lit(100)), "ID"),
                        mahif_query::ProjectItem::identity("Customer"),
                        mahif_query::ProjectItem::identity("Country"),
                        mahif_query::ProjectItem::identity("Price"),
                        mahif_query::ProjectItem::identity("ShippingFee"),
                    ],
                    Query::select(eq(attr("Country"), slit("UK")), Query::scan("Order")),
                ),
            ),
        ]);
        let trace = trace_history(&history, &db, "Order").unwrap();
        // Two archived UK orders; Alex's archived copy must carry the waived
        // fee (0), not the original 5.
        let archived: Vec<&TupleTrace> = trace
            .traces
            .iter()
            .filter(|t| matches!(t.source, TupleSource::InsertedQuery { .. }))
            .collect();
        assert_eq!(archived.len(), 2);
        let alex_archive = archived
            .iter()
            .find(|t| t.initial.value(0) == Some(&Value::int(112)))
            .unwrap();
        assert_eq!(alex_archive.initial.value(4), Some(&Value::int(0)));
    }

    #[test]
    fn statements_on_other_relations_are_ignored_for_tracing() {
        use mahif_storage::{Attribute, Relation, Schema};
        let mut db = running_example_database();
        let s = Schema::shared("Customer", vec![Attribute::int("CID")]);
        let mut rel = Relation::empty(s);
        rel.insert_values([1i64]).unwrap();
        db.add_relation(rel).unwrap();
        let mut statements = running_example_history();
        statements.push(Statement::update(
            "Customer",
            SetClause::single("CID", add(attr("CID"), lit(1))),
            mahif_expr::Expr::true_(),
        ));
        let trace = trace_history(&History::new(statements), &db, "Order").unwrap();
        assert_eq!(trace.len(), 4);
        assert!(trace.traces.iter().all(|t| !t.affecting.contains(&3)));
    }

    #[test]
    fn source_display() {
        assert_eq!(TupleSource::Base.to_string(), "base relation");
        assert!(TupleSource::InsertedValues { position: 2 }
            .to_string()
            .contains("statement 2"));
        assert!(TupleSource::InsertedQuery { position: 3 }
            .to_string()
            .contains("INSERT..SELECT"));
    }
}
