//! Provenance-layer errors.

use std::fmt;

use mahif_history::HistoryError;
use mahif_query::QueryError;
use mahif_storage::StorageError;

/// Errors raised while tracing histories or explaining deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvenanceError {
    /// Underlying history error.
    History(HistoryError),
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query error (evaluating an `INSERT ... SELECT` source).
    Query(QueryError),
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::History(e) => write!(f, "history error: {e}"),
            ProvenanceError::Storage(e) => write!(f, "storage error: {e}"),
            ProvenanceError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for ProvenanceError {}

impl From<HistoryError> for ProvenanceError {
    fn from(e: HistoryError) -> Self {
        ProvenanceError::History(e)
    }
}

impl From<StorageError> for ProvenanceError {
    fn from(e: StorageError) -> Self {
        ProvenanceError::Storage(e)
    }
}

impl From<QueryError> for ProvenanceError {
    fn from(e: QueryError) -> Self {
        ProvenanceError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: ProvenanceError = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: ProvenanceError = HistoryError::PositionOutOfBounds {
            position: 9,
            length: 1,
        }
        .into();
        assert!(e.to_string().contains("history error"));
    }
}
