//! Explanations of what-if answers: mapping delta tuples back to their
//! lineage under the original and the hypothetical history.

use std::fmt;

use mahif_history::{Annotation, DatabaseDelta, History, ModificationSet};
use mahif_storage::{Database, Tuple};

use crate::error::ProvenanceError;
use crate::trace::{trace_history, TupleSource, TupleTrace};

/// Why one annotated tuple appears in the answer of a historical what-if
/// query.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaExplanation {
    /// The relation the tuple belongs to.
    pub relation: String,
    /// `+` (exists only under the hypothetical history) or `−` (exists only
    /// under the actual history).
    pub annotation: Annotation,
    /// The annotated tuple itself.
    pub tuple: Tuple,
    /// Where the tuple originated (base relation or an insert statement).
    pub source: TupleSource,
    /// The input tuple the annotated tuple derives from.
    pub input: Tuple,
    /// Lineage of that input tuple under the original history.
    pub original: TupleTrace,
    /// Lineage of that input tuple under the hypothetical history.
    pub modified: TupleTrace,
    /// The first (normalized) history position at which the two lineages
    /// diverge: the earliest statement that treated the tuple differently.
    pub divergence: Option<usize>,
}

impl fmt::Display for DeltaExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}{} in {} (from {}, input {})",
            self.annotation, self.tuple, self.relation, self.source, self.input
        )?;
        writeln!(
            f,
            "  original history : affected by statements {:?}{}",
            self.original.affecting,
            self.original
                .deleted_at
                .map(|p| format!(", deleted at {p}"))
                .unwrap_or_default()
        )?;
        writeln!(
            f,
            "  what-if history  : affected by statements {:?}{}",
            self.modified.affecting,
            self.modified
                .deleted_at
                .map(|p| format!(", deleted at {p}"))
                .unwrap_or_default()
        )?;
        match self.divergence {
            Some(p) => writeln!(f, "  first divergence at statement {p}"),
            None => writeln!(f, "  no single divergence point (inserted tuple)"),
        }
    }
}

/// Explains every annotated tuple of `delta` for the historical what-if query
/// defined by `history`, `modifications` and the pre-history state `db`.
///
/// This is a convenience wrapper around [`explain_delta`] that derives the
/// normalized original/modified histories itself.
pub fn explain_answer(
    history: &History,
    modifications: &ModificationSet,
    db: &Database,
    delta: &DatabaseDelta,
) -> Result<Vec<DeltaExplanation>, ProvenanceError> {
    let (original, modified, _) = modifications.normalize(history)?;
    explain_delta(&original, &modified, db, delta)
}

/// Explains every annotated tuple of `delta` given the (normalized) original
/// and modified histories.
pub fn explain_delta(
    original: &History,
    modified: &History,
    db: &Database,
    delta: &DatabaseDelta,
) -> Result<Vec<DeltaExplanation>, ProvenanceError> {
    let mut out = Vec::new();
    for rel_delta in &delta.relations {
        let original_trace = trace_history(original, db, &rel_delta.relation)?;
        let modified_trace = trace_history(modified, db, &rel_delta.relation)?;
        for dt in &rel_delta.tuples {
            // The side the tuple exists on determines which trace produced it.
            let (own, other) = match dt.annotation {
                Annotation::Minus => (&original_trace, &modified_trace),
                Annotation::Plus => (&modified_trace, &original_trace),
            };
            let Some(producer) = own.traces_producing(&dt.tuple).into_iter().next() else {
                continue;
            };
            // Find the same input tuple's lineage under the other history:
            // match on source and initial value.
            let counterpart = other
                .traces
                .iter()
                .find(|t| t.source == producer.source && t.initial == producer.initial)
                .cloned()
                .unwrap_or_else(|| TupleTrace {
                    source: producer.source,
                    initial: producer.initial.clone(),
                    affecting: Vec::new(),
                    deleted_at: None,
                    final_tuple: None,
                });
            let (original_lineage, modified_lineage) = match dt.annotation {
                Annotation::Minus => (producer.clone(), counterpart),
                Annotation::Plus => (counterpart, producer.clone()),
            };
            let divergence = first_divergence(&original_lineage, &modified_lineage);
            out.push(DeltaExplanation {
                relation: rel_delta.relation.clone(),
                annotation: dt.annotation,
                tuple: dt.tuple.clone(),
                source: producer.source,
                input: producer.initial.clone(),
                original: original_lineage,
                modified: modified_lineage,
                divergence,
            });
        }
    }
    Ok(out)
}

/// The first history position at which two lineages of the same input tuple
/// differ (one affected, the other not, or one deleted and the other not).
fn first_divergence(a: &TupleTrace, b: &TupleTrace) -> Option<usize> {
    let mut positions: Vec<usize> = a
        .affecting
        .iter()
        .chain(b.affecting.iter())
        .chain(a.deleted_at.iter())
        .chain(b.deleted_at.iter())
        .copied()
        .collect();
    positions.sort_unstable();
    positions.dedup();
    positions.into_iter().find(|p| {
        let in_a = a.affecting.contains(p) || a.deleted_at == Some(*p);
        let in_b = b.affecting.contains(p) || b.deleted_at == Some(*p);
        in_a != in_b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Value;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{HistoricalWhatIf, Modification, SetClause, Statement};

    fn bobs_delta() -> (History, ModificationSet, Database, DatabaseDelta) {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        let delta = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
            .answer_by_direct_execution()
            .unwrap();
        (history, mods, db, delta)
    }

    #[test]
    fn running_example_explanations() {
        let (history, mods, db, delta) = bobs_delta();
        let explanations = explain_answer(&history, &mods, &db, &delta).unwrap();
        // Two annotated tuples (−o6, +o6'), both derived from Alex's order.
        assert_eq!(explanations.len(), 2);
        for e in &explanations {
            assert_eq!(e.relation, "Order");
            assert_eq!(e.source, TupleSource::Base);
            assert_eq!(e.input.value(0), Some(&Value::int(12)));
            // u1 fires in the original history but u1' does not: the first
            // divergence is the modified statement itself.
            assert_eq!(e.divergence, Some(0));
            assert!(e.original.affecting.contains(&0));
            assert!(!e.modified.affecting.contains(&0));
            let text = e.to_string();
            assert!(text.contains("original history"));
            assert!(text.contains("divergence at statement 0"));
        }
    }

    #[test]
    fn deleted_statement_explanations_point_at_the_deletion() {
        // Deleting u2 (the UK surcharge) removes the +5 for both UK orders.
        let db = running_example_database();
        let history = History::new(running_example_history());
        let mods = ModificationSet::new(vec![Modification::delete(1)]);
        let delta = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
            .answer_by_direct_execution()
            .unwrap();
        let explanations = explain_answer(&history, &mods, &db, &delta).unwrap();
        assert!(!explanations.is_empty());
        for e in &explanations {
            assert_eq!(e.divergence, Some(1));
            assert!(e.original.affecting.contains(&1));
            assert!(!e.modified.affecting.contains(&1));
        }
    }

    #[test]
    fn explanations_for_tuples_deleted_under_the_hypothetical_history() {
        // Hypothetically delete expensive orders instead of waiving their
        // fee: Jack's order disappears, so the delta contains a − tuple whose
        // modified lineage ends in a deletion.
        let db = running_example_database();
        let history = History::new(running_example_history());
        let mods = ModificationSet::single_replace(
            0,
            Statement::delete("Order", ge(attr("Price"), lit(50))),
        );
        let delta = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
            .answer_by_direct_execution()
            .unwrap();
        let explanations = explain_answer(&history, &mods, &db, &delta).unwrap();
        assert!(!explanations.is_empty());
        let minus: Vec<_> = explanations
            .iter()
            .filter(|e| e.annotation == Annotation::Minus)
            .collect();
        assert!(!minus.is_empty());
        assert!(minus
            .iter()
            .any(|e| e.modified.deleted_at.is_some() && e.original.deleted_at.is_none()));
    }

    #[test]
    fn inserted_statement_explanations_have_insert_source() {
        // Hypothetically insert a new order at the start of the history; the
        // new tuple's explanation carries the insert source.
        let db = running_example_database();
        let history = History::new(running_example_history());
        let new_order = Statement::insert_values(
            "Order",
            mahif_storage::Tuple::new(vec![
                Value::int(15),
                Value::str("Eve"),
                Value::str("UK"),
                Value::int(90),
                Value::int(9),
            ]),
        );
        let mods = ModificationSet::new(vec![Modification::insert(0, new_order)]);
        let delta = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
            .answer_by_direct_execution()
            .unwrap();
        let explanations = explain_answer(&history, &mods, &db, &delta).unwrap();
        assert_eq!(explanations.len(), 1);
        let e = &explanations[0];
        assert_eq!(e.annotation, Annotation::Plus);
        assert!(matches!(e.source, TupleSource::InsertedValues { .. }));
        assert!(e.to_string().contains("inserted by statement"));
    }

    #[test]
    fn update_with_changed_set_clause_diverges_at_that_statement() {
        // Same condition, different SET expression: both lineages list the
        // statement as affecting, so the divergence search returns None for
        // the firing pattern — the explanation still identifies the input.
        let db = running_example_database();
        let history = History::new(running_example_history());
        let u2_prime = Statement::update(
            "Order",
            SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(7))),
            and(eq(attr("Country"), slit("UK")), le(attr("Price"), lit(100))),
        );
        let mods = ModificationSet::new(vec![Modification::replace(1, u2_prime)]);
        let delta = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
            .answer_by_direct_execution()
            .unwrap();
        let explanations = explain_answer(&history, &mods, &db, &delta).unwrap();
        assert!(!explanations.is_empty());
        for e in &explanations {
            assert_eq!(e.input.value(2), Some(&Value::str("UK")));
            assert!(e.original.affecting.contains(&1));
            assert!(e.modified.affecting.contains(&1));
        }
    }

    #[test]
    fn first_divergence_helper() {
        let a = TupleTrace {
            source: TupleSource::Base,
            initial: Tuple::new(vec![Value::int(1)]),
            affecting: vec![0, 2],
            deleted_at: None,
            final_tuple: Some(Tuple::new(vec![Value::int(1)])),
        };
        let mut b = a.clone();
        b.affecting = vec![2];
        assert_eq!(first_divergence(&a, &b), Some(0));
        assert_eq!(first_divergence(&a, &a), None);
        b.affecting = vec![0, 2];
        b.deleted_at = Some(3);
        assert_eq!(first_divergence(&a, &b), Some(3));
    }
}
