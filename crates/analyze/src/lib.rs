//! Static history/scenario analysis.
//!
//! The paper's central observation is that an update history is a *program*
//! amenable to static analysis — program slicing exploits that at plan
//! time; this crate exploits it **before** the engine runs at all:
//!
//! - **At registration** ([`HistoryAnalysis::build`], called once from
//!   `Session::register`): per-attribute type + nullability inference over
//!   the full version chain, statement read/write summaries and the def-use
//!   dependency graph (reusing `mahif_slicing::summaries`), and detection
//!   of statically dead statements (vacuous conditions, shadowed writes).
//! - **At admission** ([`HistoryAnalysis::validate`]): unknown relations or
//!   attributes, type-mismatched predicates and malformed parameter
//!   substitutions in a scenario become structured [`AnalysisError`]s —
//!   HTTP 400s at the serve layer — instead of mid-execution faults.
//! - **No-op proofs** ([`HistoryAnalysis::prove_noop`]): a scenario whose
//!   modifications provably cannot change the final state (identity
//!   replacements, vacuous statements, writes shadowed by a later
//!   unconditional overwrite) is answered as an empty delta without any
//!   slicing or reenactment, counted as `analyzer_noop_proofs`.
//!
//! Everything here is syntactic and conservative: `validate` may reject
//! scenarios the engine could technically execute (strictness is the
//! contract), and `prove_noop` answers `false` whenever a proof is out of
//! reach (completeness is not).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod infer;

pub use analysis::{total, vacuous, HistoryAnalysis, Liveness};
pub use error::AnalysisError;
pub use infer::{check_statement, evolve_statement, infer_expr, RelationTypes, TypeEnv};
