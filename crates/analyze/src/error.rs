//! Structured static-analysis rejections.

use std::fmt;

/// A static-analysis rejection: the scenario (or request) is malformed with
/// respect to the registered history's schema and inferred types, detected
/// **before** any slicing or reenactment runs. The serve layer maps these to
/// HTTP 400 with the offending relation/attribute named in the body.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A scenario statement targets a relation the registered database does
    /// not contain.
    UnknownRelation {
        /// The unknown relation name.
        relation: String,
    },
    /// An expression references an attribute its relation does not have.
    UnknownAttribute {
        /// The relation the statement runs against.
        relation: String,
        /// The unknown attribute name.
        attribute: String,
    },
    /// An operator is applied to an expression whose inferred type cannot
    /// satisfy it (e.g. arithmetic over a TEXT attribute) — at runtime this
    /// would fault mid-reenactment as a type mismatch.
    TypeMismatch {
        /// The relation the statement runs against.
        relation: String,
        /// The closest named attribute involved, when one exists.
        attribute: Option<String>,
        /// The operator or context that failed (`+`, `AND`, `SET V`, …).
        context: String,
        /// What the operator requires.
        expected: String,
        /// The inferred static type that was found instead.
        found: String,
    },
    /// A statement's WHERE clause cannot evaluate to a boolean.
    NotACondition {
        /// The relation the statement runs against.
        relation: String,
        /// The inferred static type of the condition.
        found: String,
    },
    /// An inserted tuple's arity does not match the relation's schema.
    ArityMismatch {
        /// The relation the statement runs against.
        relation: String,
        /// The schema arity.
        expected: usize,
        /// The tuple arity.
        found: usize,
    },
    /// An inserted tuple's value cannot inhabit its column's type.
    ValueTypeMismatch {
        /// The relation the statement runs against.
        relation: String,
        /// The column the value is inserted into.
        attribute: String,
        /// The column's declared type.
        expected: String,
        /// The value's type.
        found: String,
    },
    /// A modification references a statement position outside the (already
    /// partially modified) history.
    PositionOutOfBounds {
        /// The referenced 0-based position.
        position: usize,
        /// The history length the position was checked against.
        length: usize,
    },
    /// A scenario expression contains an unbound parameter variable —
    /// statement evaluation has no bindings, so this would fault at runtime.
    UnboundVariable {
        /// The variable name.
        variable: String,
    },
}

impl AnalysisError {
    /// The relation involved, when the rejection names one.
    pub fn relation(&self) -> Option<&str> {
        match self {
            AnalysisError::UnknownRelation { relation }
            | AnalysisError::UnknownAttribute { relation, .. }
            | AnalysisError::TypeMismatch { relation, .. }
            | AnalysisError::NotACondition { relation, .. }
            | AnalysisError::ArityMismatch { relation, .. }
            | AnalysisError::ValueTypeMismatch { relation, .. } => Some(relation),
            _ => None,
        }
    }

    /// The attribute involved, when the rejection names one.
    pub fn attribute(&self) -> Option<&str> {
        match self {
            AnalysisError::UnknownAttribute { attribute, .. }
            | AnalysisError::ValueTypeMismatch { attribute, .. } => Some(attribute),
            AnalysisError::TypeMismatch { attribute, .. } => attribute.as_deref(),
            _ => None,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation}")
            }
            AnalysisError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation {relation} has no attribute {attribute}"),
            AnalysisError::TypeMismatch {
                relation,
                attribute,
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch in {context} on {relation}: expected {expected}, found {found}"
                )?;
                if let Some(attr) = attribute {
                    write!(f, " (attribute {attr})")?;
                }
                Ok(())
            }
            AnalysisError::NotACondition { relation, found } => {
                write!(
                    f,
                    "WHERE clause on {relation} is not a condition: inferred type {found}, expected BOOL"
                )
            }
            AnalysisError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "insert into {relation} has {found} values, schema has {expected} attributes"
            ),
            AnalysisError::ValueTypeMismatch {
                relation,
                attribute,
                expected,
                found,
            } => write!(
                f,
                "insert into {relation}.{attribute} expects {expected}, got {found}"
            ),
            AnalysisError::PositionOutOfBounds { position, length } => write!(
                f,
                "modification position {position} out of bounds for history of length {length}"
            ),
            AnalysisError::UnboundVariable { variable } => {
                write!(f, "unbound parameter variable {variable}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let e = AnalysisError::UnknownAttribute {
            relation: "Order".into(),
            attribute: "Freight".into(),
        };
        assert_eq!(e.relation(), Some("Order"));
        assert_eq!(e.attribute(), Some("Freight"));
        assert!(e.to_string().contains("Freight"));

        let e = AnalysisError::PositionOutOfBounds {
            position: 7,
            length: 3,
        };
        assert_eq!(e.relation(), None);
        assert_eq!(e.attribute(), None);
        assert!(e.to_string().contains('7'));

        let e = AnalysisError::TypeMismatch {
            relation: "Order".into(),
            attribute: Some("Customer".into()),
            context: "+".into(),
            expected: "INT".into(),
            found: "TEXT".into(),
        };
        assert_eq!(e.attribute(), Some("Customer"));
        assert!(e.to_string().contains("expected INT"));
    }
}
