//! The registration-time analyzer artifact and its admission-time consumers.
//!
//! [`HistoryAnalysis::build`] runs once per registered history (inside
//! `Session::register`) and precomputes everything admission-time checks
//! need: per-attribute type/nullability inference evolved over the full
//! version chain, per-statement read/write summaries and the def-use graph
//! they induce, and a liveness classification (vacuous / shadowed / live)
//! per statement.
//!
//! At admission, [`validate`](HistoryAnalysis::validate) typechecks a
//! scenario's modified chain (rejections become HTTP 400 before any slicing
//! or reenactment runs) and [`prove_noop`](HistoryAnalysis::prove_noop)
//! attempts a syntactic proof that the modified history produces the same
//! final state as the original — in which case the scenario is answered
//! with an empty delta without touching the engine.

use std::collections::BTreeSet;

use mahif_expr::{Expr, Value};
use mahif_history::{History, Modification, ModificationSet, Statement};
use mahif_slicing::{statement_summaries, StatementSummary};
use mahif_storage::Database;

use crate::error::AnalysisError;
use crate::infer::{check_statement, evolve_statement, TypeEnv};

/// Liveness of one history statement, determined statically at
/// registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// May affect the final state.
    Live,
    /// Its condition is unsatisfiable: the statement modifies no row.
    Vacuous,
    /// Every attribute it writes is unconditionally overwritten by a later
    /// statement before anything reads it: its effect never escapes.
    Shadowed,
}

/// The static-analysis artifact of one registered history.
#[derive(Debug, Clone)]
pub struct HistoryAnalysis {
    statements: Vec<Statement>,
    summaries: Vec<StatementSummary>,
    initial: TypeEnv,
    final_env: TypeEnv,
    liveness: Vec<Liveness>,
    depends_on: Vec<Vec<usize>>,
}

impl HistoryAnalysis {
    /// Builds the artifact for `history` as registered over `initial`
    /// database state. Infallible: registered histories already executed,
    /// so inference failures taint instead of erroring.
    pub fn build(initial: &Database, history: &History) -> HistoryAnalysis {
        let statements: Vec<Statement> = history.statements().to_vec();
        let summaries = statement_summaries(history);
        let initial_env = TypeEnv::from_database(initial);
        let mut final_env = initial_env.clone();
        for statement in &statements {
            evolve_statement(statement, &mut final_env);
        }
        let liveness = statements
            .iter()
            .enumerate()
            .map(|(p, s)| classify(&statements, p, s))
            .collect();
        let depends_on = dependency_graph(&summaries);
        HistoryAnalysis {
            statements,
            summaries,
            initial: initial_env,
            final_env,
            liveness,
            depends_on,
        }
    }

    /// The per-statement read/write summaries.
    pub fn summaries(&self) -> &[StatementSummary] {
        &self.summaries
    }

    /// The inferred types before any statement ran (declared schema widened
    /// by the initial data).
    pub fn initial_types(&self) -> &TypeEnv {
        &self.initial
    }

    /// The inferred types after the full history (what the registered
    /// current state holds).
    pub fn final_types(&self) -> &TypeEnv {
        &self.final_env
    }

    /// Liveness of statement `position`.
    pub fn liveness(&self, position: usize) -> Option<Liveness> {
        self.liveness.get(position).copied()
    }

    /// Positions of statically dead statements (vacuous or shadowed).
    pub fn dead_statements(&self) -> Vec<usize> {
        self.liveness
            .iter()
            .enumerate()
            .filter(|(_, l)| !matches!(l, Liveness::Live))
            .map(|(p, _)| p)
            .collect()
    }

    /// The def-use dependency graph: for each statement, the earlier
    /// statements whose writes may flow into its reads.
    pub fn dependencies(&self, position: usize) -> &[usize] {
        self.depends_on
            .get(position)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Typechecks a scenario against the history: modification positions
    /// are bounds-checked under the paper's sequential semantics, the
    /// modified chain is re-inferred from the initial types, and every
    /// *new* statement is strictly checked (unknown relations/attributes,
    /// ill-typed predicates and SET expressions, unbound parameter
    /// variables). Original statements are never rejected retroactively —
    /// they evolve the environment best-effort.
    pub fn validate(&self, modifications: &ModificationSet) -> Result<(), AnalysisError> {
        let mut working: Vec<(&Statement, bool)> =
            self.statements.iter().map(|s| (s, false)).collect();
        for m in modifications.modifications() {
            match m {
                Modification::Replace { position, new } => {
                    if *position >= working.len() {
                        return Err(AnalysisError::PositionOutOfBounds {
                            position: *position,
                            length: working.len(),
                        });
                    }
                    working[*position] = (new, true);
                }
                Modification::Insert { position, new } => {
                    if *position > working.len() {
                        return Err(AnalysisError::PositionOutOfBounds {
                            position: *position,
                            length: working.len(),
                        });
                    }
                    working.insert(*position, (new, true));
                }
                Modification::Delete { position } => {
                    if *position >= working.len() {
                        return Err(AnalysisError::PositionOutOfBounds {
                            position: *position,
                            length: working.len(),
                        });
                    }
                    working.remove(*position);
                }
            }
        }
        let mut env = self.initial.clone();
        for (statement, is_new) in working {
            if is_new {
                check_statement(statement, &env)?;
            }
            evolve_statement(statement, &mut env);
        }
        Ok(())
    }

    /// Attempts a static proof that applying `modifications` leaves the
    /// final state unchanged, in which case the scenario's delta is empty
    /// and slicing + reenactment can be skipped entirely. Sound, not
    /// complete: `false` means "could not prove", not "has an effect".
    ///
    /// Callers must [`validate`](Self::validate) first — the proof assumes
    /// new statements typecheck (their only possible runtime faults would
    /// then come from arithmetic, which the proof additionally excludes).
    pub fn prove_noop(&self, modifications: &ModificationSet) -> bool {
        // The empty modification set is trivially a no-op, but it is also
        // the engine's documented "answer one empty scenario" path; leave
        // its stats alone.
        if modifications.is_empty() {
            return false;
        }
        let mut working: Vec<Statement> = self.statements.clone();
        for m in modifications.modifications() {
            match m {
                Modification::Replace { position, new } => {
                    let p = *position;
                    if p >= working.len() {
                        return false;
                    }
                    if working[p] != *new && !replacement_erasable(&working, p, new) {
                        return false;
                    }
                    working[p] = new.clone();
                }
                Modification::Delete { position } => {
                    let p = *position;
                    if p >= working.len() {
                        return false;
                    }
                    if !statement_erasable(&working, p + 1, &working[p]) {
                        return false;
                    }
                    working.remove(p);
                }
                Modification::Insert { position, new } => {
                    let p = *position;
                    if p > working.len() {
                        return false;
                    }
                    if !total(new) || !statement_erasable(&working, p, new) {
                        return false;
                    }
                    working.insert(p, new.clone());
                }
            }
        }
        true
    }
}

/// Classifies statement `p` of `statements` (registration-time liveness).
fn classify(statements: &[Statement], p: usize, statement: &Statement) -> Liveness {
    if vacuous(statement) {
        return Liveness::Vacuous;
    }
    if let Statement::Update { relation, set, .. } = statement {
        let writes: BTreeSet<String> = set.modified_attributes().into_iter().collect();
        if !writes.is_empty() && shadow_cover(statements, p + 1, relation, &writes) {
            return Liveness::Shadowed;
        }
    }
    Liveness::Live
}

/// Computes the def-use graph over statement summaries: an edge `q → p`
/// (q < p) when `q`'s writes may flow into `p`'s reads.
fn dependency_graph(summaries: &[StatementSummary]) -> Vec<Vec<usize>> {
    summaries
        .iter()
        .enumerate()
        .map(|(p, sp)| {
            (0..p)
                .filter(|&q| {
                    let sq = &summaries[q];
                    let same_relation = sq.relation == sp.relation;
                    let writes_read = same_relation
                        && (sq.whole_row || sq.writes.iter().any(|w| sp.reads.contains(w)));
                    let query_read = sp.query_relations.contains(&sq.relation);
                    writes_read || query_read
                })
                .collect()
        })
        .collect()
}

/// True when replacing `working[p]` with `new` provably leaves the final
/// state unchanged: both the old statement's effect and the new statement's
/// effect must be erasable (vacuous, or an update whose writes are
/// unconditionally overwritten before any read), and `new` must be total
/// (no arithmetic that could fault, no unbound variables).
fn replacement_erasable(working: &[Statement], p: usize, new: &Statement) -> bool {
    if !total(new) {
        return false;
    }
    let old = &working[p];
    let old_writes = match erasable_writes(old) {
        Some(w) => w,
        None => return false,
    };
    let new_writes = match erasable_writes(new) {
        Some(w) => w,
        None => return false,
    };
    // Both sides write: the shadow argument composes only over a single
    // relation's divergent attributes.
    if !old_writes.is_empty() && !new_writes.is_empty() && old.relation() != new.relation() {
        return false;
    }
    let relation = if !old_writes.is_empty() {
        old.relation()
    } else if !new_writes.is_empty() {
        new.relation()
    } else {
        return true; // both vacuous
    };
    let mut divergent = old_writes;
    divergent.extend(new_writes);
    shadow_cover(working, p + 1, relation, &divergent)
}

/// True when skipping or adding `statement` at position `start` provably
/// leaves the final state unchanged (the statement is vacuous, or an update
/// whose writes are shadowed by `working[start..]`).
fn statement_erasable(working: &[Statement], start: usize, statement: &Statement) -> bool {
    match erasable_writes(statement) {
        Some(writes) if writes.is_empty() => true,
        Some(writes) => shadow_cover(working, start, statement.relation(), &writes),
        None => false,
    }
}

/// The attribute set whose divergence erasing `statement` creates: empty
/// for vacuous statements, the SET targets for updates, `None` for
/// statements whose effect changes row counts (non-vacuous deletes and
/// inserts cannot be erased by overwriting).
fn erasable_writes(statement: &Statement) -> Option<BTreeSet<String>> {
    if vacuous(statement) {
        return Some(BTreeSet::new());
    }
    match statement {
        Statement::Update { set, .. } => Some(set.modified_attributes().into_iter().collect()),
        _ => None,
    }
}

/// True when every attribute of `divergent` (on `relation`) is overwritten
/// by an unconditional update of `statements[start..]` before any statement
/// reads it. Rows of `relation` then converge to identical values whether
/// or not the divergence ever happened.
fn shadow_cover(
    statements: &[Statement],
    start: usize,
    relation: &str,
    divergent: &BTreeSet<String>,
) -> bool {
    if divergent.is_empty() {
        return true;
    }
    let mut divergent = divergent.clone();
    for statement in &statements[start..] {
        if let Statement::InsertQuery { query, .. } = statement {
            // An INSERT … SELECT reading the divergent relation copies
            // divergent values into fresh rows; give up.
            if query.referenced_relations().iter().any(|r| r == relation) {
                return false;
            }
        }
        if statement.relation() != relation {
            continue;
        }
        let summary = mahif_slicing::statement_summary(0, statement);
        if summary.reads.iter().any(|r| divergent.contains(r)) {
            return false;
        }
        if let Statement::Update { set, cond, .. } = statement {
            if cond.is_true() {
                // Unconditional overwrite from non-divergent inputs: these
                // attributes converge.
                for attr in set.modified_attributes() {
                    divergent.remove(&attr);
                }
                if divergent.is_empty() {
                    return true;
                }
            }
        }
    }
    false
}

/// True when the statement is an update or delete whose condition is
/// unsatisfiable: it modifies no row (the engine's no-op padding `D_false`
/// is the degenerate case).
pub fn vacuous(statement: &Statement) -> bool {
    statement.condition().is_some_and(unsat)
}

/// A conservative unsatisfiability test over a row condition: literal
/// FALSE/NULL, conjunctions with conflicting constant constraints on one
/// attribute (empty intervals, contradictory equalities), constant
/// comparisons that evaluate to FALSE or NULL, and disjunctions of
/// unsatisfiable branches.
fn unsat(cond: &Expr) -> bool {
    match cond {
        Expr::Const(v) => {
            !matches!(v, Value::Bool(true)) && matches!(v, Value::Bool(_) | Value::Null)
        }
        Expr::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(cond, &mut conjuncts);
            if conjuncts.iter().any(|c| unsat(c)) {
                return true;
            }
            constraints_conflict(&conjuncts)
        }
        Expr::Or(l, r) => unsat(l) && unsat(r),
        Expr::Cmp { op, left, right } => {
            // A comparison against literal NULL yields NULL — never TRUE.
            if matches!(&**left, Expr::Const(v) if v.is_null())
                || matches!(&**right, Expr::Const(v) if v.is_null())
            {
                return true;
            }
            if let (Expr::Const(l), Expr::Const(r)) = (&**left, &**right) {
                match l.sql_cmp(r) {
                    None => true,
                    Some(ord) => !cmp_holds(*op, ord),
                }
            } else {
                false
            }
        }
        _ => false,
    }
}

fn cmp_holds(op: mahif_expr::CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        mahif_expr::CmpOp::Eq => ord == Equal,
        mahif_expr::CmpOp::Neq => ord != Equal,
        mahif_expr::CmpOp::Lt => ord == Less,
        mahif_expr::CmpOp::Le => ord != Greater,
        mahif_expr::CmpOp::Gt => ord == Greater,
        mahif_expr::CmpOp::Ge => ord != Less,
    }
}

fn flatten_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::And(l, r) = expr {
        flatten_and(l, out);
        flatten_and(r, out);
    } else {
        out.push(expr);
    }
}

/// Per-attribute constraint accumulator for [`constraints_conflict`].
#[derive(Default)]
struct AttrConstraints {
    lo: Option<i128>,
    hi: Option<i128>,
    eq: Option<Value>,
    neq: Vec<Value>,
}

impl AttrConstraints {
    fn conflicting(&self) -> bool {
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo > hi {
                return true;
            }
        }
        if let Some(eq) = &self.eq {
            if self.neq.iter().any(|n| n == eq) {
                return true;
            }
            if let Value::Int(i) = eq {
                let i = *i as i128;
                if self.lo.is_some_and(|lo| i < lo) || self.hi.is_some_and(|hi| i > hi) {
                    return true;
                }
            }
        }
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo == hi
                && self
                    .neq
                    .iter()
                    .any(|n| matches!(n, Value::Int(i) if *i as i128 == lo))
            {
                return true;
            }
        }
        false
    }
}

/// Detects conflicts between constant comparisons over the same attribute
/// within one conjunction (`K >= 10 AND K < 10`, `C = 'a' AND C = 'b'`, …).
fn constraints_conflict(conjuncts: &[&Expr]) -> bool {
    use std::collections::BTreeMap;
    let mut by_attr: BTreeMap<&str, AttrConstraints> = BTreeMap::new();
    for conjunct in conjuncts {
        let Expr::Cmp { op, left, right } = conjunct else {
            continue;
        };
        let (attr, value, op) = match (&**left, &**right) {
            (Expr::Attr(a), Expr::Const(v)) => (a.as_str(), v, *op),
            (Expr::Const(v), Expr::Attr(a)) => (a.as_str(), v, op.flipped()),
            _ => continue,
        };
        if value.is_null() {
            // `attr <op> NULL` is never TRUE: the conjunction is vacuous.
            return true;
        }
        let c = by_attr.entry(attr).or_default();
        match (op, value) {
            (mahif_expr::CmpOp::Eq, v) => {
                if c.eq.as_ref().is_some_and(|prev| prev != v) {
                    return true;
                }
                c.eq = Some(v.clone());
            }
            (mahif_expr::CmpOp::Neq, v) => c.neq.push(v.clone()),
            (mahif_expr::CmpOp::Lt, Value::Int(i)) => {
                let bound = *i as i128 - 1;
                c.hi = Some(c.hi.map_or(bound, |h| h.min(bound)));
            }
            (mahif_expr::CmpOp::Le, Value::Int(i)) => {
                let bound = *i as i128;
                c.hi = Some(c.hi.map_or(bound, |h| h.min(bound)));
            }
            (mahif_expr::CmpOp::Gt, Value::Int(i)) => {
                let bound = *i as i128 + 1;
                c.lo = Some(c.lo.map_or(bound, |l| l.max(bound)));
            }
            (mahif_expr::CmpOp::Ge, Value::Int(i)) => {
                let bound = *i as i128;
                c.lo = Some(c.lo.map_or(bound, |l| l.max(bound)));
            }
            _ => continue,
        }
        if c.conflicting() {
            return true;
        }
    }
    false
}

/// True when evaluating the statement's expressions can never fault for
/// well-typed inputs: no arithmetic (division by zero / overflow are value
/// errors the typechecker cannot exclude) and no parameter variables.
pub fn total(statement: &Statement) -> bool {
    match statement {
        Statement::Update { set, cond, .. } => {
            expr_total(cond)
                && set
                    .modified_attributes()
                    .iter()
                    .filter_map(|a| set.expr_for(a))
                    .all(expr_total)
        }
        Statement::Delete { cond, .. } => expr_total(cond),
        Statement::InsertValues { .. } => true,
        Statement::InsertQuery { .. } => false,
    }
}

fn expr_total(expr: &Expr) -> bool {
    match expr {
        Expr::Arith { .. } | Expr::Var(_) => false,
        Expr::Attr(_) | Expr::Const(_) => true,
        Expr::Cmp { left, right, .. } => expr_total(left) && expr_total(right),
        Expr::And(l, r) | Expr::Or(l, r) => expr_total(l) && expr_total(r),
        Expr::Not(e) | Expr::IsNull(e) => expr_total(e),
        Expr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => expr_total(cond) && expr_total(then_branch) && expr_total(else_branch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_history::statement::{running_example_database, running_example_history};
    use mahif_history::SetClause;

    fn fee_history() -> (Database, History) {
        // ShippingFee is written at 0, never read in between, and
        // unconditionally overwritten at 2 — statement 0 is shadowed.
        let db = running_example_database();
        let history = History::new(vec![
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(1)),
                ge(attr("Price"), lit(50)),
            ),
            Statement::update(
                "Order",
                SetClause::single("Price", lit(100)),
                eq(attr("Country"), slit("UK")),
            ),
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(0)),
                Expr::true_(),
            ),
        ]);
        (db, history)
    }

    #[test]
    fn vacuity_detection() {
        assert!(vacuous(&Statement::no_op("R")));
        assert!(vacuous(&Statement::delete(
            "R",
            and(ge(attr("K"), lit(10)), lt(attr("K"), lit(10))),
        )));
        assert!(vacuous(&Statement::delete(
            "R",
            and(eq(attr("C"), slit("a")), eq(attr("C"), slit("b"))),
        )));
        assert!(vacuous(&Statement::delete("R", eq(attr("K"), null()))));
        assert!(vacuous(&Statement::delete("R", lt(lit(2), lit(1)))));
        // Satisfiable intervals and plain conditions are not vacuous.
        assert!(!vacuous(&Statement::delete(
            "R",
            and(ge(attr("K"), lit(1000)), lt(attr("K"), lit(1001))),
        )));
        assert!(!vacuous(&Statement::delete("R", ge(attr("K"), lit(0)))));
        // OR needs both branches unsatisfiable.
        assert!(vacuous(&Statement::delete(
            "R",
            or(Expr::false_(), lt(lit(2), lit(1))),
        )));
        assert!(!vacuous(&Statement::delete(
            "R",
            or(Expr::false_(), ge(attr("K"), lit(0))),
        )));
    }

    #[test]
    fn totality_excludes_arithmetic_and_vars() {
        assert!(total(&Statement::delete("R", ge(attr("K"), lit(0)))));
        assert!(!total(&Statement::delete(
            "R",
            ge(add(attr("K"), lit(1)), lit(0)),
        )));
        assert!(!total(&Statement::delete("R", ge(var("x"), lit(0)))));
        assert!(total(&Statement::update(
            "R",
            SetClause::single("V", lit(3)),
            Expr::true_(),
        )));
    }

    #[test]
    fn running_example_statements_are_live() {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let analysis = HistoryAnalysis::build(&db, &history);
        for p in 0..history.len() {
            assert_eq!(analysis.liveness(p), Some(Liveness::Live), "statement {p}");
        }
        // u2 computes from ShippingFee written by u1: a def-use edge 0 → 1.
        assert!(analysis.dependencies(1).contains(&0));
        assert!(analysis.dead_statements().is_empty());
    }

    #[test]
    fn shadowed_statement_is_detected_and_replacements_prove_noop() {
        let (db, history) = fee_history();
        let analysis = HistoryAnalysis::build(&db, &history);
        assert_eq!(analysis.liveness(0), Some(Liveness::Shadowed));
        assert_eq!(analysis.liveness(2), Some(Liveness::Live));

        // Replacing the shadowed fee-write with another fee-write is
        // provably a no-op …
        let replacement = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(2)),
            ge(attr("Price"), lit(60)),
        );
        let mods = ModificationSet::single_replace(0, replacement);
        analysis.validate(&mods).unwrap();
        assert!(analysis.prove_noop(&mods));

        // … and so are deleting it or inserting another one.
        assert!(analysis.prove_noop(&ModificationSet::new(vec![Modification::delete(0)])));
        let inserted = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(9)),
            eq(attr("Country"), slit("US")),
        );
        assert!(
            analysis.prove_noop(&ModificationSet::new(vec![Modification::insert(
                1, inserted
            )]))
        );

        // Replacing the *covering* statement is not provable (its writes
        // escape).
        let live = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(7)),
            Expr::true_(),
        );
        assert!(!analysis.prove_noop(&ModificationSet::single_replace(2, live)));
    }

    #[test]
    fn identity_and_vacuous_replacements_prove_noop() {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let analysis = HistoryAnalysis::build(&db, &history);
        let identity = ModificationSet::single_replace(0, history.statements()[0].clone());
        assert!(analysis.prove_noop(&identity));
        // Replacing a live statement with a vacuous one is NOT a no-op (the
        // old effect escapes) …
        let vacuous_new = Statement::no_op("Order");
        assert!(!analysis.prove_noop(&ModificationSet::single_replace(0, vacuous_new.clone())));
        // … but inserting a vacuous statement is.
        assert!(
            analysis.prove_noop(&ModificationSet::new(vec![Modification::insert(
                1,
                vacuous_new
            )]))
        );
        // The empty modification set is deliberately not claimed.
        assert!(!analysis.prove_noop(&ModificationSet::new(vec![])));
        // u1 is read downstream (u2/u3 read ShippingFee): not provable.
        let u1_prime = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(60)),
        );
        assert!(!analysis.prove_noop(&ModificationSet::single_replace(0, u1_prime)));
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let analysis = HistoryAnalysis::build(&db, &history);

        // Unknown attribute in a predicate.
        let bad = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Freight"), lit(50)),
        );
        let err = analysis
            .validate(&ModificationSet::single_replace(0, bad))
            .unwrap_err();
        assert_eq!(err.attribute(), Some("Freight"));

        // Unknown relation.
        let bad = Statement::delete("Orders", Expr::true_());
        assert!(matches!(
            analysis
                .validate(&ModificationSet::single_replace(0, bad))
                .unwrap_err(),
            AnalysisError::UnknownRelation { .. }
        ));

        // Type-mismatched predicate: arithmetic over the TEXT attribute.
        let bad = Statement::delete("Order", ge(add(attr("Country"), lit(1)), lit(0)));
        assert!(matches!(
            analysis
                .validate(&ModificationSet::single_replace(0, bad))
                .unwrap_err(),
            AnalysisError::TypeMismatch { .. }
        ));

        // Unbound parameter variable (malformed substitution).
        let bad = Statement::delete("Order", ge(var("threshold"), lit(0)));
        assert!(matches!(
            analysis
                .validate(&ModificationSet::single_replace(0, bad))
                .unwrap_err(),
            AnalysisError::UnboundVariable { .. }
        ));

        // Out-of-bounds position, sequential semantics (delete shrinks the
        // chain, so a later position may overflow).
        let mods = ModificationSet::new(vec![
            Modification::delete(0),
            Modification::delete(history.len() - 1),
        ]);
        assert!(matches!(
            analysis.validate(&mods).unwrap_err(),
            AnalysisError::PositionOutOfBounds { .. }
        ));

        // A well-formed scenario passes.
        let good = Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(60)),
        );
        analysis
            .validate(&ModificationSet::single_replace(0, good))
            .unwrap();
    }

    #[test]
    fn sequential_positions_are_simulated() {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let analysis = HistoryAnalysis::build(&db, &history);
        // Insert at the end, then replace the inserted statement: position
        // len() is valid only after the insert.
        let inserted = Statement::delete("Order", Expr::false_());
        let mods = ModificationSet::new(vec![
            Modification::insert(history.len(), inserted.clone()),
            Modification::replace(history.len(), inserted),
        ]);
        analysis.validate(&mods).unwrap();
        // Both modifications are vacuous: provably a no-op.
        assert!(analysis.prove_noop(&mods));
    }
}
