//! Static type and nullability inference over statement expressions.
//!
//! The inference mirrors `mahif_expr::eval` exactly — it computes, for every
//! expression, the set of data types the runtime value may have
//! ([`TypeInfo`]) and rejects precisely the shapes the evaluator would fault
//! on (arithmetic over non-INT operands, `AND`/`OR`/`NOT` over non-BOOL
//! operands, unbound attributes and parameter variables). Comparisons,
//! `IS NULL` and `IF .. THEN .. ELSE` conditions are total at runtime and
//! therefore never rejected, only typed.

use std::collections::BTreeMap;

use mahif_expr::{DataType, Expr, TypeInfo};
use mahif_history::Statement;
use mahif_storage::{Database, SchemaRef};

use crate::error::AnalysisError;

/// The inferred per-attribute types of one relation.
#[derive(Debug, Clone)]
pub struct RelationTypes {
    /// The relation's declared schema.
    pub schema: SchemaRef,
    /// Inferred [`TypeInfo`] per attribute, in schema order.
    pub attrs: Vec<TypeInfo>,
    /// True once an `INSERT … SELECT` wrote query-derived rows: inference
    /// gives up on the relation and every attribute reads as
    /// [`TypeInfo::any`].
    pub tainted: bool,
}

impl RelationTypes {
    /// The inferred type of `attr`, when the schema has it.
    pub fn attribute(&self, attr: &str) -> Option<TypeInfo> {
        self.schema.index_of(attr).map(|i| self.attrs[i])
    }
}

/// Inferred types for every relation of a database, evolved statement by
/// statement over a history.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Per-relation types, keyed by relation name.
    pub relations: BTreeMap<String, RelationTypes>,
}

impl TypeEnv {
    /// Seeds the environment from a database instance: each attribute
    /// starts at its declared type, widened by the types and NULLs actually
    /// present in the initial data.
    pub fn from_database(db: &Database) -> TypeEnv {
        let mut relations = BTreeMap::new();
        for (name, relation) in db.iter() {
            let schema = relation.schema.clone();
            let mut attrs: Vec<TypeInfo> = schema
                .attributes
                .iter()
                .map(|a| TypeInfo::of(a.dtype))
                .collect();
            for tuple in relation.iter() {
                for (i, info) in attrs.iter_mut().enumerate() {
                    match tuple.value(i).and_then(|v| v.data_type()) {
                        Some(dt) => info.types = info.types.union(dt.into()),
                        None => info.nullable = true,
                    }
                }
            }
            relations.insert(
                name.clone(),
                RelationTypes {
                    schema,
                    attrs,
                    tainted: false,
                },
            );
        }
        TypeEnv { relations }
    }

    /// The types of `relation`, when registered.
    pub fn relation(&self, relation: &str) -> Option<&RelationTypes> {
        self.relations.get(relation)
    }
}

/// The first attribute referenced by `expr`, used to name the offending
/// attribute in rejections.
fn principal_attr(expr: &Expr) -> Option<String> {
    expr.attrs().into_iter().next()
}

/// Infers the static type of `expr` evaluated against rows of `rel`,
/// rejecting exactly the shapes `eval_expr` would fault on.
pub fn infer_expr(
    expr: &Expr,
    relation: &str,
    rel: &RelationTypes,
) -> Result<TypeInfo, AnalysisError> {
    match expr {
        Expr::Attr(name) => {
            if rel.tainted {
                return Ok(TypeInfo::any());
            }
            rel.attribute(name)
                .ok_or_else(|| AnalysisError::UnknownAttribute {
                    relation: relation.to_string(),
                    attribute: name.clone(),
                })
        }
        // Statement evaluation binds no parameter variables; any `Var` left
        // after substitution faults at runtime.
        Expr::Var(name) => Err(AnalysisError::UnboundVariable {
            variable: name.clone(),
        }),
        Expr::Const(v) => Ok(match v.data_type() {
            Some(dt) => TypeInfo::of(dt),
            None => TypeInfo::null(),
        }),
        Expr::Arith { op, left, right } => {
            let l = infer_expr(left, relation, rel)?;
            let r = infer_expr(right, relation, rel)?;
            for (side, ty) in [(&**left, l), (&**right, r)] {
                if !ty.at_most(DataType::Int) {
                    return Err(AnalysisError::TypeMismatch {
                        relation: relation.to_string(),
                        attribute: principal_attr(side),
                        context: op.symbol().to_string(),
                        expected: DataType::Int.to_string(),
                        found: ty.to_string(),
                    });
                }
            }
            Ok(TypeInfo {
                // NULL-only operands make the result NULL-only.
                types: if l.types.is_empty() || r.types.is_empty() {
                    mahif_expr::TypeSet::EMPTY
                } else {
                    DataType::Int.into()
                },
                nullable: l.nullable || r.nullable,
            })
        }
        // `sql_cmp` is total (cross-type comparisons order by type rank), so
        // comparisons never fault; NULL operands yield NULL.
        Expr::Cmp { left, right, .. } => {
            let l = infer_expr(left, relation, rel)?;
            let r = infer_expr(right, relation, rel)?;
            Ok(TypeInfo {
                types: DataType::Bool.into(),
                nullable: l.nullable || r.nullable || l.types.is_empty() || r.types.is_empty(),
            })
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            let op = if matches!(expr, Expr::And(..)) {
                "AND"
            } else {
                "OR"
            };
            let lt = infer_expr(l, relation, rel)?;
            let rt = infer_expr(r, relation, rel)?;
            // Kleene AND/OR evaluate both operands eagerly and fault on any
            // non-BOOL non-NULL value.
            for (side, ty) in [(&**l, lt), (&**r, rt)] {
                if !ty.at_most(DataType::Bool) {
                    return Err(AnalysisError::TypeMismatch {
                        relation: relation.to_string(),
                        attribute: principal_attr(side),
                        context: op.to_string(),
                        expected: DataType::Bool.to_string(),
                        found: ty.to_string(),
                    });
                }
            }
            Ok(TypeInfo {
                types: DataType::Bool.into(),
                nullable: lt.nullable || rt.nullable || lt.types.is_empty() || rt.types.is_empty(),
            })
        }
        Expr::Not(e) => {
            let ty = infer_expr(e, relation, rel)?;
            if !ty.at_most(DataType::Bool) {
                return Err(AnalysisError::TypeMismatch {
                    relation: relation.to_string(),
                    attribute: principal_attr(e),
                    context: "NOT".to_string(),
                    expected: DataType::Bool.to_string(),
                    found: ty.to_string(),
                });
            }
            Ok(TypeInfo {
                types: DataType::Bool.into(),
                nullable: ty.nullable || ty.types.is_empty(),
            })
        }
        Expr::IsNull(e) => {
            infer_expr(e, relation, rel)?;
            Ok(TypeInfo::of(DataType::Bool))
        }
        Expr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            // The runtime treats any non-TRUE condition (NULL included, but
            // also non-boolean values) as "take the else branch" — the
            // condition itself never faults beyond its own sub-expressions.
            infer_expr(cond, relation, rel)?;
            let t = infer_expr(then_branch, relation, rel)?;
            let e = infer_expr(else_branch, relation, rel)?;
            Ok(t.join(e))
        }
    }
}

/// Strictly checks a scenario statement against the environment: unknown
/// relations/attributes, non-boolean conditions, ill-typed SET expressions
/// and inserted values, and unbound parameter variables are rejected. A
/// statement that passes cannot raise a type error when reenacted (value
/// errors — division by zero, overflow — remain possible where arithmetic
/// is present).
pub fn check_statement(statement: &Statement, env: &TypeEnv) -> Result<(), AnalysisError> {
    let relation = statement.relation();
    let rel = env
        .relation(relation)
        .ok_or_else(|| AnalysisError::UnknownRelation {
            relation: relation.to_string(),
        })?;
    if rel.tainted {
        // Query-derived rows put the relation beyond static reach; checking
        // against `any()` types would reject valid statements, so accept
        // best-effort.
        return Ok(());
    }
    match statement {
        Statement::Update { set, cond, .. } => {
            check_condition(cond, relation, rel)?;
            for attr in set.modified_attributes() {
                let declared =
                    rel.schema
                        .attribute(&attr)
                        .ok_or_else(|| AnalysisError::UnknownAttribute {
                            relation: relation.to_string(),
                            attribute: attr.clone(),
                        })?;
                let expr = set.expr_for(&attr).expect("attribute comes from the set");
                let ty = infer_expr(expr, relation, rel)?;
                if !ty.at_most(declared.dtype) {
                    return Err(AnalysisError::TypeMismatch {
                        relation: relation.to_string(),
                        attribute: Some(attr.clone()),
                        context: format!("SET {attr}"),
                        expected: declared.dtype.to_string(),
                        found: ty.to_string(),
                    });
                }
            }
            Ok(())
        }
        Statement::Delete { cond, .. } => check_condition(cond, relation, rel),
        Statement::InsertValues { tuple, .. } => {
            if tuple.arity() != rel.schema.arity() {
                return Err(AnalysisError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: rel.schema.arity(),
                    found: tuple.arity(),
                });
            }
            for (i, attribute) in rel.schema.attributes.iter().enumerate() {
                let value = tuple.value(i).expect("arity was checked");
                if let Some(dt) = value.data_type() {
                    if dt != attribute.dtype {
                        return Err(AnalysisError::ValueTypeMismatch {
                            relation: relation.to_string(),
                            attribute: attribute.name.clone(),
                            expected: attribute.dtype.to_string(),
                            found: dt.to_string(),
                        });
                    }
                }
            }
            Ok(())
        }
        Statement::InsertQuery { query, .. } => {
            for read in query.referenced_relations() {
                if env.relation(&read).is_none() {
                    return Err(AnalysisError::UnknownRelation { relation: read });
                }
            }
            Ok(())
        }
    }
}

/// Checks a WHERE clause: it must infer to BOOL (or NULL), matching
/// `eval_condition`'s fault condition.
fn check_condition(cond: &Expr, relation: &str, rel: &RelationTypes) -> Result<(), AnalysisError> {
    let ty = infer_expr(cond, relation, rel)?;
    if !ty.at_most(DataType::Bool) {
        return Err(AnalysisError::NotACondition {
            relation: relation.to_string(),
            found: ty.to_string(),
        });
    }
    Ok(())
}

/// Evolves the environment past `statement`, best-effort: inference
/// failures taint rather than error, because registered histories already
/// executed successfully and must never be rejected retroactively.
pub fn evolve_statement(statement: &Statement, env: &mut TypeEnv) {
    let relation = statement.relation().to_string();
    // SET expressions read the pre-update environment.
    let snapshot = match env.relation(&relation) {
        Some(rel) => rel.clone(),
        None => return,
    };
    match statement {
        Statement::Update { set, cond, .. } => {
            // A condition that is literally TRUE rewrites every row: the
            // written type replaces the old one (strong update). Any other
            // condition may leave rows untouched, so old and new join.
            let strong = cond.is_true();
            let rel = env.relations.get_mut(&relation).expect("snapshot exists");
            for attr in set.modified_attributes() {
                let Some(i) = snapshot.schema.index_of(&attr) else {
                    continue;
                };
                let expr = set.expr_for(&attr).expect("attribute comes from the set");
                let written =
                    infer_expr(expr, &relation, &snapshot).unwrap_or_else(|_| TypeInfo::any());
                rel.attrs[i] = if strong {
                    written
                } else {
                    rel.attrs[i].join(written)
                };
            }
        }
        Statement::Delete { .. } => {}
        Statement::InsertValues { tuple, .. } => {
            let rel = env.relations.get_mut(&relation).expect("snapshot exists");
            for (i, info) in rel.attrs.iter_mut().enumerate() {
                match tuple.value(i).and_then(|v| v.data_type()) {
                    Some(dt) => info.types = info.types.union(dt.into()),
                    None => info.nullable = true,
                }
            }
        }
        Statement::InsertQuery { .. } => {
            let rel = env.relations.get_mut(&relation).expect("snapshot exists");
            rel.tainted = true;
            for info in rel.attrs.iter_mut() {
                *info = TypeInfo::any();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Value;
    use mahif_history::SetClause;
    use mahif_storage::{Attribute, Relation, Schema, Tuple};

    fn env() -> TypeEnv {
        let schema = Schema::shared(
            "R",
            vec![
                Attribute::int("K"),
                Attribute::int("V"),
                Attribute::str("C"),
            ],
        );
        let mut relation = Relation::empty(schema);
        relation
            .insert(Tuple::new(vec![
                Value::Int(1),
                Value::Null,
                Value::from("a".to_string()),
            ]))
            .unwrap();
        let mut db = Database::new();
        db.add_relation(relation).unwrap();
        TypeEnv::from_database(&db)
    }

    #[test]
    fn nullability_is_inferred_from_data() {
        let env = env();
        let rel = env.relation("R").unwrap();
        assert!(!rel.attribute("K").unwrap().nullable);
        assert!(rel.attribute("V").unwrap().nullable);
        assert!(rel.attribute("V").unwrap().at_most(DataType::Int));
    }

    #[test]
    fn arithmetic_over_text_is_rejected() {
        let env = env();
        let rel = env.relation("R").unwrap();
        let err = infer_expr(&add(attr("C"), lit(1)), "R", rel).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::TypeMismatch { ref attribute, .. } if attribute.as_deref() == Some("C")
        ));
    }

    #[test]
    fn unknown_attribute_and_unbound_var_are_rejected() {
        let env = env();
        let rel = env.relation("R").unwrap();
        assert!(matches!(
            infer_expr(&attr("Missing"), "R", rel).unwrap_err(),
            AnalysisError::UnknownAttribute { ref attribute, .. } if attribute == "Missing"
        ));
        assert!(matches!(
            infer_expr(&var("x"), "R", rel).unwrap_err(),
            AnalysisError::UnboundVariable { .. }
        ));
    }

    #[test]
    fn mixed_ite_is_typed_as_a_union_but_rejected_under_arithmetic() {
        let env = env();
        let rel = env.relation("R").unwrap();
        let mixed = ite(ge(attr("K"), lit(0)), lit(1), slit("x"));
        // Mixed branches are legal on their own …
        let ty = infer_expr(&mixed, "R", rel).unwrap();
        assert!(!ty.at_most(DataType::Int));
        // … but cannot feed arithmetic, which would fault per-row.
        assert!(infer_expr(&add(mixed, lit(1)), "R", rel).is_err());
    }

    #[test]
    fn null_literal_writes_are_accepted() {
        let env = env();
        let update = Statement::update("R", SetClause::single("V", null()), Expr::true_());
        check_statement(&update, &env).unwrap();
    }

    #[test]
    fn non_boolean_condition_is_rejected() {
        let env = env();
        let update = Statement::update("R", SetClause::single("V", lit(1)), lit(5));
        assert!(matches!(
            check_statement(&update, &env).unwrap_err(),
            AnalysisError::NotACondition { .. }
        ));
    }

    #[test]
    fn insert_arity_and_type_are_checked() {
        let env = env();
        let short = Statement::insert_values("R", Tuple::new(vec![Value::Int(1)]));
        assert!(matches!(
            check_statement(&short, &env).unwrap_err(),
            AnalysisError::ArityMismatch {
                expected: 3,
                found: 1,
                ..
            }
        ));
        let wrong = Statement::insert_values(
            "R",
            Tuple::new(vec![
                Value::Int(1),
                Value::from("oops".to_string()),
                Value::from("a".to_string()),
            ]),
        );
        assert!(matches!(
            check_statement(&wrong, &env).unwrap_err(),
            AnalysisError::ValueTypeMismatch { ref attribute, .. } if attribute == "V"
        ));
    }

    #[test]
    fn strong_updates_narrow_and_weak_updates_widen() {
        let mut e = env();
        // Weak update writing NULL: V stays INT but nullable.
        evolve_statement(
            &Statement::update("R", SetClause::single("V", null()), ge(attr("K"), lit(0))),
            &mut e,
        );
        assert!(e.relation("R").unwrap().attribute("V").unwrap().nullable);
        // Strong update (TRUE condition) writing a literal: V becomes
        // non-nullable again.
        evolve_statement(
            &Statement::update("R", SetClause::single("V", lit(3)), Expr::true_()),
            &mut e,
        );
        let v = e.relation("R").unwrap().attribute("V").unwrap();
        assert!(!v.nullable);
        assert!(v.at_most(DataType::Int));
    }

    #[test]
    fn insert_query_taints_the_relation() {
        let mut e = env();
        evolve_statement(
            &Statement::insert_query("R", mahif_query::Query::scan("R")),
            &mut e,
        );
        let rel = e.relation("R").unwrap();
        assert!(rel.tainted);
        // Tainted relations are beyond static reach: strict statement
        // checks accept best-effort instead of rejecting against `any()`.
        let statement = Statement::delete("R", ge(add(attr("C"), lit(1)), lit(0)));
        assert!(check_statement(&statement, &e).is_ok());
    }
}
