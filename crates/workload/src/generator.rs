//! Parameterized history / what-if workload generation (Section 13.2).

use mahif_expr::builder::{and, attr, ge, lit, lt};
use mahif_expr::{Expr, Value};
use mahif_history::{History, Modification, ModificationSet, SetClause, Statement};
use mahif_storage::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, DatasetKind};

/// The workload knobs of Section 13.2.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// `U`: number of statements in the history.
    pub updates: usize,
    /// `M`: number of modifications in the what-if query.
    pub modifications: usize,
    /// `D`: percentage of updates dependent on the modified statement(s).
    pub dependent_pct: u32,
    /// `T`: percentage of tuples affected by each dependent update
    /// (0 means "less than 1%", matching the paper's `T0`).
    pub affected_pct: u32,
    /// `I`: percentage of statements that are inserts.
    pub insert_pct: u32,
    /// `X`: percentage of statements that are deletes.
    pub delete_pct: u32,
    /// RNG seed (workloads are deterministic per seed).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    /// The paper's defaults: single modification of the first update, 10%
    /// dependent updates, 10% affected tuples, no inserts or deletes.
    fn default() -> Self {
        WorkloadSpec {
            updates: 100,
            modifications: 1,
            dependent_pct: 10,
            affected_pct: 10,
            insert_pct: 0,
            delete_pct: 0,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// Sets the number of updates.
    pub fn with_updates(mut self, updates: usize) -> Self {
        self.updates = updates;
        self
    }

    /// Sets the number of modifications.
    pub fn with_modifications(mut self, modifications: usize) -> Self {
        self.modifications = modifications;
        self
    }

    /// Sets the percentage of dependent updates.
    pub fn with_dependent_pct(mut self, pct: u32) -> Self {
        self.dependent_pct = pct;
        self
    }

    /// Sets the percentage of affected tuples.
    pub fn with_affected_pct(mut self, pct: u32) -> Self {
        self.affected_pct = pct;
        self
    }

    /// Sets the percentage of inserts.
    pub fn with_insert_pct(mut self, pct: u32) -> Self {
        self.insert_pct = pct;
        self
    }

    /// Sets the percentage of deletes.
    pub fn with_delete_pct(mut self, pct: u32) -> Self {
        self.delete_pct = pct;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the history and modification set for `dataset`.
    pub fn generate(&self, dataset: &Dataset) -> GeneratedWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let kind = dataset.kind;
        let relation = kind.relation();
        let key = kind.key_attribute();
        let value_attrs = kind.value_attributes();
        let rows = dataset.rows as i64;

        // Number of tuples each dependent (and the modified) update touches.
        let affected = if self.affected_pct == 0 {
            (rows / 200).max(1)
        } else {
            (rows * self.affected_pct as i64 / 100).max(1)
        };
        // Region A: tuples touched by the modified statements and the
        // dependent updates; Region B: a disjoint region of the same size
        // touched by independent updates.
        let region_a = (0, affected);
        let region_b = (affected, (affected * 2).min(rows));

        let total = self.updates.max(1);
        let insert_count = total * self.insert_pct as usize / 100;
        let delete_count = total * self.delete_pct as usize / 100;
        let update_count = total - insert_count - delete_count;
        let dependent_count = (update_count * self.dependent_pct as usize / 100)
            .max(self.modifications)
            .min(update_count);

        // Interleave statement kinds deterministically: updates first at
        // position 0 (the statement the what-if query modifies), then a
        // round-robin of the remaining kinds.
        let mut kinds: Vec<StatementKind> = Vec::with_capacity(total);
        kinds.push(StatementKind::DependentUpdate);
        let mut remaining_dependent = dependent_count.saturating_sub(1);
        let mut remaining_independent = update_count.saturating_sub(1) - remaining_dependent;
        let mut remaining_inserts = insert_count;
        let mut remaining_deletes = delete_count;
        let mut i = 1usize;
        while kinds.len() < total {
            // Spread dependent updates evenly over the history.
            let slot = i % 10;
            let kind = if remaining_dependent > 0
                && slot
                    .is_multiple_of(10 / (self.dependent_pct.clamp(10, 100) / 10).max(1) as usize)
            {
                remaining_dependent -= 1;
                StatementKind::DependentUpdate
            } else if remaining_inserts > 0 && slot == 3 {
                remaining_inserts -= 1;
                StatementKind::Insert
            } else if remaining_deletes > 0 && slot == 7 {
                remaining_deletes -= 1;
                StatementKind::Delete
            } else if remaining_independent > 0 {
                remaining_independent -= 1;
                StatementKind::IndependentUpdate
            } else if remaining_dependent > 0 {
                remaining_dependent -= 1;
                StatementKind::DependentUpdate
            } else if remaining_inserts > 0 {
                remaining_inserts -= 1;
                StatementKind::Insert
            } else {
                remaining_deletes = remaining_deletes.saturating_sub(1);
                StatementKind::Delete
            };
            kinds.push(kind);
            i += 1;
        }

        let mut statements = Vec::with_capacity(total);
        let mut dependent_positions = Vec::new();
        let mut next_insert_key = rows;
        for (pos, stmt_kind) in kinds.iter().enumerate() {
            match stmt_kind {
                StatementKind::DependentUpdate => {
                    dependent_positions.push(pos);
                    statements.push(range_update(
                        relation,
                        key,
                        value_attrs[pos % value_attrs.len()],
                        region_a,
                        1 + (pos % 7) as i64,
                    ));
                }
                StatementKind::IndependentUpdate => {
                    statements.push(range_update(
                        relation,
                        key,
                        value_attrs[pos % value_attrs.len()],
                        region_b,
                        1 + (pos % 5) as i64,
                    ));
                }
                StatementKind::Insert => {
                    let tuple = fresh_tuple(kind, next_insert_key, &mut rng);
                    next_insert_key += 1;
                    statements.push(Statement::insert_values(relation, tuple));
                }
                StatementKind::Delete => {
                    // Delete a sliver at the top of the key space, disjoint
                    // from both update regions.
                    let hi = rows - 1 - (pos as i64 % 10);
                    statements.push(Statement::delete(
                        relation,
                        and(ge(attr(key), lit(hi)), lt(attr(key), lit(hi + 1))),
                    ));
                }
            }
        }

        // Modifications: replace the first `modifications` dependent updates
        // with variants using a different adjustment amount, so that exactly
        // the region-A tuples differ between the histories.
        let mut modifications = Vec::new();
        for (j, &pos) in dependent_positions
            .iter()
            .take(self.modifications)
            .enumerate()
        {
            if let Statement::Update {
                relation: rel,
                set,
                cond,
            } = &statements[pos]
            {
                let (attr_name, expr) = &set.assignments[0];
                let new_expr = Expr::Arith {
                    op: mahif_expr::ArithOp::Add,
                    left: std::sync::Arc::new(expr.clone()),
                    right: std::sync::Arc::new(Expr::Const(Value::Int(5 + j as i64))),
                };
                modifications.push(Modification::replace(
                    pos,
                    Statement::update(
                        rel.clone(),
                        SetClause::single(attr_name.clone(), new_expr),
                        cond.clone(),
                    ),
                ));
            }
        }

        GeneratedWorkload {
            history: History::new(statements),
            modifications: ModificationSet::new(modifications),
            dependent_positions,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatementKind {
    DependentUpdate,
    IndependentUpdate,
    Insert,
    Delete,
}

/// `UPDATE relation SET value_attr = value_attr + delta WHERE lo <= key < hi`.
fn range_update(
    relation: &str,
    key: &str,
    value_attr: &str,
    (lo, hi): (i64, i64),
    delta: i64,
) -> Statement {
    Statement::update(
        relation,
        SetClause::single(
            value_attr,
            Expr::Arith {
                op: mahif_expr::ArithOp::Add,
                left: std::sync::Arc::new(Expr::Attr(value_attr.to_string())),
                right: std::sync::Arc::new(Expr::Const(Value::Int(delta))),
            },
        ),
        and(ge(attr(key), lit(lo)), lt(attr(key), lit(hi))),
    )
}

/// Builds a fresh tuple with the given key for insert statements.
fn fresh_tuple(kind: DatasetKind, key: i64, rng: &mut StdRng) -> Tuple {
    match kind {
        DatasetKind::Taxi => {
            let fare: i64 = rng.gen_range(400..5000);
            Tuple::new(vec![
                Value::Int(key),
                Value::str("Flash Cab"),
                Value::Int(rng.gen_range(60..7200)),
                Value::Int(rng.gen_range(10..3000)),
                Value::Int(rng.gen_range(1..=77)),
                Value::Int(fare),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(fare),
            ])
        }
        DatasetKind::TpccStock => Tuple::new(vec![
            Value::Int(key),
            Value::Int(1),
            Value::Int(rng.gen_range(10..101)),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
        ]),
        DatasetKind::Ycsb => {
            let mut values = vec![Value::Int(key)];
            for _ in 0..10 {
                values.push(Value::Int(rng.gen_range(0..10_000)));
            }
            Tuple::new(values)
        }
    }
}

/// The generated workload for one experiment configuration.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The transactional history.
    pub history: History,
    /// The what-if query's modifications.
    pub modifications: ModificationSet,
    /// Positions of the updates generated as dependent on the modification
    /// (used by tests and reports).
    pub dependent_positions: Vec<usize>,
}

impl GeneratedWorkload {
    /// Sweep variants for batch-scenario experiments: variant `v` replaces
    /// the same statement positions as [`Self::modifications`], with the
    /// adjustment amount offset by `v` — `k` hypotheticals over the same
    /// history that differ only in a constant, the shape a scenario batch
    /// engine shares the most work on. Variant labels are `"adjust+{amount}"`.
    ///
    /// Deterministic and prefix-stable: `sweep_variants(j)` is exactly the
    /// first `j` elements of `sweep_variants(k)` for any `j <= k`. The
    /// repeated-sweep bench phases lean on this — a smaller sweep's members
    /// are certified by the plan a larger sweep provisioned, so overlapping
    /// batches hit the session's plan cache.
    pub fn sweep_variants(&self, k: usize) -> Vec<(String, ModificationSet)> {
        (0..k)
            .map(|v| {
                let amount = 5 + v as i64;
                let mods: Vec<Modification> = self
                    .modifications
                    .modifications()
                    .iter()
                    .filter_map(|m| {
                        let Modification::Replace { position, .. } = m else {
                            return None;
                        };
                        let Statement::Update {
                            relation,
                            set,
                            cond,
                        } = &self.history.statements()[*position]
                        else {
                            return None;
                        };
                        // Offset the first assignment; any further
                        // assignments are kept unchanged so the variant stays
                        // "the original statement plus a constant".
                        let (first, rest) = set.assignments.split_first()?;
                        let (attr_name, expr) = first;
                        let new_expr = Expr::Arith {
                            op: mahif_expr::ArithOp::Add,
                            left: std::sync::Arc::new(expr.clone()),
                            right: std::sync::Arc::new(Expr::Const(Value::Int(amount))),
                        };
                        let mut assignments = vec![(attr_name.clone(), new_expr)];
                        assignments.extend(rest.iter().cloned());
                        Some(Modification::replace(
                            *position,
                            Statement::update(
                                relation.clone(),
                                SetClause::new(assignments),
                                cond.clone(),
                            ),
                        ))
                    })
                    .collect();
                (format!("adjust+{amount}"), ModificationSet::new(mods))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn taxi(rows: usize) -> Dataset {
        Dataset::generate(DatasetKind::Taxi, rows, 1)
    }

    #[test]
    fn default_spec_shape() {
        let ds = taxi(200);
        let w = WorkloadSpec::default().with_updates(20).generate(&ds);
        assert_eq!(w.history.len(), 20);
        assert_eq!(w.modifications.len(), 1);
        assert!(w.dependent_positions.contains(&0));
        // ~10% dependent (at least the modified one).
        assert!(w.dependent_positions.len() >= 2);
        assert!(w.history.is_tuple_independent());
    }

    #[test]
    fn history_executes_and_modification_changes_result() {
        let ds = taxi(100);
        let w = WorkloadSpec::default()
            .with_updates(10)
            .with_affected_pct(20)
            .generate(&ds);
        let before = ds.database.clone();
        let after = w.history.execute(&before).unwrap();
        assert_eq!(after.relation("taxi_trips").unwrap().len(), 100);
        let modified = w.modifications.apply(&w.history).unwrap();
        let after_mod = modified.execute(&before).unwrap();
        // The modification changes at least one tuple.
        assert!(!after.set_eq(&after_mod));
        // Roughly 20% of tuples differ (region A).
        let delta = mahif_history::DatabaseDelta::compute(&after, &after_mod);
        assert!(delta.len() >= 20 * 2 * 8 / 10); // +/- annotated pairs, some slack
        assert!(delta.len() <= 2 * 25);
    }

    #[test]
    fn insert_and_delete_percentages() {
        let ds = taxi(100);
        let w = WorkloadSpec::default()
            .with_updates(40)
            .with_insert_pct(10)
            .with_delete_pct(10)
            .generate(&ds);
        let inserts = w
            .history
            .statements()
            .iter()
            .filter(|s| matches!(s, Statement::InsertValues { .. }))
            .count();
        let deletes = w
            .history
            .statements()
            .iter()
            .filter(|s| matches!(s, Statement::Delete { .. }))
            .count();
        assert_eq!(inserts, 4);
        assert_eq!(deletes, 4);
        assert_eq!(w.history.len(), 40);
        // Still executable.
        assert!(w.history.execute(&ds.database).is_ok());
    }

    #[test]
    fn multiple_modifications() {
        let ds = taxi(100);
        let w = WorkloadSpec::default()
            .with_updates(30)
            .with_modifications(5)
            .with_dependent_pct(30)
            .generate(&ds);
        assert_eq!(w.modifications.len(), 5);
        // All modification targets are dependent positions.
        for m in w.modifications.modifications() {
            assert!(w.dependent_positions.contains(&m.position()));
        }
    }

    #[test]
    fn sweep_variants_share_positions_and_differ_in_amount() {
        let ds = taxi(100);
        let w = WorkloadSpec::default()
            .with_updates(20)
            .with_modifications(2)
            .with_dependent_pct(30)
            .generate(&ds);
        let variants = w.sweep_variants(4);
        assert_eq!(variants.len(), 4);
        let positions: Vec<Vec<usize>> = variants
            .iter()
            .map(|(_, m)| m.modifications().iter().map(|x| x.position()).collect())
            .collect();
        // Every variant modifies exactly the same positions.
        assert!(positions.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(positions[0].len(), 2);
        // Labels carry the adjustment amount and the sets differ pairwise.
        assert_eq!(variants[0].0, "adjust+5");
        assert_eq!(variants[3].0, "adjust+8");
        assert_ne!(variants[0].1, variants[1].1);
        // Each variant produces a valid executable modified history.
        for (_, m) in &variants {
            let modified = m.apply(&w.history).unwrap();
            assert!(modified.execute(&ds.database).is_ok());
        }
        // Prefix stability (documented contract): a smaller sweep is the
        // larger sweep's prefix, so overlapping batches can share plans.
        assert_eq!(w.sweep_variants(2), variants[..2]);
    }

    #[test]
    fn determinism() {
        let ds = taxi(50);
        let a = WorkloadSpec::default().with_updates(12).generate(&ds);
        let b = WorkloadSpec::default().with_updates(12).generate(&ds);
        assert_eq!(a.history, b.history);
        assert_eq!(a.modifications, b.modifications);
    }

    #[test]
    fn works_for_all_dataset_kinds() {
        for kind in [DatasetKind::Taxi, DatasetKind::TpccStock, DatasetKind::Ycsb] {
            let ds = Dataset::generate(kind, 80, 3);
            let w = WorkloadSpec::default()
                .with_updates(15)
                .with_insert_pct(10)
                .generate(&ds);
            assert_eq!(w.history.len(), 15);
            assert!(w.history.execute(&ds.database).is_ok());
        }
    }

    #[test]
    fn t0_touches_less_than_one_percent() {
        let ds = taxi(1000);
        let w = WorkloadSpec::default()
            .with_updates(10)
            .with_affected_pct(0)
            .generate(&ds);
        let after = w.history.execute(&ds.database).unwrap();
        let modified = w.modifications.apply(&w.history).unwrap();
        let after_mod = modified.execute(&ds.database).unwrap();
        let delta = mahif_history::DatabaseDelta::compute(&after, &after_mod);
        // < 1% of 1000 rows → at most 5 rows → at most 10 annotated tuples.
        assert!(delta.len() <= 10);
        assert!(delta.len() >= 2);
    }
}
