//! Synthetic stand-ins for the paper's evaluation datasets.

use mahif_expr::Value;
use mahif_storage::{Attribute, Database, Relation, Schema, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's datasets a generated database imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Chicago taxi trips (Section 13.1), scaled down.
    Taxi,
    /// TPC-C `stock` relation.
    TpccStock,
    /// YCSB `usertable`.
    Ycsb,
}

impl DatasetKind {
    /// The relation name used for this dataset.
    pub fn relation(&self) -> &'static str {
        match self {
            DatasetKind::Taxi => "taxi_trips",
            DatasetKind::TpccStock => "stock",
            DatasetKind::Ycsb => "usertable",
        }
    }

    /// The primary key attribute used by workload generators to select
    /// tuples.
    pub fn key_attribute(&self) -> &'static str {
        match self {
            DatasetKind::Taxi => "trip_id",
            DatasetKind::TpccStock => "s_i_id",
            DatasetKind::Ycsb => "ycsb_key",
        }
    }

    /// Numeric attributes that updates modify (monetary values are integer
    /// cents).
    pub fn value_attributes(&self) -> &'static [&'static str] {
        match self {
            DatasetKind::Taxi => &["fare", "tips", "tolls", "extras", "trip_total"],
            DatasetKind::TpccStock => &["s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt"],
            DatasetKind::Ycsb => &["field0", "field1", "field2", "field3", "field4"],
        }
    }
}

/// A generated dataset: the database plus the metadata the workload
/// generator needs.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset this imitates.
    pub kind: DatasetKind,
    /// The generated database (a single relation).
    pub database: Database,
    /// Number of rows.
    pub rows: usize,
}

impl Dataset {
    /// Generates a dataset of the given kind.
    pub fn generate(kind: DatasetKind, rows: usize, seed: u64) -> Dataset {
        let database = match kind {
            DatasetKind::Taxi => taxi_trips(rows, seed),
            DatasetKind::TpccStock => tpcc_stock(rows, seed),
            DatasetKind::Ycsb => ycsb_usertable(rows, seed),
        };
        Dataset {
            kind,
            database,
            rows,
        }
    }

    /// The dataset's single relation.
    pub fn relation(&self) -> &Relation {
        self.database
            .relation(self.kind.relation())
            .expect("generated database always contains its relation")
    }
}

/// Generates a scaled-down taxi-trips relation with the attributes the
/// paper's histories touch (company, durations, distances and the monetary
/// columns as integer cents).
pub fn taxi_trips(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::shared(
        "taxi_trips",
        vec![
            Attribute::int("trip_id"),
            Attribute::str("company"),
            Attribute::int("trip_seconds"),
            Attribute::int("trip_miles_x100"),
            Attribute::int("pickup_area"),
            Attribute::int("fare"),
            Attribute::int("tips"),
            Attribute::int("tolls"),
            Attribute::int("extras"),
            Attribute::int("trip_total"),
        ],
    );
    let companies = [
        "Flash Cab",
        "Taxi Affiliation Services",
        "Yellow Cab",
        "Blue Diamond",
        "Chicago Carriage",
        "Sun Taxi",
        "City Service",
        "Medallion Leasing",
    ];
    let mut relation = Relation::empty(schema);
    for trip_id in 0..rows {
        let company = companies[rng.gen_range(0..companies.len())];
        let trip_seconds: i64 = rng.gen_range(60..7200);
        let trip_miles_x100: i64 = rng.gen_range(10..3000);
        let pickup_area: i64 = rng.gen_range(1..=77);
        let fare: i64 = 325 + trip_seconds / 36 + trip_miles_x100;
        let tips: i64 = if rng.gen_bool(0.4) { fare / 5 } else { 0 };
        let tolls: i64 = if rng.gen_bool(0.05) { 500 } else { 0 };
        let extras: i64 = if rng.gen_bool(0.2) {
            rng.gen_range(100..1000)
        } else {
            0
        };
        let trip_total = fare + tips + tolls + extras;
        relation
            .insert(Tuple::new(vec![
                Value::Int(trip_id as i64),
                Value::str(company),
                Value::Int(trip_seconds),
                Value::Int(trip_miles_x100),
                Value::Int(pickup_area),
                Value::Int(fare),
                Value::Int(tips),
                Value::Int(tolls),
                Value::Int(extras),
                Value::Int(trip_total),
            ]))
            .expect("arity matches schema");
    }
    let mut db = Database::new();
    db.add_relation(relation).expect("fresh database");
    db
}

/// Generates a TPC-C-like `stock` relation.
pub fn tpcc_stock(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::shared(
        "stock",
        vec![
            Attribute::int("s_i_id"),
            Attribute::int("s_w_id"),
            Attribute::int("s_quantity"),
            Attribute::int("s_ytd"),
            Attribute::int("s_order_cnt"),
            Attribute::int("s_remote_cnt"),
        ],
    );
    let mut relation = Relation::empty(schema);
    for i in 0..rows {
        relation
            .insert(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i % 100) as i64 + 1),
                Value::Int(rng.gen_range(10..101)),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
            ]))
            .expect("arity matches schema");
    }
    let mut db = Database::new();
    db.add_relation(relation).expect("fresh database");
    db
}

/// Generates a YCSB-like `usertable` with ten integer fields.
pub fn ycsb_usertable(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attributes = vec![Attribute::int("ycsb_key")];
    for f in 0..10 {
        attributes.push(Attribute::int(format!("field{f}")));
    }
    let schema = Schema::shared("usertable", attributes);
    let mut relation = Relation::empty(schema);
    for key in 0..rows {
        let mut values = vec![Value::Int(key as i64)];
        for _ in 0..10 {
            values.push(Value::Int(rng.gen_range(0..10_000)));
        }
        relation
            .insert(Tuple::new(values))
            .expect("arity matches schema");
    }
    let mut db = Database::new();
    db.add_relation(relation).expect("fresh database");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxi_dataset_shape() {
        let db = taxi_trips(100, 1);
        let rel = db.relation("taxi_trips").unwrap();
        assert_eq!(rel.len(), 100);
        assert_eq!(rel.schema.arity(), 10);
        // trip_total = fare + tips + tolls + extras for every row.
        for t in rel.iter() {
            let fare = t.value(5).unwrap().as_int().unwrap();
            let tips = t.value(6).unwrap().as_int().unwrap();
            let tolls = t.value(7).unwrap().as_int().unwrap();
            let extras = t.value(8).unwrap().as_int().unwrap();
            let total = t.value(9).unwrap().as_int().unwrap();
            assert_eq!(total, fare + tips + tolls + extras);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = taxi_trips(50, 7);
        let b = taxi_trips(50, 7);
        let c = taxi_trips(50, 8);
        assert!(a.set_eq(&b));
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn tpcc_and_ycsb_shapes() {
        let stock = tpcc_stock(64, 3);
        assert_eq!(stock.relation("stock").unwrap().len(), 64);
        assert_eq!(stock.relation("stock").unwrap().schema.arity(), 6);
        let ycsb = ycsb_usertable(32, 3);
        assert_eq!(ycsb.relation("usertable").unwrap().len(), 32);
        assert_eq!(ycsb.relation("usertable").unwrap().schema.arity(), 11);
    }

    #[test]
    fn dataset_wrapper() {
        for kind in [DatasetKind::Taxi, DatasetKind::TpccStock, DatasetKind::Ycsb] {
            let ds = Dataset::generate(kind, 20, 1);
            assert_eq!(ds.rows, 20);
            assert_eq!(ds.relation().len(), 20);
            assert!(ds
                .relation()
                .schema
                .index_of(kind.key_attribute())
                .is_some());
            for attr in kind.value_attributes() {
                assert!(ds.relation().schema.index_of(attr).is_some(), "{attr}");
            }
        }
    }
}
