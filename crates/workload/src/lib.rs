//! # mahif-workload
//!
//! Synthetic datasets and transactional workloads reproducing the
//! experimental setup of Section 13 of the paper.
//!
//! The paper evaluates on a Chicago taxi-trips extract (5M / 50M rows), the
//! TPC-C `stock` relation and the YCSB `usertable`, with histories generated
//! by Benchbase and post-processed to control:
//!
//! * `U` — number of updates in the history,
//! * `M` — number of modifications in the what-if query,
//! * `D` — percentage of updates *dependent* on the modified statement(s),
//! * `T` — percentage of tuples affected by each dependent update,
//! * `I` / `X` — percentage of insert / delete statements.
//!
//! None of those datasets are redistributable here, so [`dataset`] generates
//! relations with the same schema shape and value distributions at
//! configurable (laptop-scale) sizes, and [`generator`] produces histories
//! and modification sets parameterized by exactly the knobs above. Updates
//! select tuples by key ranges; dependent updates overlap the key range
//! touched by the modified statement, independent updates touch a disjoint
//! range of the same size, which reproduces the selectivity structure the
//! paper's experiments rely on.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod generator;
pub mod serve_load;

pub use dataset::{taxi_trips, tpcc_stock, ycsb_usertable, Dataset, DatasetKind};
pub use generator::{GeneratedWorkload, WorkloadSpec};
pub use serve_load::{
    http_get, http_post, http_request, run_load, HttpReply, LatencySummary, LoadReport, LoadSpec,
};
