//! `serve_load`: a std-only HTTP load driver for the serving layer.
//!
//! Fires concurrent batches at a running `mahif-serve` server and records
//! throughput and latency percentiles. Lives in the workload crate so both
//! the bench binary (`cargo run -p mahif-bench --bin serve_load`) and the
//! serve crate's smoke tests drive the server through the same minimal
//! client — blocking I/O, no dependencies, and **persistent connections**:
//! an [`HttpClient`] keeps one socket open across requests (HTTP/1.1
//! keep-alive) and reconnects transparently when the server closes it
//! (idle timeout, `max_requests_per_connection`, or an explicit
//! `Connection: close`). [`LoadSpec::requests_per_conn`] dials reuse from
//! one-request-per-connection (the old behavior, for comparison) to
//! unlimited.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// An HTTP exchange's outcome.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code of the response.
    pub status: u16,
    /// Response body (UTF-8).
    pub body: String,
    /// Response headers (name, value), in wire order. Observability
    /// tests read `X-Request-Id` and `Server-Timing` from here.
    pub headers: Vec<(String, String)>,
}

impl HttpReply {
    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A minimal HTTP/1.1 client holding one reusable connection to `addr`.
///
/// Requests default to keep-alive; pass `close = true` to ask the server
/// to close after the response (the client drops the socket either way
/// when the response says `Connection: close`). A request sent on a
/// *reused* connection that dies before a full response arrives is
/// retried once on a fresh connection — the server may have closed the
/// parked socket (idle timeout, request cap) while the request was in
/// flight.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr` (no connection is opened yet).
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            conn: None,
        }
    }

    /// Sends one request and reads the full response, reusing the held
    /// connection when possible.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
    ) -> io::Result<HttpReply> {
        self.request_with_headers(method, path, body, close, &[])
    }

    /// Like [`Self::request`], with extra request headers (e.g. a client
    /// `X-Request-Id`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<HttpReply> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, body, close, extra_headers) {
            Ok(reply) => Ok(reply),
            Err(e) if reused => {
                // The parked socket was likely closed under us; one retry
                // on a fresh connection disambiguates a stale connection
                // from a dead server.
                self.conn = None;
                let _ = e;
                self.try_request(method, path, body, close, extra_headers)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<HttpReply> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            // Requests are one small write each; without TCP_NODELAY the
            // kernel would batch them against the previous response's
            // delayed ACK on a reused connection.
            let _ = stream.set_nodelay(true);
            self.conn = Some(BufReader::new(stream));
        }
        let reader = self.conn.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let connection_header = if close { "Connection: close\r\n" } else { "" };
        let extra: String = extra_headers
            .iter()
            .map(|(name, value)| format!("{name}: {value}\r\n"))
            .collect();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}{connection_header}\r\n{body}",
            self.addr,
            body.len()
        );
        let result = (|| {
            let stream = reader.get_mut();
            stream.write_all(request.as_bytes())?;
            stream.flush()?;
            read_reply(reader)
        })();
        match result {
            Ok((reply, server_closes)) => {
                if close || server_closes {
                    self.conn = None;
                }
                Ok(reply)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Reads one response off `reader`; the bool reports whether the server
/// announced `Connection: close` (the socket is then done).
fn read_reply(reader: &mut BufReader<TcpStream>) -> io::Result<(HttpReply, bool)> {
    let mut status_line = String::new();
    loop {
        status_line.clear();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line: {status_line:?}"),
                )
            })?;
        let mut content_length: Option<usize> = None;
        let mut server_closes = false;
        let mut headers: Vec<(String, String)> = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let (name, value) = (name.trim(), value.trim());
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().ok();
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    server_closes = true;
                }
                headers.push((name.to_string(), value.to_string()));
            }
        }
        // Interim responses (100 Continue) precede the real one.
        if (100..200).contains(&status) {
            continue;
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8(buf)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        return Ok((
            HttpReply {
                status,
                body,
                headers,
            },
            server_closes,
        ));
    }
}

/// Sends one HTTP request (`method path`, optional JSON body) to `addr`
/// on a fresh connection (`Connection: close`) and reads the full
/// response. The one-shot convenience over [`HttpClient`].
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpReply> {
    HttpClient::new(addr).request(method, path, body, true)
}

/// `POST path` with a JSON body, one-shot.
pub fn http_post(addr: &str, path: &str, body: &str) -> io::Result<HttpReply> {
    http_request(addr, "POST", path, Some(body))
}

/// `GET path`, one-shot.
pub fn http_get(addr: &str, path: &str) -> io::Result<HttpReply> {
    http_request(addr, "GET", path, None)
}

/// Load-driver parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client fires, back to back.
    pub requests_per_client: usize,
    /// Requests per connection before the client closes it and dials
    /// anew: `1` reproduces the old connection-per-request behavior,
    /// `0` means unlimited reuse (the server's keep-alive limits still
    /// apply). Default: unlimited.
    pub requests_per_conn: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            clients: 4,
            requests_per_client: 8,
            requests_per_conn: 0,
        }
    }
}

/// Latency percentiles over the successful (2xx) requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Slowest.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

/// What a load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests fired.
    pub requests: usize,
    /// 2xx answers.
    pub ok: usize,
    /// 429s — load the admission controller shed.
    pub shed: usize,
    /// 422s — budget breaches (expected for over-budget request mixes).
    pub over_budget: usize,
    /// Any other status or transport failure.
    pub failed: usize,
    /// Wall-clock of the whole run.
    pub wall_clock: Duration,
    /// Successful requests per second of wall clock.
    pub throughput_rps: f64,
    /// Latency percentiles over the successful requests.
    pub latency: LatencySummary,
}

/// The `p`-th percentile (0..=100) of `sorted` (ascending), by the
/// nearest-rank method. Empty input reports zero — an all-failure run
/// (e.g. a deliberate-overload phase with no 2xx at all) must summarize,
/// not panic.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarizes latencies; an empty vector (total-failure run) yields all
/// zeros rather than panicking on the max/mean of nothing.
fn summarize(mut latencies: Vec<Duration>) -> LatencySummary {
    let last = match latencies.len().checked_sub(1) {
        None => return LatencySummary::default(),
        Some(last) => last,
    };
    latencies.sort();
    let total: Duration = latencies.iter().sum();
    LatencySummary {
        p50: percentile(&latencies, 50.0),
        p90: percentile(&latencies, 90.0),
        p99: percentile(&latencies, 99.0),
        max: latencies[last],
        mean: total / latencies.len() as u32,
    }
}

/// Fires `spec.clients` concurrent clients at `addr`, each posting
/// `spec.requests_per_client` bodies drawn round-robin from `requests`
/// (`(path, body)` pairs — a *mixed* load is simply a mixed list), and
/// aggregates outcomes. Each client reuses its connection for
/// `spec.requests_per_conn` requests (0 = unlimited). Counts a 429 as
/// shed (not failed): under deliberate overload, shedding is the server
/// behaving correctly. A run where *every* request fails (server down,
/// total overload) still reports — zeros, not a panic.
pub fn run_load(addr: &str, requests: &[(String, String)], spec: &LoadSpec) -> LoadReport {
    assert!(!requests.is_empty(), "run_load needs at least one request");
    let start = Instant::now();
    let outcomes: Vec<(u16, Option<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut http = HttpClient::new(addr);
                    let mut local = Vec::with_capacity(spec.requests_per_client);
                    for i in 0..spec.requests_per_client {
                        let (path, body) =
                            &requests[(client * spec.requests_per_client + i) % requests.len()];
                        // Close on the connection's last allotted request.
                        let close =
                            spec.requests_per_conn != 0 && (i + 1) % spec.requests_per_conn == 0;
                        let sent = Instant::now();
                        match http.request("POST", path, Some(body), close) {
                            Ok(reply) => local.push((reply.status, Some(sent.elapsed()))),
                            Err(_) => local.push((0, None)),
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_clock = start.elapsed();

    let mut report = LoadReport {
        requests: outcomes.len(),
        wall_clock,
        ..Default::default()
    };
    let mut latencies = Vec::new();
    for (status, latency) in outcomes {
        match status {
            200..=299 => {
                report.ok += 1;
                if let Some(latency) = latency {
                    latencies.push(latency);
                }
            }
            429 => report.shed += 1,
            422 => report.over_budget += 1,
            _ => report.failed += 1,
        }
    }
    report.throughput_rps = if wall_clock.as_secs_f64() > 0.0 {
        report.ok as f64 / wall_clock.as_secs_f64()
    } else {
        0.0
    };
    report.latency = summarize(latencies);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 90.0), Duration::from_millis(90));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 50.0), Duration::from_millis(7));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
    }

    #[test]
    fn total_failure_runs_summarize_to_zero_without_panicking() {
        // Regression: `summarize`/`percentile` on an empty latency vector
        // (a run with zero 2xx — the deliberate-overload phase can
        // produce one) must report zeros, not panic.
        let summary = summarize(Vec::new());
        assert_eq!(summary.p50, Duration::ZERO);
        assert_eq!(summary.p99, Duration::ZERO);
        assert_eq!(summary.max, Duration::ZERO);
        assert_eq!(summary.mean, Duration::ZERO);

        // End to end: a server that refuses every connection yields an
        // all-failure report with zeroed latencies and throughput.
        let refused = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
            // Listener drops here; connections are refused from now on.
        };
        let spec = LoadSpec {
            clients: 2,
            requests_per_client: 2,
            requests_per_conn: 1,
        };
        let report = run_load(
            &refused,
            &[("/histories/x/batch".to_string(), "{}".to_string())],
            &spec,
        );
        assert_eq!(report.requests, 4);
        assert_eq!(report.ok, 0);
        assert_eq!(report.failed, 4);
        assert_eq!(report.throughput_rps, 0.0);
        assert_eq!(report.latency.p99, Duration::ZERO);
    }

    #[test]
    fn http_client_talks_to_a_plain_socket() {
        use std::io::Read;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
                .unwrap();
            request
        });
        let reply = http_post(&addr, "/x", "{}").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "ok");
        let seen = server.join().unwrap();
        assert!(seen.starts_with("POST /x HTTP/1.1\r\n"), "{seen}");
        assert!(seen.contains("Connection: close\r\n"), "{seen}");
        assert!(seen.ends_with("\r\n\r\n{}"), "{seen}");
    }

    #[test]
    fn http_client_reuses_one_connection_and_survives_interim_responses() {
        use std::io::Read;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // One accepted socket serves both requests; the second
            // response is preceded by a 100 Continue the client must
            // skip.
            let (mut s, _) = listener.accept().unwrap();
            let mut served = 0;
            let mut buf = [0u8; 2048];
            while served < 2 {
                let n = s.read(&mut buf).unwrap();
                assert!(n > 0, "client must reuse the connection");
                if served == 1 {
                    s.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").unwrap();
                }
                s.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                )
                .unwrap();
                served += 1;
            }
            served
        });
        let mut client = HttpClient::new(&addr);
        let a = client.request("POST", "/x", Some("{}"), false).unwrap();
        let b = client.request("POST", "/x", Some("{}"), false).unwrap();
        assert_eq!((a.status, b.status), (200, 200));
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn stale_reused_connections_retry_once() {
        use std::io::Read;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: answer once (keep-alive), then hang up —
            // simulating the server's idle timeout killing a parked
            // socket. The client's next request must transparently land
            // on a second connection.
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 2048];
            assert!(s.read(&mut buf).unwrap() > 0);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\na")
                .unwrap();
            drop(s);
            let (mut s, _) = listener.accept().unwrap();
            assert!(s.read(&mut buf).unwrap() > 0);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\nb")
                .unwrap();
        });
        let mut client = HttpClient::new(&addr);
        let a = client.request("POST", "/x", Some("{}"), false).unwrap();
        let b = client.request("POST", "/x", Some("{}"), false).unwrap();
        assert_eq!(a.body, "a");
        assert_eq!(b.body, "b", "retry lands on a fresh connection");
        server.join().unwrap();
    }
}
