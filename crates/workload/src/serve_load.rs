//! `serve_load`: a std-only HTTP load driver for the serving layer.
//!
//! Fires concurrent batches at a running `mahif-serve` server and records
//! throughput and latency percentiles. Lives in the workload crate so both
//! the bench binary (`cargo run -p mahif-bench --bin serve_load`) and the
//! serve crate's smoke tests drive the server through the same minimal
//! client — one connection per request (the server is
//! `Connection: close`), blocking I/O, no dependencies.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// An HTTP exchange's outcome.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code of the response.
    pub status: u16,
    /// Response body (UTF-8).
    pub body: String,
}

/// Sends one HTTP request (`method path`, optional JSON body) to `addr`
/// and reads the full response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpReply { status, body })
}

/// `POST path` with a JSON body.
pub fn http_post(addr: &str, path: &str, body: &str) -> io::Result<HttpReply> {
    http_request(addr, "POST", path, Some(body))
}

/// `GET path`.
pub fn http_get(addr: &str, path: &str) -> io::Result<HttpReply> {
    http_request(addr, "GET", path, None)
}

/// Load-driver parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client fires, back to back.
    pub requests_per_client: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            clients: 4,
            requests_per_client: 8,
        }
    }
}

/// Latency percentiles over the successful (2xx) requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Slowest.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

/// What a load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests fired.
    pub requests: usize,
    /// 2xx answers.
    pub ok: usize,
    /// 429s — load the admission controller shed.
    pub shed: usize,
    /// 422s — budget breaches (expected for over-budget request mixes).
    pub over_budget: usize,
    /// Any other status or transport failure.
    pub failed: usize,
    /// Wall-clock of the whole run.
    pub wall_clock: Duration,
    /// Successful requests per second of wall clock.
    pub throughput_rps: f64,
    /// Latency percentiles over the successful requests.
    pub latency: LatencySummary,
}

/// The `p`-th percentile (0..=100) of `sorted` (ascending), by the
/// nearest-rank method. Empty input reports zero.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(mut latencies: Vec<Duration>) -> LatencySummary {
    if latencies.is_empty() {
        return LatencySummary::default();
    }
    latencies.sort();
    let total: Duration = latencies.iter().sum();
    LatencySummary {
        p50: percentile(&latencies, 50.0),
        p90: percentile(&latencies, 90.0),
        p99: percentile(&latencies, 99.0),
        max: *latencies.last().expect("non-empty"),
        mean: total / latencies.len() as u32,
    }
}

/// Fires `spec.clients` concurrent clients at `addr`, each posting
/// `spec.requests_per_client` bodies drawn round-robin from `requests`
/// (`(path, body)` pairs — a *mixed* load is simply a mixed list), and
/// aggregates outcomes. Counts a 429 as shed (not failed): under
/// deliberate overload, shedding is the server behaving correctly.
pub fn run_load(addr: &str, requests: &[(String, String)], spec: &LoadSpec) -> LoadReport {
    assert!(!requests.is_empty(), "run_load needs at least one request");
    let start = Instant::now();
    let outcomes: Vec<(u16, Option<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(spec.requests_per_client);
                    for i in 0..spec.requests_per_client {
                        let (path, body) =
                            &requests[(client * spec.requests_per_client + i) % requests.len()];
                        let sent = Instant::now();
                        match http_post(addr, path, body) {
                            Ok(reply) => local.push((reply.status, Some(sent.elapsed()))),
                            Err(_) => local.push((0, None)),
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_clock = start.elapsed();

    let mut report = LoadReport {
        requests: outcomes.len(),
        wall_clock,
        ..Default::default()
    };
    let mut latencies = Vec::new();
    for (status, latency) in outcomes {
        match status {
            200..=299 => {
                report.ok += 1;
                if let Some(latency) = latency {
                    latencies.push(latency);
                }
            }
            429 => report.shed += 1,
            422 => report.over_budget += 1,
            _ => report.failed += 1,
        }
    }
    report.throughput_rps = if wall_clock.as_secs_f64() > 0.0 {
        report.ok as f64 / wall_clock.as_secs_f64()
    } else {
        0.0
    };
    report.latency = summarize(latencies);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 90.0), Duration::from_millis(90));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 50.0), Duration::from_millis(7));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
    }

    #[test]
    fn http_client_talks_to_a_plain_socket() {
        use std::io::Read;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
                .unwrap();
            request
        });
        let reply = http_post(&addr, "/x", "{}").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "ok");
        let seen = server.join().unwrap();
        assert!(seen.starts_with("POST /x HTTP/1.1\r\n"), "{seen}");
        assert!(seen.ends_with("\r\n\r\n{}"), "{seen}");
    }
}
