//! Columnar encoding of a [`Relation`]: per-attribute typed columns over the
//! compact value encoding of [`mahif_expr::vector`].
//!
//! The row [`Relation`] stays the API/wire type; [`Relation::to_columnar`]
//! and [`ColumnarRelation::to_rows`] convert losslessly at the engine
//! boundary. Conversion is *fallible* by design: a column whose values mix
//! runtime types (legal in the row model, where a `Value` is self-describing)
//! has no typed encoding, and the engine simply keeps such relations on the
//! row path.

use std::sync::Arc;

use mahif_expr::vector::{BatchSchema, Column, StrPool, VType};

use crate::relation::Relation;
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// A relation stored column-wise: one typed [`Column`] (with validity bitmap)
/// per attribute, strings interned into a shared [`StrPool`].
///
/// Columns are `Arc`-shared so consumers (reenactment batches) can pass
/// untouched columns through statements without copying.
#[derive(Debug, Clone)]
pub struct ColumnarRelation {
    /// The row schema this encoding was derived from.
    pub schema: SchemaRef,
    /// One column per attribute, in schema order.
    pub columns: Vec<Arc<Column>>,
    /// Interned strings the columns index into.
    pub pool: StrPool,
    len: usize,
}

impl ColumnarRelation {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column names and *runtime* types (which may differ from the declared
    /// schema dtypes when the data does).
    pub fn batch_schema(&self) -> BatchSchema {
        BatchSchema::new(
            self.schema
                .attributes
                .iter()
                .zip(&self.columns)
                .map(|(a, c)| (a.name.clone(), c.vtype()))
                .collect(),
        )
    }

    /// True when every column's runtime type matches its declared schema
    /// dtype (all-NULL columns match anything).
    pub fn matches_declared_types(&self) -> bool {
        use mahif_expr::DataType;
        self.schema
            .attributes
            .iter()
            .zip(&self.columns)
            .all(|(a, c)| {
                matches!(
                    (a.dtype, c.vtype()),
                    (_, VType::Null)
                        | (DataType::Int, VType::Int)
                        | (DataType::Str, VType::Str)
                        | (DataType::Bool, VType::Bool)
                )
            })
    }

    /// Decode back into a row [`Relation`] (lossless: values compare and hash
    /// identically to the originals; strings come back as clones of the
    /// pooled `Arc<str>`s).
    pub fn to_rows(&self) -> Relation {
        let tuples = (0..self.len)
            .map(|i| {
                Tuple::new(
                    self.columns
                        .iter()
                        .map(|c| c.value_at(i, &self.pool))
                        .collect(),
                )
            })
            .collect();
        Relation::new(Arc::clone(&self.schema), tuples)
            .expect("columnar rows match their own schema arity")
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let cells = self.len * self.columns.len();
        cells * 9 + self.pool.len() * 24
    }
}

impl Relation {
    /// Encode this relation column-wise. Returns `None` when some column
    /// mixes runtime types and therefore has no typed encoding; callers keep
    /// such relations on the row path.
    pub fn to_columnar(&self) -> Option<ColumnarRelation> {
        let mut pool = StrPool::new();
        let mut columns = Vec::with_capacity(self.schema.attributes.len());
        for c in 0..self.schema.attributes.len() {
            let col = Column::from_values(self.iter().map(|t| &t.values[c]), &mut pool)?;
            columns.push(Arc::new(col));
        }
        Some(ColumnarRelation {
            schema: Arc::clone(&self.schema),
            columns,
            pool,
            len: self.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use mahif_expr::{DataType, Value};

    fn sample() -> Relation {
        let schema = Schema::shared(
            "orders",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("country", DataType::Str),
                Attribute::new("fee", DataType::Int),
            ],
        );
        let mut r = Relation::empty(schema);
        r.insert_values([Value::int(1), Value::str("UK"), Value::int(20)])
            .unwrap();
        r.insert_values([Value::int(2), Value::str("US"), Value::Null])
            .unwrap();
        r.insert_values([Value::Null, Value::str("UK"), Value::int(7)])
            .unwrap();
        r.insert_values([Value::int(4), Value::Null, Value::int(0)])
            .unwrap();
        r
    }

    #[test]
    fn round_trip_is_lossless_and_ordered() {
        let r = sample();
        let c = r.to_columnar().expect("homogeneous columns");
        assert_eq!(c.len(), 4);
        let back = c.to_rows();
        assert_eq!(back, r);
        // Repeated strings share one pooled entry.
        assert_eq!(c.pool.len(), 2);
        assert!(c.matches_declared_types());
    }

    #[test]
    fn mixed_type_column_refuses_encoding() {
        let schema = Schema::shared("t", vec![Attribute::new("x", DataType::Int)]);
        let mut r = Relation::empty(schema);
        r.insert_values([Value::int(1)]).unwrap();
        r.insert_values([Value::str("oops")]).unwrap();
        assert!(r.to_columnar().is_none());
    }

    #[test]
    fn runtime_type_drift_is_detected() {
        // Declared Int but stored as Str: encodes fine, but the drift is
        // visible to callers that need declared/runtime agreement.
        let schema = Schema::shared("t", vec![Attribute::new("x", DataType::Int)]);
        let mut r = Relation::empty(schema);
        r.insert_values([Value::str("a")]).unwrap();
        let c = r.to_columnar().unwrap();
        assert!(!c.matches_declared_types());
    }

    #[test]
    fn empty_and_all_null_relations_encode() {
        let schema = Schema::shared("t", vec![Attribute::new("x", DataType::Int)]);
        let r = Relation::empty(Arc::clone(&schema));
        let c = r.to_columnar().unwrap();
        assert!(c.is_empty());
        assert_eq!(c.to_rows(), r);

        let mut nulls = Relation::empty(schema);
        nulls.insert_values([Value::Null]).unwrap();
        nulls.insert_values([Value::Null]).unwrap();
        let c = nulls.to_columnar().unwrap();
        assert!(c.matches_declared_types());
        assert_eq!(c.to_rows(), nulls);
    }
}
