//! Tuples and tuple-based expression bindings.

use std::cmp::Ordering;
use std::fmt;

use mahif_expr::{Bindings, Value};

use crate::schema::Schema;

/// A tuple: an ordered list of values matching some schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Attribute values in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple from anything convertible into values.
    pub fn from_iter_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Tuple arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `idx`.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Deterministic total order over tuples of equal arity (NULLs first),
    /// used for stable output of deltas and test assertions.
    pub fn total_cmp(&self, other: &Tuple) -> Ordering {
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            let ord = a.total_cmp(b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.values.len().cmp(&other.values.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// [`Bindings`] implementation that resolves attribute references against a
/// tuple using a schema for name→position lookup. This is how update
/// conditions `θ(t)` and `Set(t)` expressions are evaluated (Equations 1–4 of
/// the paper).
pub struct TupleBindings<'a> {
    schema: &'a Schema,
    tuple: &'a Tuple,
}

impl<'a> TupleBindings<'a> {
    /// Creates bindings for `tuple` interpreted under `schema`.
    pub fn new(schema: &'a Schema, tuple: &'a Tuple) -> Self {
        TupleBindings { schema, tuple }
    }
}

impl Bindings for TupleBindings<'_> {
    fn attr(&self, name: &str) -> Option<Value> {
        let idx = self.schema.index_of(name)?;
        self.tuple.value(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use mahif_expr::builder::*;
    use mahif_expr::eval_expr;

    fn schema() -> Schema {
        Schema::new(
            "Order",
            vec![
                Attribute::int("ID"),
                Attribute::str("Country"),
                Attribute::int("Price"),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = Tuple::from_iter_values([Value::int(11), Value::str("UK"), Value::int(20)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(0), Some(&Value::int(11)));
        assert_eq!(t.value(5), None);
    }

    #[test]
    fn display() {
        let t = Tuple::from_iter_values([Value::int(1), Value::str("UK")]);
        assert_eq!(t.to_string(), "(1, 'UK')");
    }

    #[test]
    fn total_cmp_is_lexicographic() {
        let a = Tuple::from_iter_values([Value::int(1), Value::int(2)]);
        let b = Tuple::from_iter_values([Value::int(1), Value::int(3)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(b.total_cmp(&a), Ordering::Greater);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bindings_resolve_by_name() {
        let s = schema();
        let t = Tuple::from_iter_values([Value::int(11), Value::str("UK"), Value::int(20)]);
        let bind = TupleBindings::new(&s, &t);
        assert_eq!(
            eval_expr(&eq(attr("Country"), slit("UK")), &bind).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_expr(&add(attr("Price"), lit(5)), &bind).unwrap(),
            Value::int(25)
        );
        assert!(eval_expr(&attr("Missing"), &bind).is_err());
    }
}
