//! Storage-level errors.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced relation does not exist in the database.
    UnknownRelation(String),
    /// The referenced attribute does not exist in the schema.
    UnknownAttribute {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Expected arity (schema width).
        expected: usize,
        /// Actual tuple arity.
        actual: usize,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// The requested database version does not exist.
    UnknownVersion {
        /// Requested version.
        requested: usize,
        /// Number of available versions.
        available: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "unknown attribute `{attribute}` in relation `{relation}`"
            ),
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: expected {expected}, got {actual}"
            ),
            StorageError::DuplicateRelation(r) => write!(f, "relation `{r}` already exists"),
            StorageError::UnknownVersion {
                requested,
                available,
            } => write!(
                f,
                "unknown database version {requested} (only {available} versions recorded)"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StorageError::UnknownRelation("Order".into())
            .to_string()
            .contains("Order"));
        assert!(StorageError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains("expected 3"));
        assert!(StorageError::UnknownVersion {
            requested: 9,
            available: 2
        }
        .to_string()
        .contains("9"));
    }
}
