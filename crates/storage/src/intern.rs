//! String value interning: deduplicate repeated `Value::Str` payloads behind
//! shared `Arc<str>`s.
//!
//! `Value::str` allocates a fresh `Arc<str>` per call, so a 100k-row relation
//! whose `Country` column holds twenty distinct countries carries 100k
//! separate heap strings. Registration runs every relation (and every
//! `INSERT`ed tuple of the history) through a [`StringInterner`] so equal
//! strings share one allocation — smaller resident size, pointer-level
//! sharing with the columnar string pool, and faster equality in the common
//! `Arc::ptr_eq` case.
//!
//! Interning is invisible to semantics: `Value`'s `Eq`/`Hash`/`total_cmp` are
//! content-based (see the regression test), so interned and non-interned
//! representations agree everywhere tuples are compared, hashed, or sorted.

use std::collections::HashSet;
use std::sync::Arc;

use mahif_expr::Value;

use crate::database::Database;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// Deduplicates `Arc<str>` payloads of [`Value::Str`] in place.
#[derive(Debug, Default)]
pub struct StringInterner {
    set: HashSet<Arc<str>>,
}

impl StringInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical shared `Arc` for `s` (first sighting becomes canonical).
    pub fn canonical(&mut self, s: &Arc<str>) -> Arc<str> {
        if let Some(existing) = self.set.get(s) {
            Arc::clone(existing)
        } else {
            self.set.insert(Arc::clone(s));
            Arc::clone(s)
        }
    }

    /// Rewrite a value's string payload to the canonical `Arc`.
    pub fn intern_value(&mut self, v: &mut Value) {
        if let Value::Str(s) = v {
            *s = self.canonical(s);
        }
    }

    /// Intern every value of a tuple.
    pub fn intern_tuple(&mut self, t: &mut Tuple) {
        for v in &mut t.values {
            self.intern_value(v);
        }
    }

    /// Intern every tuple of a relation.
    pub fn intern_relation(&mut self, r: &mut Relation) {
        for t in r.tuples_mut() {
            self.intern_tuple(t);
        }
    }

    /// Intern every relation of a database.
    pub fn intern_database(&mut self, db: &mut Database) {
        for name in db.relation_names() {
            if let Ok(r) = db.relation_mut(&name) {
                self.intern_relation(r);
            }
        }
    }

    /// Number of distinct strings seen.
    pub fn distinct(&self) -> usize {
        self.set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use mahif_expr::DataType;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_shares_allocations_without_changing_semantics() {
        let schema = Schema::shared(
            "t",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("country", DataType::Str),
            ],
        );
        let mut r = Relation::empty(schema);
        for i in 0..4 {
            // Each Value::str allocates a fresh Arc<str>.
            r.insert_values([Value::int(i), Value::str("UK")]).unwrap();
            r.insert_values([Value::int(i), Value::str("US")]).unwrap();
        }
        let before = r.clone();

        let mut interner = StringInterner::new();
        let mut interned = r;
        interner.intern_relation(&mut interned);
        assert_eq!(interner.distinct(), 2);

        // Pointer-level sharing across tuples after interning…
        let arcs: Vec<&Arc<str>> = interned
            .iter()
            .filter_map(|t| match &t.values[1] {
                Value::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(arcs
            .iter()
            .any(|a| Arc::ptr_eq(a, arcs[0]) && !std::ptr::eq(*a, arcs[0])));
        let uk: Vec<&Arc<str>> = arcs.iter().copied().filter(|a| &***a == "UK").collect();
        assert!(uk.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])));

        // …while Eq, Hash, and total_cmp all agree with the pre-interning
        // representation, tuple by tuple.
        assert_eq!(interned, before);
        for (a, b) in interned.iter().zip(before.iter()) {
            assert_eq!(a, b);
            assert_eq!(hash_of(a), hash_of(b));
            assert_eq!(a.total_cmp(b), std::cmp::Ordering::Equal);
        }
        // Sorted order (the delta path's comparator) is unchanged too.
        assert_eq!(interned.sorted_tuples(), before.sorted_tuples());
    }

    #[test]
    fn database_interning_covers_all_relations() {
        let schema_a = Schema::shared("a", vec![Attribute::new("s", DataType::Str)]);
        let schema_b = Schema::shared("b", vec![Attribute::new("s", DataType::Str)]);
        let mut db = Database::new();
        let mut ra = Relation::empty(schema_a);
        ra.insert_values([Value::str("shared")]).unwrap();
        let mut rb = Relation::empty(schema_b);
        rb.insert_values([Value::str("shared")]).unwrap();
        db.add_relation(ra).unwrap();
        db.add_relation(rb).unwrap();

        let mut interner = StringInterner::new();
        interner.intern_database(&mut db);
        assert_eq!(interner.distinct(), 1);
        let get = |name: &str| match &db.relation(name).unwrap().iter().next().unwrap().values[0] {
            Value::Str(s) => Arc::clone(s),
            _ => unreachable!(),
        };
        assert!(Arc::ptr_eq(&get("a"), &get("b")));
    }
}
