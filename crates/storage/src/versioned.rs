//! Versioned databases — the "time travel" substrate.
//!
//! The paper assumes the backend DBMS supports time travel so that the state
//! `D` of the database *before* the first modified statement can be accessed
//! (Section 1, Section 4). A [`VersionedDatabase`] records a snapshot of the
//! database after every statement of the transactional history: version `0`
//! is the initial state, version `i` is the state after the `i`-th statement
//! (`D_i = H_i(D)` in the paper's notation).
//!
//! Snapshots are full copies. This is deliberate: the naive algorithm's cost
//! of copying data is part of what the paper measures, and cheap structural
//! sharing would distort that comparison. The optimized (reenactment-based)
//! algorithms only ever read two snapshots: the initial one and the latest.

use crate::database::Database;
use crate::error::StorageError;

/// A database plus the history of its past states.
#[derive(Debug, Clone, Default)]
pub struct VersionedDatabase {
    versions: Vec<Database>,
}

impl VersionedDatabase {
    /// Starts version tracking from an initial database state (version 0).
    pub fn new(initial: Database) -> Self {
        VersionedDatabase {
            versions: vec![initial],
        }
    }

    /// Number of recorded versions (at least 1).
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Index of the newest version.
    pub fn current_version(&self) -> usize {
        self.versions.len() - 1
    }

    /// The newest database state.
    pub fn current(&self) -> &Database {
        self.versions
            .last()
            .expect("a versioned database always has at least one version")
    }

    /// Time travel: the database state at `version` (0 = initial state).
    pub fn at(&self, version: usize) -> Result<&Database, StorageError> {
        self.versions
            .get(version)
            .ok_or(StorageError::UnknownVersion {
                requested: version,
                available: self.versions.len(),
            })
    }

    /// Records a new version (the state after executing one more statement).
    pub fn push_version(&mut self, db: Database) {
        self.versions.push(db);
    }

    /// The initial state (version 0) — `D` in the paper's notation.
    pub fn initial(&self) -> &Database {
        &self.versions[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{Attribute, Schema};
    use mahif_expr::Value;

    fn db_with_price(p: i64) -> Database {
        let schema = Schema::shared("R", vec![Attribute::int("Price")]);
        let mut r = Relation::empty(schema);
        r.insert_values([Value::int(p)]).unwrap();
        let mut d = Database::new();
        d.add_relation(r).unwrap();
        d
    }

    #[test]
    fn versions_accumulate() {
        let mut v = VersionedDatabase::new(db_with_price(10));
        assert_eq!(v.version_count(), 1);
        v.push_version(db_with_price(20));
        v.push_version(db_with_price(30));
        assert_eq!(v.version_count(), 3);
        assert_eq!(v.current_version(), 2);
    }

    #[test]
    fn time_travel_returns_old_states() {
        let mut v = VersionedDatabase::new(db_with_price(10));
        v.push_version(db_with_price(20));
        let initial = v.at(0).unwrap();
        assert_eq!(
            initial.relation("R").unwrap().tuples[0].value(0),
            Some(&Value::int(10))
        );
        let current = v.current();
        assert_eq!(
            current.relation("R").unwrap().tuples[0].value(0),
            Some(&Value::int(20))
        );
        assert_eq!(v.initial(), v.at(0).unwrap());
    }

    #[test]
    fn unknown_version_errors() {
        let v = VersionedDatabase::new(db_with_price(10));
        assert!(matches!(
            v.at(5),
            Err(StorageError::UnknownVersion { requested: 5, .. })
        ));
    }
}
