//! # mahif-storage
//!
//! The in-memory relational storage substrate of Mahif-rs.
//!
//! The paper's system is a middleware on top of PostgreSQL and relies on the
//! backend for (a) storing relations, (b) evaluating queries, and (c) *time
//! travel* — access to the database state as of the start of the
//! transactional history. This crate replaces (a) and (c):
//!
//! * [`Schema`], [`Tuple`], [`Relation`] — bag-semantics relations over the
//!   value domain of [`mahif_expr::Value`];
//! * [`Database`] — a named collection of relations;
//! * [`VersionedDatabase`] — a database with a snapshot per history position,
//!   which is how the "time travel" access to `D` (the state before the first
//!   modified statement) is provided to the what-if engine.
//!
//! Query evaluation (b) lives in `mahif-query`.

#![forbid(unsafe_code)]

pub mod columnar;
pub mod database;
pub mod error;
pub mod intern;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod versioned;

pub use columnar::ColumnarRelation;
pub use database::Database;
pub use error::StorageError;
pub use intern::StringInterner;
pub use relation::Relation;
pub use schema::{Attribute, Schema, SchemaRef};
pub use tuple::{Tuple, TupleBindings};
pub use versioned::VersionedDatabase;
