//! Database instances: named collections of relations.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::SchemaRef;

/// A database instance `D`: a set of named relations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a relation; errors when a relation with the same name exists.
    pub fn add_relation(&mut self, relation: Relation) -> Result<(), StorageError> {
        let name = relation.schema.relation.clone();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Adds an empty relation with the given schema.
    pub fn create_relation(&mut self, schema: SchemaRef) -> Result<(), StorageError> {
        self.add_relation(Relation::empty(schema))
    }

    /// Replaces (or inserts) a relation unconditionally.
    pub fn put_relation(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema.relation.clone(), relation);
    }

    /// The relation with the given name.
    pub fn relation(&self, name: &str) -> Result<&Relation, StorageError> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation, StorageError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// True when a relation with this name exists.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations (sorted).
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterator over `(name, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// True when both databases contain the same relations with the same
    /// tuple *sets* (order and duplicates ignored).
    pub fn set_eq(&self, other: &Database) -> bool {
        if self.relation_names() != other.relation_names() {
            return false;
        }
        self.relations
            .iter()
            .all(|(name, rel)| other.relations.get(name).is_some_and(|o| rel.set_eq(o)))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use mahif_expr::Value;

    fn db() -> Database {
        let schema = Schema::shared("Order", vec![Attribute::int("ID"), Attribute::int("Price")]);
        let mut r = Relation::empty(schema);
        r.insert_values([Value::int(1), Value::int(20)]).unwrap();
        r.insert_values([Value::int(2), Value::int(50)]).unwrap();
        let mut d = Database::new();
        d.add_relation(r).unwrap();
        d
    }

    #[test]
    fn add_and_get() {
        let d = db();
        assert!(d.has_relation("Order"));
        assert_eq!(d.relation("Order").unwrap().len(), 2);
        assert!(d.relation("Missing").is_err());
        assert_eq!(d.relation_count(), 1);
        assert_eq!(d.total_tuples(), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut d = db();
        let schema = Schema::shared("Order", vec![Attribute::int("X")]);
        assert!(matches!(
            d.create_relation(schema),
            Err(StorageError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn put_relation_overwrites() {
        let mut d = db();
        let schema = Schema::shared("Order", vec![Attribute::int("X")]);
        d.put_relation(Relation::empty(schema));
        assert_eq!(d.relation("Order").unwrap().len(), 0);
    }

    #[test]
    fn relation_mut_allows_updates() {
        let mut d = db();
        d.relation_mut("Order")
            .unwrap()
            .insert_values([Value::int(3), Value::int(30)])
            .unwrap();
        assert_eq!(d.relation("Order").unwrap().len(), 3);
    }

    #[test]
    fn set_eq_semantics() {
        let a = db();
        let mut b = db();
        assert!(a.set_eq(&b));
        b.relation_mut("Order")
            .unwrap()
            .insert_values([Value::int(1), Value::int(20)])
            .unwrap();
        // duplicate tuple does not change the set
        assert!(a.set_eq(&b));
        b.relation_mut("Order")
            .unwrap()
            .insert_values([Value::int(9), Value::int(9)])
            .unwrap();
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn relation_names_sorted() {
        let mut d = db();
        d.create_relation(Schema::shared("Customer", vec![Attribute::int("ID")]))
            .unwrap();
        assert_eq!(d.relation_names(), vec!["Customer", "Order"]);
    }
}
