//! Relation schemas `Sch(R)`.

use std::fmt;
use std::sync::Arc;

use mahif_expr::DataType;

use crate::error::StorageError;

/// A single attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub dtype: DataType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
        }
    }

    /// Integer attribute shorthand.
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::new(name, DataType::Int)
    }

    /// String attribute shorthand.
    pub fn str(name: impl Into<String>) -> Self {
        Attribute::new(name, DataType::Str)
    }
}

/// Shared schema handle. Relations, tuples bindings and query plans all hold
/// a reference to the same schema allocation.
pub type SchemaRef = Arc<Schema>;

/// The schema of a relation: a relation name plus an ordered list of typed
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Relation name.
    pub relation: String,
    /// Ordered attributes.
    pub attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(relation: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Schema {
            relation: relation.into(),
            attributes,
        }
    }

    /// Creates a shared schema handle.
    pub fn shared(relation: impl Into<String>, attributes: Vec<Attribute>) -> SchemaRef {
        Arc::new(Self::new(relation, attributes))
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in schema order.
    pub fn attribute_names(&self) -> Vec<String> {
        self.attributes.iter().map(|a| a.name.clone()).collect()
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Index of the attribute, as a [`StorageError`] on failure.
    pub fn require_index(&self, name: &str) -> Result<usize, StorageError> {
        self.index_of(name)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: self.relation.clone(),
                attribute: name.to_string(),
            })
    }

    /// The attribute with the given name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Returns a copy of this schema under a different relation name. Used by
    /// the naive algorithm which copies relations under fresh names to avoid
    /// clashes (Section 4).
    pub fn renamed(&self, new_relation: impl Into<String>) -> Schema {
        Schema {
            relation: new_relation.into(),
            attributes: self.attributes.clone(),
        }
    }

    /// True when both schemas have the same attribute list (names and types),
    /// regardless of the relation name. Union compatibility check.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.attributes.len() == other.attributes.len()
            && self
                .attributes
                .iter()
                .zip(other.attributes.iter())
                .all(|(a, b)| a.dtype == b.dtype)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_schema() -> Schema {
        Schema::new(
            "Order",
            vec![
                Attribute::int("ID"),
                Attribute::str("Customer"),
                Attribute::str("Country"),
                Attribute::int("Price"),
                Attribute::int("ShippingFee"),
            ],
        )
    }

    #[test]
    fn arity_and_lookup() {
        let s = order_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.index_of("Price"), Some(3));
        assert_eq!(s.index_of("Missing"), None);
        assert!(s.require_index("Missing").is_err());
        assert_eq!(s.attribute("Country").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn attribute_names_order() {
        let s = order_schema();
        assert_eq!(
            s.attribute_names(),
            vec!["ID", "Customer", "Country", "Price", "ShippingFee"]
        );
    }

    #[test]
    fn renamed_keeps_attributes() {
        let s = order_schema();
        let r = s.renamed("Order_copy");
        assert_eq!(r.relation, "Order_copy");
        assert_eq!(r.attributes, s.attributes);
    }

    #[test]
    fn union_compatibility() {
        let s = order_schema();
        let r = s.renamed("Other");
        assert!(s.union_compatible(&r));
        let smaller = Schema::new("X", vec![Attribute::int("A")]);
        assert!(!s.union_compatible(&smaller));
        let difftype = Schema::new(
            "Y",
            vec![
                Attribute::str("ID"),
                Attribute::str("Customer"),
                Attribute::str("Country"),
                Attribute::int("Price"),
                Attribute::int("ShippingFee"),
            ],
        );
        assert!(!s.union_compatible(&difftype));
    }

    #[test]
    fn display_form() {
        let s = order_schema();
        let d = s.to_string();
        assert!(d.starts_with("Order("));
        assert!(d.contains("Price INT"));
        assert!(d.contains("Country TEXT"));
    }
}
