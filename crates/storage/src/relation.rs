//! Bag-semantics relations.
//!
//! The paper's formalization uses set semantics for reenactment
//! (Definition 3) but the definitions of statements (Equations 1–4) and the
//! delta are phrased over sets of tuples. We store relations as bags (the
//! order of tuples is an implementation detail) and provide both bag and set
//! style operations; the delta computation in `mahif-history` uses the
//! set-style operations, matching the paper.

use std::collections::HashMap;
use std::fmt;

use mahif_expr::Value;

use crate::error::StorageError;
use crate::schema::{Schema, SchemaRef};
use crate::tuple::Tuple;

/// A relation instance: a schema plus a bag of tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation's schema.
    pub schema: SchemaRef,
    /// The tuples (bag semantics; order not meaningful).
    pub tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from a schema and tuples, validating arity.
    pub fn new(schema: SchemaRef, tuples: Vec<Tuple>) -> Result<Self, StorageError> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(StorageError::ArityMismatch {
                    relation: schema.relation.clone(),
                    expected: schema.arity(),
                    actual: t.arity(),
                });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Number of tuples (bag cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterator over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Mutable iterator over tuples (values only — arity cannot change
    /// through an iterator), used by in-place string interning.
    pub fn tuples_mut(&mut self) -> impl Iterator<Item = &mut Tuple> {
        self.tuples.iter_mut()
    }

    /// Appends a tuple, validating arity.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), StorageError> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.relation.clone(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Appends a tuple built from convertible values.
    pub fn insert_values<I, V>(&mut self, values: I) -> Result<(), StorageError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.insert(Tuple::from_iter_values(values))
    }

    /// Returns the distinct tuples of this relation (set projection of the
    /// bag), preserving first-occurrence order.
    pub fn distinct(&self) -> Relation {
        let mut seen: HashMap<&Tuple, ()> = HashMap::with_capacity(self.tuples.len());
        let mut out = Vec::new();
        for t in &self.tuples {
            if seen.insert(t, ()).is_none() {
                out.push(t.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            tuples: out,
        }
    }

    /// Multiplicity map: tuple → number of occurrences.
    pub fn counts(&self) -> HashMap<&Tuple, usize> {
        let mut m: HashMap<&Tuple, usize> = HashMap::with_capacity(self.tuples.len());
        for t in &self.tuples {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    }

    /// Set membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.iter().any(|t| t == tuple)
    }

    /// Set-semantics difference `self − other`: distinct tuples of `self`
    /// that do not occur in `other`. This is the building block of the delta
    /// queries of Section 4/5.2.
    pub fn set_difference(&self, other: &Relation) -> Relation {
        let other_set: HashMap<&Tuple, ()> = other.tuples.iter().map(|t| (t, ())).collect();
        let mut seen: HashMap<&Tuple, ()> = HashMap::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            if !other_set.contains_key(t) && seen.insert(t, ()).is_none() {
                out.push(t.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            tuples: out,
        }
    }

    /// Bag union of two union-compatible relations (keeps the left schema).
    pub fn union_all(&self, other: &Relation) -> Result<Relation, StorageError> {
        if !self.schema.union_compatible(&other.schema) {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.relation.clone(),
                expected: self.schema.arity(),
                actual: other.schema.arity(),
            });
        }
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Returns the tuples sorted by [`Tuple::total_cmp`]; useful for stable
    /// comparisons in tests and reports.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    /// Set equality: same distinct tuples regardless of order/multiplicity.
    pub fn set_eq(&self, other: &Relation) -> bool {
        let a: std::collections::HashSet<&Tuple> = self.tuples.iter().collect();
        let b: std::collections::HashSet<&Tuple> = other.tuples.iter().collect();
        a == b
    }

    /// Replaces the schema (e.g. renaming for the naive algorithm's copy).
    pub fn with_schema(&self, schema: SchemaRef) -> Result<Relation, StorageError> {
        if schema.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.relation.clone(),
                expected: schema.arity(),
                actual: self.schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            tuples: self.tuples.clone(),
        })
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", Schema::to_string(&self.schema))?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn order_schema() -> SchemaRef {
        Schema::shared(
            "Order",
            vec![
                Attribute::int("ID"),
                Attribute::str("Country"),
                Attribute::int("Price"),
            ],
        )
    }

    fn sample() -> Relation {
        let mut r = Relation::empty(order_schema());
        r.insert_values([Value::int(11), Value::str("UK"), Value::int(20)])
            .unwrap();
        r.insert_values([Value::int(12), Value::str("UK"), Value::int(50)])
            .unwrap();
        r.insert_values([Value::int(13), Value::str("US"), Value::int(60)])
            .unwrap();
        r
    }

    #[test]
    fn insert_and_len() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Relation::empty(order_schema()).is_empty());
    }

    #[test]
    fn arity_validation() {
        let mut r = Relation::empty(order_schema());
        let err = r.insert(Tuple::from_iter_values([Value::int(1)]));
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
        let bad = Relation::new(
            order_schema(),
            vec![Tuple::from_iter_values([Value::int(1)])],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn distinct_and_counts() {
        let mut r = sample();
        r.insert_values([Value::int(11), Value::str("UK"), Value::int(20)])
            .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct().len(), 3);
        let counts = r.counts();
        let dup = Tuple::from_iter_values([Value::int(11), Value::str("UK"), Value::int(20)]);
        assert_eq!(counts.get(&dup), Some(&2));
    }

    #[test]
    fn set_difference() {
        let a = sample();
        let mut b = sample();
        // Remove one tuple from b.
        b.tuples.remove(0);
        let d = a.set_difference(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.tuples[0].value(0), Some(&Value::int(11)));
        // difference with self is empty
        assert!(a.set_difference(&a).is_empty());
    }

    #[test]
    fn union_all_and_compatibility() {
        let a = sample();
        let b = sample();
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.len(), 6);
        let other = Relation::empty(Schema::shared("X", vec![Attribute::int("A")]));
        assert!(a.union_all(&other).is_err());
    }

    #[test]
    fn set_eq_ignores_order_and_duplicates() {
        let a = sample();
        let mut b = sample();
        b.tuples.reverse();
        b.insert_values([Value::int(13), Value::str("US"), Value::int(60)])
            .unwrap();
        assert!(a.set_eq(&b));
        b.insert_values([Value::int(99), Value::str("US"), Value::int(1)])
            .unwrap();
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn sorted_tuples_are_stable() {
        let mut r = sample();
        r.tuples.reverse();
        let sorted = r.sorted_tuples();
        assert_eq!(sorted[0].value(0), Some(&Value::int(11)));
        assert_eq!(sorted[2].value(0), Some(&Value::int(13)));
    }

    #[test]
    fn with_schema_renames() {
        let r = sample();
        let renamed_schema = Schema::shared(
            "Order_copy",
            vec![
                Attribute::int("ID"),
                Attribute::str("Country"),
                Attribute::int("Price"),
            ],
        );
        let c = r.with_schema(renamed_schema).unwrap();
        assert_eq!(c.schema.relation, "Order_copy");
        assert_eq!(c.len(), 3);
        let bad = Schema::shared("X", vec![Attribute::int("A")]);
        assert!(r.with_schema(bad).is_err());
    }

    #[test]
    fn display_contains_rows() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("Order("));
        assert!(s.contains("(11, 'UK', 20)"));
    }
}
