//! [`Poller`]: a thin, safe wrapper over the epoll syscalls — register an
//! fd with a `usize` token and an [`Interest`], then [`Poller::wait`] for
//! readiness [`Event`]s.
//!
//! Registration is **level-triggered** (the epoll default): an fd with
//! unread input keeps reporting readable on every wait, so the reactor
//! can stop reading a connection (to bound buffering) and pick the bytes
//! up later without ever missing an edge. The cost — a spin when ready
//! fds are left unserviced — is the reactor's to manage by masking
//! interest while a request is in flight.

use std::io;
use std::os::fd::{AsFd, BorrowedFd};
use std::time::Duration;

use crate::sys;

/// What readiness an fd is registered for. `EPOLLERR` and `EPOLLHUP` are
/// always reported by the kernel regardless of the mask, so an interest
/// with both flags false still learns about fatal socket states — while
/// staying silent for a peer's half-close (`EPOLLRDHUP` is subscribed
/// only with `readable`, so a reactor that has stopped reading a
/// connection is not woken in a level-triggered loop by an event it
/// cannot consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Hangup/error only (the kernel always reports those).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Input is available, the peer half-closed, or the socket errored —
    /// in every case a read will make progress (possibly to EOF/error).
    pub readable: bool,
    /// The fd can accept writes (or errored; a write surfaces it).
    pub writable: bool,
    /// `EPOLLHUP`/`EPOLLERR`: the connection is beyond saving.
    pub hangup: bool,
}

/// A reusable buffer of kernel events between waits.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("capacity", &self.buf.len())
            .field("len", &self.len)
            .finish()
    }
}

impl Events {
    /// Room for `capacity` events per wait (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            let bits = raw.events;
            Event {
                token: raw.data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the last wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance. Dropping it closes the epoll fd (registered fds are
/// unaffected beyond losing their registration).
#[derive(Debug)]
pub struct Poller {
    epfd: std::os::fd::OwnedFd,
}

impl Poller {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    fn ctl(&self, op: i32, fd: BorrowedFd<'_>, token: usize, interest: Interest) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let mut event = sys::EpollEvent {
            events: interest.bits(),
            data: token as u64,
        };
        sys::epoll_ctl_op(self.epfd.as_fd(), op, fd.as_raw_fd(), &mut event)
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn add(&self, fd: BorrowedFd<'_>, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&self, fd: BorrowedFd<'_>, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the set. Closing an fd deregisters it implicitly
    /// (when no duplicate survives), so this is only needed to keep an fd
    /// open but silent.
    pub fn delete(&self, fd: BorrowedFd<'_>) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Blocks for readiness: until at least one event, the timeout, or a
    /// signal. `None` blocks indefinitely. A signal interruption reports
    /// as `Ok` with zero events (the reactor just loops).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 0 < d < 1 ms deadline does not busy-spin,
                // and saturate far-future deadlines into "block long".
                let ms = d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                ms.min(i32::MAX as u128) as i32
            }
        };
        events.len = 0;
        match sys::epoll_wait_events(self.epfd.as_fd(), &mut events.buf, timeout_ms) {
            Ok(n) => {
                events.len = n;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_fires_when_bytes_arrive_and_not_before() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("readable event");
        assert_eq!(event.token, 7);
        assert!(event.readable);
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let (mut a, mut b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_fd(), 1, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        a.write_all(b"xyz").unwrap();

        // Two consecutive waits both report readable (level-triggered).
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
        }
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained: no more readable reports");
    }

    #[test]
    fn interest_modification_masks_and_unmasks() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_fd(), 3, Interest::READABLE).unwrap();
        a.write_all(b"pending").unwrap();
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.readable));

        // Masked: pending input no longer wakes the poller.
        poller.modify(b.as_fd(), 3, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "masked interest must not fire on input");

        // Unmasked: the still-buffered input fires again (level-trigger).
        poller.modify(b.as_fd(), 3, Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    fn peer_close_reports_readable() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_fd(), 9, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().find(|e| e.token == 9).expect("hup event");
        assert!(event.readable, "a close must surface as a readable EOF");
    }

    #[test]
    fn writable_fires_on_a_fresh_socket() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(a.as_fd(), 2, Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
    }
}
