//! A hashed timer wheel for connection deadlines (keep-alive idle,
//! header-read, body-progress). Deadlines at reactor scale are coarse —
//! tens of milliseconds of slop on a multi-second timeout is invisible —
//! so the wheel trades precision for O(1) scheduling and cheap scans.
//!
//! Cancellation is **lazy**: the wheel never removes an entry early.
//! When an entry expires the caller re-checks its own authoritative
//! per-connection deadline and simply ignores stale pops. That keeps
//! "connection finished its request, re-arm the keep-alive timer" a pure
//! push with no search.

use std::time::{Duration, Instant};

/// Default tick granularity (10 ms) — far below any serving timeout.
pub const DEFAULT_GRANULARITY: Duration = Duration::from_millis(10);
/// Default slot count: with 10 ms ticks, one rotation spans ~5.12 s.
/// Deadlines beyond the horizon stay in their slot across rotations (each
/// entry stores its absolute tick, so early pops are filtered out).
pub const DEFAULT_SLOTS: usize = 512;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tick: u64,
    token: usize,
}

/// The wheel. Single-threaded by design: it lives on the reactor thread.
#[derive(Debug)]
pub struct TimerWheel {
    origin: Instant,
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    /// The last tick fully processed by [`TimerWheel::expire_into`].
    last_tick: u64,
    /// Live entry count (including lazily-cancelled ones not yet popped).
    len: usize,
}

impl TimerWheel {
    /// A wheel starting "now" with the default geometry.
    pub fn new(origin: Instant) -> TimerWheel {
        TimerWheel::with_geometry(origin, DEFAULT_GRANULARITY, DEFAULT_SLOTS)
    }

    /// A wheel with explicit granularity and slot count (tests use a
    /// coarse/small wheel to exercise rotation wrap-around).
    pub fn with_geometry(origin: Instant, granularity: Duration, slots: usize) -> TimerWheel {
        assert!(granularity > Duration::ZERO, "granularity must be nonzero");
        assert!(slots >= 2, "wheel needs at least two slots");
        TimerWheel {
            origin,
            granularity,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            last_tick: 0,
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let elapsed = t.saturating_duration_since(self.origin);
        // Integer division floors; scheduling rounds *up* (below) so a
        // deadline never fires early by up to one granule.
        (elapsed.as_nanos() / self.granularity.as_nanos()) as u64
    }

    /// Schedules `token` to pop at `deadline` (rounded up to the next
    /// tick, and never into the already-processed past).
    pub fn schedule(&mut self, token: usize, deadline: Instant) {
        let tick = self
            .tick_of(deadline)
            .saturating_add(1)
            .max(self.last_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { tick, token });
        self.len += 1;
    }

    /// Number of scheduled entries (lazily-cancelled ones included until
    /// their tick passes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pops every entry with a tick at or before `now` into `expired`.
    /// The caller must validate each token against its authoritative
    /// deadline — a popped token may have been cancelled or re-armed.
    pub fn expire_into(&mut self, now: Instant, expired: &mut Vec<usize>) {
        let now_tick = self.tick_of(now);
        if now_tick <= self.last_tick {
            return;
        }
        // Cap the walk at one full rotation: beyond that every slot has
        // been visited once and entries with future ticks stay put.
        let slots = self.slots.len() as u64;
        let first = self.last_tick + 1;
        let walk_to = now_tick.min(self.last_tick + slots);
        for tick in first..=walk_to {
            let slot = (tick % slots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].tick <= now_tick {
                    expired.push(bucket.swap_remove(i).token);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.last_tick = now_tick;
    }

    /// How long [`Poller::wait`](crate::Poller::wait) may sleep before the
    /// next entry could pop: `None` when the wheel is empty (block
    /// indefinitely), otherwise the gap to the earliest pending slot
    /// (clamped to at least one granule so the reactor never busy-spins).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let now_tick = self.tick_of(now);
        let slots = self.slots.len() as u64;
        let mut earliest: Option<u64> = None;
        for tick in (self.last_tick + 1)..=(self.last_tick + slots) {
            let slot = (tick % slots) as usize;
            for entry in &self.slots[slot] {
                if earliest.is_none_or(|e| entry.tick < e) {
                    earliest = Some(entry.tick);
                }
            }
            // Later slots in this rotation can't hold anything earlier
            // than their own position, so once the best candidate is at
            // or before the current position the search is over. (A slot
            // may hold only beyond-horizon entries — those don't end the
            // scan, an earlier deadline could still sit in a later slot.)
            if earliest.is_some_and(|e| e <= tick) {
                break;
            }
        }
        let target = earliest.unwrap_or(now_tick + 1);
        if target <= now_tick {
            // Already due: wake after one granule (expire_into advances
            // only when the tick boundary passes).
            return Some(self.granularity);
        }
        let delta = (target - now_tick) as u32;
        Some(self.granularity * delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> (TimerWheel, Instant) {
        let origin = Instant::now();
        (
            TimerWheel::with_geometry(origin, Duration::from_millis(10), 8),
            origin,
        )
    }

    #[test]
    fn entries_pop_at_or_after_their_deadline_never_before() {
        let (mut w, origin) = wheel();
        w.schedule(1, origin + Duration::from_millis(35));
        let mut expired = Vec::new();

        w.expire_into(origin + Duration::from_millis(30), &mut expired);
        assert!(expired.is_empty(), "must not fire early");

        w.expire_into(origin + Duration::from_millis(60), &mut expired);
        assert_eq!(expired, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn beyond_horizon_deadlines_survive_rotations() {
        // 8 slots * 10ms = 80ms horizon; schedule at 250ms.
        let (mut w, origin) = wheel();
        w.schedule(5, origin + Duration::from_millis(250));
        let mut expired = Vec::new();

        // Sweep right past a full rotation: the entry's tick is in the
        // future, so it must stay put.
        w.expire_into(origin + Duration::from_millis(100), &mut expired);
        assert!(expired.is_empty());
        w.expire_into(origin + Duration::from_millis(200), &mut expired);
        assert!(expired.is_empty());

        w.expire_into(origin + Duration::from_millis(300), &mut expired);
        assert_eq!(expired, vec![5]);
    }

    #[test]
    fn large_jump_caps_walk_at_one_rotation_and_loses_nothing() {
        let (mut w, origin) = wheel();
        for token in 0..20 {
            w.schedule(
                token,
                origin + Duration::from_millis(10 * (token as u64 + 1)),
            );
        }
        let mut expired = Vec::new();
        // Jump way past everything in one step (many rotations' worth).
        w.expire_into(origin + Duration::from_secs(10), &mut expired);
        expired.sort_unstable();
        assert_eq!(expired, (0..20).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    fn next_timeout_tracks_earliest_entry() {
        let (mut w, origin) = wheel();
        assert_eq!(w.next_timeout(origin), None, "empty wheel blocks forever");

        w.schedule(1, origin + Duration::from_millis(50));
        w.schedule(2, origin + Duration::from_millis(20));
        let timeout = w.next_timeout(origin).unwrap();
        // Earliest deadline is ~20ms (rounded up one tick): the sleep
        // must cover it but not overshoot to the 50ms entry.
        assert!(timeout >= Duration::from_millis(20), "{timeout:?}");
        assert!(timeout <= Duration::from_millis(40), "{timeout:?}");
    }

    #[test]
    fn next_timeout_sees_past_beyond_horizon_entries_in_early_slots() {
        // Slot order vs deadline order can disagree: a beyond-horizon
        // entry (250ms, lands in an early slot of the 80ms wheel) must
        // not hide a sooner deadline sitting in a later slot.
        let (mut w, origin) = wheel();
        w.schedule(1, origin + Duration::from_millis(250));
        w.schedule(2, origin + Duration::from_millis(40));
        let timeout = w.next_timeout(origin).unwrap();
        assert!(timeout <= Duration::from_millis(60), "{timeout:?}");
    }

    #[test]
    fn next_timeout_is_never_zero_for_due_entries() {
        let (mut w, origin) = wheel();
        w.schedule(1, origin);
        let timeout = w.next_timeout(origin + Duration::from_millis(500)).unwrap();
        assert!(
            timeout >= Duration::from_millis(10),
            "no busy-spin: {timeout:?}"
        );
    }

    #[test]
    fn rearmed_token_pops_twice_caller_filters() {
        // Lazy cancellation contract: re-arming does not remove the old
        // entry; the token pops once per schedule call.
        let (mut w, origin) = wheel();
        w.schedule(3, origin + Duration::from_millis(20));
        w.schedule(3, origin + Duration::from_millis(40));
        let mut expired = Vec::new();
        w.expire_into(origin + Duration::from_millis(100), &mut expired);
        assert_eq!(expired, vec![3, 3]);
    }
}
