//! Process fd-limit helpers. A reactor holding thousands of idle
//! keep-alive connections needs `RLIMIT_NOFILE` headroom; load drivers
//! call [`raise_fd_limit`] before opening their client fan-out.

use std::io;

use crate::sys;

/// Ensures the soft `RLIMIT_NOFILE` is at least `min`, raising it toward
/// the hard limit if needed (no privilege required for that direction).
/// Returns the effective soft limit — possibly below `min` when the hard
/// limit caps it; callers decide whether that's fatal.
pub fn raise_fd_limit(min: u64) -> io::Result<u64> {
    let mut rlim = sys::nofile_limit()?;
    if rlim.rlim_cur >= min {
        return Ok(rlim.rlim_cur);
    }
    rlim.rlim_cur = min.min(rlim.rlim_max);
    sys::set_nofile_limit(rlim)?;
    Ok(rlim.rlim_cur)
}

/// The current soft `RLIMIT_NOFILE`.
pub fn fd_limit() -> io::Result<u64> {
    Ok(sys::nofile_limit()?.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raising_to_current_is_a_noop_and_reports_truthfully() {
        let current = fd_limit().unwrap();
        assert!(current > 0);
        let effective = raise_fd_limit(current).unwrap();
        assert_eq!(effective, current);
        // Raising to something at-or-below current must never lower it.
        let effective = raise_fd_limit(1).unwrap();
        assert_eq!(effective, current);
    }
}
