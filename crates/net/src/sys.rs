//! The raw syscall shim: `extern "C"` bindings against the C library that
//! `std` already links on Linux — **no** `libc` crate (the build
//! environment has no registry access), no inline assembly, and nothing
//! beyond the handful of calls the reactor needs: `epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, `eventfd` for the cross-thread waker, and
//! `getrlimit` / `setrlimit` so load drivers can lift the fd ceiling
//! before opening thousands of connections.
//!
//! Everything fd-shaped crosses the boundary as `std::os::fd` types
//! ([`OwnedFd`]/[`BorrowedFd`]), so ownership and close-on-drop follow the
//! standard library's rules rather than hand-rolled RAII.

use std::io;
use std::os::fd::{BorrowedFd, FromRawFd, OwnedFd, RawFd};

/// The kernel's `struct epoll_event`. On x86-64 the ABI packs it to 12
/// bytes (the 64-bit `data` is unaligned); other architectures use the
/// natural layout — the same `cfg_attr` split the `libc` crate ships.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// Caller-owned cookie (the reactor stores its token here).
    pub data: u64,
}

/// `struct rlimit` (both fields are `rlim_t`, 64-bit on every Linux ABI
/// this workspace targets).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct Rlimit {
    /// The soft limit (what the process is currently held to).
    pub rlim_cur: u64,
    /// The hard limit (the ceiling the soft limit may be raised to).
    pub rlim_max: u64,
}

pub const EPOLL_CLOEXEC: i32 = 0o2000000;
pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EFD_CLOEXEC: i32 = 0o2000000;
pub const EFD_NONBLOCK: i32 = 0o4000;

/// `RLIMIT_NOFILE` — the per-process open-file-descriptor limit.
pub const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

/// Turns a `-1` return into the thread's `errno` as an [`io::Error`].
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)` as an owned fd.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: FFI call with no pointer arguments; the kernel rejects
    // bad flags with EINVAL, which `cvt` surfaces as an error.
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    // SAFETY: a successful epoll_create1 returns a fresh fd we own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// One `epoll_ctl` call; `event` is ignored by the kernel for
/// `EPOLL_CTL_DEL` (pass anything).
pub fn epoll_ctl_op(
    epfd: BorrowedFd<'_>,
    op: i32,
    fd: RawFd,
    event: &mut EpollEvent,
) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    // SAFETY: `event` is a live `&mut EpollEvent` (repr(C), matching the
    // kernel struct), valid for the duration of the call; the fds are
    // plain integers the kernel validates.
    cvt(unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd, event) })?;
    Ok(())
}

/// One `epoll_wait` call; `timeout_ms < 0` blocks indefinitely. Returns
/// the number of events written into `events`. `EINTR` surfaces as an
/// error (callers treat it as "no events").
pub fn epoll_wait_events(
    epfd: BorrowedFd<'_>,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    use std::os::fd::AsRawFd;
    // SAFETY: the pointer/length pair comes from a live `&mut [EpollEvent]`
    // slice; the kernel writes at most `events.len()` entries into it and
    // reads nothing.
    let n = cvt(unsafe {
        epoll_wait(
            epfd.as_raw_fd(),
            events.as_mut_ptr(),
            events.len() as i32,
            timeout_ms,
        )
    })?;
    Ok(n as usize)
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)` as an owned fd.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // SAFETY: FFI call with no pointer arguments; bad flags come back as
    // EINVAL through `cvt`.
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    // SAFETY: a successful eventfd returns a fresh fd we own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Reads the current `RLIMIT_NOFILE` (soft, hard).
pub fn nofile_limit() -> io::Result<Rlimit> {
    let mut rlim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `rlim` is a live, writable `Rlimit` (repr(C), both fields
    // 64-bit as the kernel ABI expects); the kernel writes both fields.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut rlim) })?;
    Ok(rlim)
}

/// Sets `RLIMIT_NOFILE` (the soft limit may be raised up to the hard
/// limit without privilege).
pub fn set_nofile_limit(rlim: Rlimit) -> io::Result<()> {
    // SAFETY: `rlim` is a live `Rlimit` (repr(C)) the kernel only reads.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &rlim) })?;
    Ok(())
}
