//! A cross-thread [`Waker`] built on `eventfd`: worker threads call
//! [`Waker::wake`] after publishing a completion, and the reactor — which
//! keeps the eventfd registered readable in its [`Poller`](crate::Poller)
//! — wakes from `epoll_wait`, [`drain`](Waker::drain)s the counter, and
//! picks the completions up.
//!
//! The eventfd is nonblocking in both directions: `wake` never stalls a
//! worker (a saturated counter already guarantees a pending wakeup), and
//! `drain` spins only until the counter is empty.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsFd, BorrowedFd};

use crate::sys;

/// An eventfd-based wakeup channel. Clone-free by design: share it via
/// `Arc`.
#[derive(Debug)]
pub struct Waker {
    // File gives us Read/Write over the fd via &self, and closes on drop.
    fd: File,
}

impl Waker {
    /// A fresh `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)` waker.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: File::from(sys::eventfd_create()?),
        })
    }

    /// Wakes the reactor. Idempotent between drains: repeated wakes
    /// accumulate into one readiness report. Never blocks — a counter at
    /// `u64::MAX - 1` (WouldBlock) already means a wakeup is pending.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        match (&self.fd).write(&one) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            // An eventfd write can otherwise only fail on EINTR; the next
            // wake (or the saturated counter) covers us.
            Err(_) => {}
        }
    }

    /// Clears pending wakeups so the next `wake` makes the fd readable
    /// again. Call from the reactor when its token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        loop {
            match (&self.fd).read(&mut buf) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

impl AsFd for Waker {
    fn as_fd(&self) -> BorrowedFd<'_> {
        self.fd.as_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Events, Interest, Poller};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_makes_poller_return_and_drain_resets() {
        let waker = Waker::new().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(waker.as_fd(), 42, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(4);

        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no wake yet");

        waker.wake();
        waker.wake(); // coalesces
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");
    }

    #[test]
    fn wake_from_another_thread_unblocks_wait() {
        let waker = Arc::new(Waker::new().unwrap());
        let poller = Poller::new().unwrap();
        poller.add(waker.as_fd(), 0, Interest::READABLE).unwrap();
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty(), "cross-thread wake must end the wait");
        handle.join().unwrap();
    }
}
