//! Per-connection buffer machinery for a readiness-driven loop:
//! [`read_available`] pulls whatever the kernel has into a growable
//! buffer without blocking, and [`WriteQueue`] holds queued response
//! chunks across partial writes until write-readiness drains them.
//!
//! Both halves are protocol-agnostic: the serving layer decides what a
//! complete request is and what a chunk means; this module only moves
//! bytes and reports progress.

use std::io::{self, Read, Write};

/// Chunk size per `read` call; large enough to take a full request head
/// (and most bodies) in one syscall, small enough to keep per-connection
/// memory modest under fan-out.
const READ_CHUNK: usize = 16 * 1024;

/// What [`read_available`] observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadStatus {
    /// Bytes appended to the buffer by this call.
    pub read: usize,
    /// The peer closed its write half (orderly EOF).
    pub eof: bool,
    /// The kernel buffer is drained (`EWOULDBLOCK`); with level-triggered
    /// polling, `false` only when the `max` cap stopped the read early.
    pub would_block: bool,
}

/// Reads all currently-available bytes from a nonblocking `stream` into
/// `buf`, stopping at EOF, `EWOULDBLOCK`, or once `buf` holds `max`
/// bytes (backpressure: the caller masks read interest until the bytes
/// are consumed). `EINTR` retries; any other error propagates.
pub fn read_available<S: Read>(
    stream: &mut S,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<ReadStatus> {
    let mut status = ReadStatus {
        read: 0,
        eof: false,
        would_block: false,
    };
    while buf.len() < max {
        let want = READ_CHUNK.min(max - buf.len());
        let old_len = buf.len();
        buf.resize(old_len + want, 0);
        match stream.read(&mut buf[old_len..]) {
            Ok(0) => {
                buf.truncate(old_len);
                status.eof = true;
                return Ok(status);
            }
            Ok(n) => {
                buf.truncate(old_len + n);
                status.read += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                buf.truncate(old_len);
                status.would_block = true;
                return Ok(status);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                buf.truncate(old_len);
            }
            Err(e) => {
                buf.truncate(old_len);
                return Err(e);
            }
        }
    }
    Ok(status)
}

/// One queued outbound chunk plus a caller-owned tag, handed back when
/// the chunk's final byte reaches the kernel.
#[derive(Debug)]
struct Chunk<T> {
    bytes: Vec<u8>,
    pos: usize,
    tag: T,
}

/// Progress report from [`WriteQueue::flush`].
#[derive(Debug, PartialEq, Eq)]
pub struct FlushStatus<T> {
    /// Tags of chunks fully written by this flush, in queue order.
    pub completed: Vec<T>,
    /// The socket refused further bytes; re-arm write interest.
    pub would_block: bool,
}

/// An ordered queue of outbound chunks that survives partial writes.
/// The reactor keeps write interest armed exactly while the queue is
/// non-empty.
#[derive(Debug)]
pub struct WriteQueue<T> {
    chunks: std::collections::VecDeque<Chunk<T>>,
    /// Bytes not yet accepted by the kernel, across all chunks.
    pending: usize,
}

impl<T> Default for WriteQueue<T> {
    fn default() -> Self {
        WriteQueue::new()
    }
}

impl<T> WriteQueue<T> {
    /// An empty queue.
    pub fn new() -> WriteQueue<T> {
        WriteQueue {
            chunks: std::collections::VecDeque::new(),
            pending: 0,
        }
    }

    /// Appends a chunk. Empty chunks complete on the next flush without
    /// touching the socket (their tag still reports).
    pub fn push(&mut self, bytes: Vec<u8>, tag: T) {
        self.pending += bytes.len();
        self.chunks.push_back(Chunk { bytes, pos: 0, tag });
    }

    /// `true` when every queued byte has reached the kernel.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Bytes still waiting for the kernel.
    pub fn pending_bytes(&self) -> usize {
        self.pending
    }

    /// Writes as much as the socket accepts. Returns the tags of chunks
    /// completed by this call and whether the socket pushed back
    /// (`EWOULDBLOCK`). `EINTR` retries; a hard error propagates with the
    /// queue left as-is (the connection is done for anyway).
    pub fn flush<S: Write>(&mut self, stream: &mut S) -> io::Result<FlushStatus<T>> {
        let mut status = FlushStatus {
            completed: Vec::new(),
            would_block: false,
        };
        'queue: while let Some(chunk) = self.chunks.front_mut() {
            while chunk.pos < chunk.bytes.len() {
                match stream.write(&chunk.bytes[chunk.pos..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        ));
                    }
                    Ok(n) => {
                        chunk.pos += n;
                        self.pending -= n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        status.would_block = true;
                        break 'queue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            let done = self.chunks.pop_front().expect("front exists");
            status.completed.push(done.tag);
        }
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Write that accepts at most `cap` bytes per call and refuses
    /// entirely after `budget` total bytes — deterministic partial-write
    /// and EWOULDBLOCK behaviour without real sockets.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_survives_partial_writes_and_preserves_order() {
        let mut q: WriteQueue<&str> = WriteQueue::new();
        q.push(b"hello ".to_vec(), "first");
        q.push(b"world".to_vec(), "second");
        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 4,
            budget: usize::MAX,
        };
        let status = q.flush(&mut sink).unwrap();
        assert_eq!(status.completed, vec!["first", "second"]);
        assert!(!status.would_block);
        assert!(q.is_empty());
        assert_eq!(sink.accepted, b"hello world");
    }

    #[test]
    fn flush_stops_at_would_block_and_resumes_mid_chunk() {
        let mut q: WriteQueue<u32> = WriteQueue::new();
        q.push(b"0123456789".to_vec(), 1);
        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 4,
            budget: 6,
        };
        let status = q.flush(&mut sink).unwrap();
        assert!(status.completed.is_empty(), "chunk not finished");
        assert!(status.would_block);
        assert_eq!(q.pending_bytes(), 4);

        sink.budget = usize::MAX;
        let status = q.flush(&mut sink).unwrap();
        assert_eq!(status.completed, vec![1]);
        assert_eq!(sink.accepted, b"0123456789");
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn empty_chunks_complete_without_socket_traffic() {
        let mut q: WriteQueue<&str> = WriteQueue::new();
        q.push(Vec::new(), "marker");
        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 1,
            budget: 0, // would refuse any real byte
        };
        let status = q.flush(&mut sink).unwrap();
        assert_eq!(status.completed, vec!["marker"]);
        assert!(q.is_empty());
    }

    struct ScriptedReader {
        script: Vec<io::Result<Vec<u8>>>,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.script.is_empty() {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            match self.script.remove(0) {
                Ok(bytes) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    Ok(n)
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn read_available_accumulates_until_would_block() {
        let mut reader = ScriptedReader {
            script: vec![Ok(b"abc".to_vec()), Ok(b"def".to_vec())],
        };
        let mut buf = Vec::new();
        let status = read_available(&mut reader, &mut buf, 1 << 20).unwrap();
        assert_eq!(buf, b"abcdef");
        assert_eq!(status.read, 6);
        assert!(status.would_block);
        assert!(!status.eof);
    }

    #[test]
    fn read_available_reports_eof_and_keeps_prior_bytes() {
        let mut reader = ScriptedReader {
            script: vec![Ok(b"tail".to_vec()), Ok(Vec::new())],
        };
        let mut buf = b"head ".to_vec();
        let status = read_available(&mut reader, &mut buf, 1 << 20).unwrap();
        assert_eq!(buf, b"head tail");
        assert!(status.eof);
    }

    #[test]
    fn read_available_honors_cap_for_backpressure() {
        let mut reader = ScriptedReader {
            script: vec![Ok(vec![b'x'; 100]), Ok(vec![b'y'; 100])],
        };
        let mut buf = Vec::new();
        let status = read_available(&mut reader, &mut buf, 100).unwrap();
        assert_eq!(buf.len(), 100);
        assert!(!status.would_block, "cap, not socket, stopped the read");
        assert!(!status.eof);
    }

    #[test]
    fn read_available_retries_interrupted() {
        let mut reader = ScriptedReader {
            script: vec![
                Err(io::Error::from(io::ErrorKind::Interrupted)),
                Ok(b"ok".to_vec()),
            ],
        };
        let mut buf = Vec::new();
        let status = read_available(&mut reader, &mut buf, 1 << 20).unwrap();
        assert_eq!(buf, b"ok");
        assert_eq!(status.read, 2);
    }
}
