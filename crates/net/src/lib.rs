//! `mahif-net`: std-only readiness primitives for the serving layer.
//!
//! The serving tier (`mahif-serve`) historically parked one worker
//! thread per keep-alive connection, capping concurrent connections at
//! the worker count. This crate supplies the pieces a single reactor
//! thread needs to own *all* sockets instead, so the worker pool shrinks
//! to a pure CPU pool:
//!
//! - [`Poller`] — a safe, level-triggered epoll wrapper (register fds
//!   under `usize` tokens, wait for [`Event`]s),
//! - [`Waker`] — an eventfd channel so worker threads can interrupt
//!   `epoll_wait` when a response is ready,
//! - [`TimerWheel`] — coarse O(1) deadlines for keep-alive idle,
//!   header-read, and body-progress timeouts, with lazy cancellation,
//! - [`read_available`] / [`WriteQueue`] — nonblocking buffer machinery
//!   that survives short reads and partial writes,
//! - [`raise_fd_limit`] — `RLIMIT_NOFILE` headroom for thousand-socket
//!   fan-outs.
//!
//! # Design constraints
//!
//! The workspace builds with **no registry access**, so there is no
//! `libc`, `mio`, or `polling` here: [`sys`] declares the half-dozen
//! `extern "C"` bindings (epoll, eventfd, rlimit) against the C library
//! `std` already links, and every fd crosses the boundary as a
//! `std::os::fd` owned/borrowed type. Linux-only by construction — the
//! crate refuses to compile elsewhere rather than silently degrade.
//!
//! # Threading model
//!
//! One reactor thread owns the [`Poller`], the [`TimerWheel`], and every
//! connection's buffers; worker threads touch only the [`Waker`] (and
//! whatever completion queue the embedding layer shares). Nothing in
//! this crate takes a lock.

#[cfg(not(target_os = "linux"))]
compile_error!("mahif-net binds Linux epoll/eventfd syscalls and only builds on Linux");

pub mod conn;
pub mod limits;
pub mod poller;
pub mod sys;
pub mod timer;
pub mod waker;

pub use conn::{read_available, FlushStatus, ReadStatus, WriteQueue};
pub use limits::{fd_limit, raise_fd_limit};
pub use poller::{Event, Events, Interest, Poller};
pub use timer::TimerWheel;
pub use waker::Waker;
