//! Execution methods and engine configuration.

use mahif_solver::SearchConfig;
use mahif_symbolic::CompressionConfig;

/// The execution strategies compared in the paper's evaluation (Section 13.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `N`: the naïve algorithm — copy the pre-history state, execute the
    /// modified history, diff against the current state.
    Naive,
    /// `R`: reenactment only.
    Reenact,
    /// `R+DS`: reenactment with data slicing.
    ReenactDs,
    /// `R+PS`: reenactment with program slicing.
    ReenactPs,
    /// `R+PS+DS`: reenactment with both optimizations (Algorithm 2).
    ReenactPsDs,
}

impl Method {
    /// All methods, in the order used by the benchmark harness.
    pub fn all() -> [Method; 5] {
        [
            Method::Naive,
            Method::Reenact,
            Method::ReenactDs,
            Method::ReenactPs,
            Method::ReenactPsDs,
        ]
    }

    /// Short label used in reports (matches the paper's figures).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Naive => "N",
            Method::Reenact => "R",
            Method::ReenactDs => "R+DS",
            Method::ReenactPs => "R+PS",
            Method::ReenactPsDs => "R+PS+DS",
        }
    }

    /// Whether this method applies data slicing.
    pub fn uses_data_slicing(&self) -> bool {
        matches!(self, Method::ReenactDs | Method::ReenactPsDs)
    }

    /// Whether this method applies program slicing.
    pub fn uses_program_slicing(&self) -> bool {
        matches!(self, Method::ReenactPs | Method::ReenactPsDs)
    }
}

/// Tunables of the reenactment-based engine.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Database compression used by program slicing (Section 8.3.1).
    pub compression: CompressionConfig,
    /// Solver resource limits.
    pub solver: SearchConfig,
    /// Use the general greedy slicer (Section 8.3.3) instead of the
    /// optimized dependency test (Section 9).
    pub use_greedy_slicer: bool,
    /// Disable the insert-split optimization of Section 10 (inserts are then
    /// reenacted inline as unions inside the reenactment query).
    pub disable_insert_split: bool,
    /// Do not add the compressed-database constraint Φ_D to the slicing
    /// condition (ablation).
    pub skip_compression_constraint: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Method::Naive.label(), "N");
        assert_eq!(Method::ReenactPsDs.label(), "R+PS+DS");
        assert!(Method::ReenactPsDs.uses_data_slicing());
        assert!(Method::ReenactPsDs.uses_program_slicing());
        assert!(!Method::Reenact.uses_data_slicing());
        assert!(Method::ReenactDs.uses_data_slicing());
        assert!(!Method::ReenactDs.uses_program_slicing());
        assert!(Method::ReenactPs.uses_program_slicing());
        assert_eq!(Method::all().len(), 5);
    }

    #[test]
    fn default_config() {
        let c = EngineConfig::default();
        assert!(!c.use_greedy_slicer);
        assert!(!c.disable_insert_split);
        assert!(!c.skip_compression_constraint);
    }
}
