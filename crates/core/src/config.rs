//! Execution methods and engine configuration.

use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

use mahif_solver::SearchConfig;
use mahif_symbolic::CompressionConfig;

use crate::error::{BudgetBreach, Error, ErrorKind};

/// The execution strategies compared in the paper's evaluation (Section 13.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `N`: the naïve algorithm — copy the pre-history state, execute the
    /// modified history, diff against the current state.
    Naive,
    /// `R`: reenactment only.
    Reenact,
    /// `R+DS`: reenactment with data slicing.
    ReenactDs,
    /// `R+PS`: reenactment with program slicing.
    ReenactPs,
    /// `R+PS+DS`: reenactment with both optimizations (Algorithm 2).
    ReenactPsDs,
}

impl Method {
    /// All methods, in the order used by the benchmark harness.
    pub fn all() -> [Method; 5] {
        [
            Method::Naive,
            Method::Reenact,
            Method::ReenactDs,
            Method::ReenactPs,
            Method::ReenactPsDs,
        ]
    }

    /// Short label used in reports (matches the paper's figures).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Naive => "N",
            Method::Reenact => "R",
            Method::ReenactDs => "R+DS",
            Method::ReenactPs => "R+PS",
            Method::ReenactPsDs => "R+PS+DS",
        }
    }

    /// Whether this method applies data slicing.
    pub fn uses_data_slicing(&self) -> bool {
        matches!(self, Method::ReenactDs | Method::ReenactPsDs)
    }

    /// Whether this method applies program slicing.
    pub fn uses_program_slicing(&self) -> bool {
        matches!(self, Method::ReenactPs | Method::ReenactPsDs)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Method {
    type Err = Error;

    /// Parses a paper label (`N`, `R`, `R+DS`, `R+PS`, `R+PS+DS`) back into
    /// a method, so CLI flags and serving-layer request fields can name
    /// methods as the figures do. Matching is case-insensitive and ignores
    /// surrounding whitespace; the long names (`naive`, `reenact`, …) are
    /// accepted as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canonical = s.trim().to_ascii_uppercase();
        match canonical.as_str() {
            "N" | "NAIVE" => Ok(Method::Naive),
            "R" | "REENACT" => Ok(Method::Reenact),
            "R+DS" | "REENACTDS" => Ok(Method::ReenactDs),
            "R+PS" | "REENACTPS" => Ok(Method::ReenactPs),
            "R+PS+DS" | "REENACTPSDS" => Ok(Method::ReenactPsDs),
            _ => Err(Error::new(ErrorKind::UnknownMethod(s.trim().to_string()))),
        }
    }
}

/// Per-request resource budget, enforced by the session's explicit
/// *admit → plan → execute* lifecycle (see [`crate::Session::execute`]).
///
/// A budget turns a runaway request into a fast, structured failure
/// ([`ErrorKind::BudgetExceeded`]) instead of an unbounded computation — the
/// contract a serving layer needs before it can promise latency to anyone
/// else in the queue. All limits are optional; the default budget is
/// unlimited, preserving embedded-use behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of scenarios a single request may carry. Checked at
    /// admission, before any work is done.
    pub max_scenarios: Option<usize>,
    /// Maximum slicing solver calls the planning phase may spend (the
    /// request's deduplicated [`crate::BatchStats::solver_calls`]). Checked
    /// when the slices are in hand, before execution starts.
    pub max_solver_calls: Option<usize>,
    /// Wall-clock deadline for the whole request, measured from admission.
    /// Checked at every phase boundary and inside the group-plan loop, so an
    /// over-deadline batch fails between units of work instead of running to
    /// completion.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the number of scenarios per request.
    pub fn with_max_scenarios(mut self, limit: usize) -> Self {
        self.max_scenarios = Some(limit);
        self
    }

    /// Caps the slicing solver calls per request.
    pub fn with_max_solver_calls(mut self, limit: usize) -> Self {
        self.max_solver_calls = Some(limit);
        self
    }

    /// Sets the wall-clock deadline per request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_scenarios.is_none() && self.max_solver_calls.is_none() && self.deadline.is_none()
    }

    /// The field-wise minimum of this budget and `ceiling`: for each limit,
    /// whichever is stricter wins, and a limit only one side sets applies.
    /// Serving layers use this to impose an operator-side ceiling over
    /// client-supplied budgets — a client omitting its budget must not get
    /// an unlimited one.
    pub fn capped_by(self, ceiling: &Budget) -> Budget {
        fn stricter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        Budget {
            max_scenarios: stricter(self.max_scenarios, ceiling.max_scenarios),
            max_solver_calls: stricter(self.max_solver_calls, ceiling.max_solver_calls),
            deadline: stricter(self.deadline, ceiling.deadline),
        }
    }

    /// Starts the wall clock on this budget's deadline (if any). Called once
    /// at admission; the resulting [`Deadline`] is threaded through the
    /// planning and execution phases.
    pub fn start_clock(&self) -> Option<Deadline> {
        self.deadline.map(Deadline::after)
    }
}

/// An armed wall-clock deadline, derived from [`Budget::deadline`] at
/// admission and threaded into the engine (including the group-plan loop)
/// so long-running shared work fails fast with a structured
/// [`ErrorKind::BudgetExceeded`].
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    limit: Duration,
}

impl Deadline {
    /// Arms a deadline `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Deadline {
            started: Instant::now(),
            limit,
        }
    }

    /// True when the deadline has passed.
    pub fn expired(&self) -> bool {
        self.started.elapsed() >= self.limit
    }

    /// Errors with [`ErrorKind::BudgetExceeded`] when the deadline has
    /// passed.
    pub fn check(&self) -> Result<(), Error> {
        let elapsed = self.started.elapsed();
        if elapsed >= self.limit {
            Err(Error::new(ErrorKind::BudgetExceeded(
                BudgetBreach::Deadline {
                    limit: self.limit,
                    elapsed,
                },
            )))
        } else {
            Ok(())
        }
    }
}

/// When the engine refines a group member's program slice below the group's
/// certified union slice (see `EngineConfig::refine`).
///
/// Refinement pays a few extra solver calls per member to cut that member's
/// reenactment cost; whether that trade wins depends on the group. The
/// default [`RefinePolicy::Auto`] applies a cost model: refine only when the
/// group is large enough for the shared symbolic context to amortize the
/// per-member solver calls *and* the union slice keeps enough statements
/// that shrinking it can matter. The explicit policies remain as overrides
/// (`Always` is the former `refine_slices: true`, `Never` the former
/// `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinePolicy {
    /// Never refine (the pre-cost-model opt-out).
    Never,
    /// Refine every member of every multi-member group (the pre-cost-model
    /// opt-in).
    Always,
    /// Refine a member only when its group has at least `min_group_size`
    /// members and the group's union slice keeps at least `min_union_slice`
    /// statements.
    Auto {
        /// Minimum group size before refinement is attempted. Small groups
        /// rarely over-approximate much, and the shared context is
        /// amortized over fewer members.
        min_group_size: usize,
        /// Minimum number of statements the union slice must keep. A slice
        /// that is already tiny has nothing worth shrinking.
        min_union_slice: usize,
    },
}

impl RefinePolicy {
    /// The default automatic cost model: refine members of groups with at
    /// least 5 members whose union slice keeps at least 4 statements.
    pub fn auto() -> Self {
        RefinePolicy::Auto {
            min_group_size: 5,
            min_union_slice: 4,
        }
    }

    /// True when this policy can ever refine (i.e. the refinement pass is
    /// worth setting up at all).
    pub fn considers_refinement(&self) -> bool {
        !matches!(self, RefinePolicy::Never)
    }

    /// Whether a member of a group with `group_size` members sharing a
    /// union slice of `union_slice_statements` kept statements should be
    /// refined.
    pub fn should_refine(&self, group_size: usize, union_slice_statements: usize) -> bool {
        match *self {
            RefinePolicy::Never => false,
            RefinePolicy::Always => group_size > 1,
            RefinePolicy::Auto {
                min_group_size,
                min_union_slice,
            } => group_size >= min_group_size && union_slice_statements >= min_union_slice,
        }
    }
}

impl Default for RefinePolicy {
    fn default() -> Self {
        RefinePolicy::auto()
    }
}

/// Tunables of the reenactment-based engine.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Database compression used by program slicing (Section 8.3.1).
    pub compression: CompressionConfig,
    /// Solver resource limits.
    pub solver: SearchConfig,
    /// Use the general greedy slicer (Section 8.3.3) instead of the
    /// optimized dependency test (Section 9).
    pub use_greedy_slicer: bool,
    /// Disable the insert-split optimization of Section 10 (inserts are then
    /// reenacted inline as unions inside the reenactment query).
    pub disable_insert_split: bool,
    /// Do not add the compressed-database constraint Φ_D to the slicing
    /// condition (ablation).
    pub skip_compression_constraint: bool,
    /// Disable the group execution plans of the batch path: members of a
    /// slice-sharing group then reenact the original history themselves
    /// instead of sharing one original-side reenactment per `(group,
    /// relation)` (ablation / pre-group-plan baseline; the answers are
    /// identical either way).
    pub disable_group_reenactment: bool,
    /// Disable the columnar reenactment path: every per-relation reenactment
    /// then runs tuple-at-a-time through the row evaluator, as before the
    /// columnar data plane existed (ablation / byte-identity baseline; the
    /// answers are identical either way, since the columnar path falls back
    /// to the row path for anything it cannot reproduce exactly).
    pub disable_columnar: bool,
    /// Disable the static analyzer's admission checks and no-op proofs:
    /// scenarios are then neither pre-validated against the inferred types
    /// (type errors surface mid-execution instead of as admission
    /// rejections) nor short-circuited when provably independent (ablation /
    /// byte-identity baseline; proven no-ops answer identically either way).
    pub disable_analyzer: bool,
    /// When to refine a member's program slice below the group's certified
    /// union slice (cheaply, reusing the group's symbolic context) and
    /// answer the member with its own smaller slice. Pays a few extra
    /// solver calls per member to cut reenactment cost when the union slice
    /// is dominated by statements only few members need; the default
    /// [`RefinePolicy::Auto`] decides per group via a cost model.
    pub refine: RefinePolicy,
    /// Per-request resource budget (scenario count, solver calls,
    /// wall-clock deadline), enforced by the session's admit → plan →
    /// execute lifecycle and threaded into the group-plan loop. Unlimited
    /// by default.
    pub budget: Budget,
}

impl EngineConfig {
    /// The program-slicing view of this configuration (the mapping every
    /// slicing entry point — single or shared — applies).
    pub fn slicing(&self) -> mahif_slicing::ProgramSlicingConfig {
        mahif_slicing::ProgramSlicingConfig {
            compression: self.compression.clone(),
            solver: self.solver.clone(),
            skip_compression_constraint: self.skip_compression_constraint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Method::Naive.label(), "N");
        assert_eq!(Method::ReenactPsDs.label(), "R+PS+DS");
        assert!(Method::ReenactPsDs.uses_data_slicing());
        assert!(Method::ReenactPsDs.uses_program_slicing());
        assert!(!Method::Reenact.uses_data_slicing());
        assert!(Method::ReenactDs.uses_data_slicing());
        assert!(!Method::ReenactDs.uses_program_slicing());
        assert!(Method::ReenactPs.uses_program_slicing());
        assert_eq!(Method::all().len(), 5);
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for method in Method::all() {
            // Display matches the paper label …
            assert_eq!(method.to_string(), method.label());
            // … and parses back to the same method.
            assert_eq!(method.label().parse::<Method>().unwrap(), method);
            // Parsing is case-insensitive and whitespace-tolerant.
            let relaxed = format!("  {}  ", method.label().to_lowercase());
            assert_eq!(relaxed.parse::<Method>().unwrap(), method);
        }
        let err = "R+XX".parse::<Method>().unwrap_err();
        assert!(matches!(
            err.kind,
            crate::error::ErrorKind::UnknownMethod(ref label) if label == "R+XX"
        ));
        assert!(err.to_string().contains("R+XX"));
    }

    #[test]
    fn default_config() {
        let c = EngineConfig::default();
        assert!(!c.use_greedy_slicer);
        assert!(!c.disable_insert_split);
        assert!(!c.skip_compression_constraint);
        assert!(!c.disable_columnar);
        assert!(!c.disable_analyzer);
        assert_eq!(c.refine, RefinePolicy::auto());
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn budget_builders_and_clock() {
        let b = Budget::unlimited()
            .with_max_scenarios(8)
            .with_max_solver_calls(100)
            .with_deadline(Duration::from_millis(50));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_scenarios, Some(8));
        assert_eq!(b.max_solver_calls, Some(100));
        let clock = b.start_clock().expect("deadline set");
        assert!(!clock.expired());
        assert!(clock.check().is_ok());
        assert!(Budget::unlimited().start_clock().is_none());

        let expired = Deadline::after(Duration::ZERO);
        assert!(expired.expired());
        let err = expired.check().unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::BudgetExceeded(BudgetBreach::Deadline { .. })
        ));
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn budget_capping_takes_the_stricter_limit_per_field() {
        let client = Budget::unlimited()
            .with_max_scenarios(100)
            .with_deadline(Duration::from_secs(1));
        let ceiling = Budget::unlimited()
            .with_max_scenarios(8)
            .with_max_solver_calls(50)
            .with_deadline(Duration::from_secs(30));
        let effective = client.capped_by(&ceiling);
        assert_eq!(effective.max_scenarios, Some(8), "ceiling is stricter");
        assert_eq!(
            effective.max_solver_calls,
            Some(50),
            "only the ceiling set it"
        );
        assert_eq!(
            effective.deadline,
            Some(Duration::from_secs(1)),
            "client is stricter"
        );
        // An absent client budget inherits the ceiling wholesale.
        assert_eq!(Budget::unlimited().capped_by(&ceiling), ceiling);
        // An unlimited ceiling changes nothing.
        assert_eq!(client.capped_by(&Budget::unlimited()), client);
    }

    #[test]
    fn refine_policy_cost_model() {
        assert!(!RefinePolicy::Never.considers_refinement());
        assert!(RefinePolicy::Always.considers_refinement());
        assert!(RefinePolicy::auto().considers_refinement());
        // Always refines any multi-member group, never a singleton.
        assert!(RefinePolicy::Always.should_refine(2, 1));
        assert!(!RefinePolicy::Always.should_refine(1, 100));
        assert!(!RefinePolicy::Never.should_refine(100, 100));
        // Auto needs both thresholds met.
        let auto = RefinePolicy::auto();
        assert!(auto.should_refine(5, 4));
        assert!(auto.should_refine(8, 10));
        assert!(!auto.should_refine(4, 10), "group too small");
        assert!(!auto.should_refine(8, 3), "union slice already tiny");
    }
}
