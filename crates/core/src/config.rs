//! Execution methods and engine configuration.

use std::fmt;
use std::str::FromStr;

use mahif_solver::SearchConfig;
use mahif_symbolic::CompressionConfig;

use crate::error::{Error, ErrorKind};

/// The execution strategies compared in the paper's evaluation (Section 13.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `N`: the naïve algorithm — copy the pre-history state, execute the
    /// modified history, diff against the current state.
    Naive,
    /// `R`: reenactment only.
    Reenact,
    /// `R+DS`: reenactment with data slicing.
    ReenactDs,
    /// `R+PS`: reenactment with program slicing.
    ReenactPs,
    /// `R+PS+DS`: reenactment with both optimizations (Algorithm 2).
    ReenactPsDs,
}

impl Method {
    /// All methods, in the order used by the benchmark harness.
    pub fn all() -> [Method; 5] {
        [
            Method::Naive,
            Method::Reenact,
            Method::ReenactDs,
            Method::ReenactPs,
            Method::ReenactPsDs,
        ]
    }

    /// Short label used in reports (matches the paper's figures).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Naive => "N",
            Method::Reenact => "R",
            Method::ReenactDs => "R+DS",
            Method::ReenactPs => "R+PS",
            Method::ReenactPsDs => "R+PS+DS",
        }
    }

    /// Whether this method applies data slicing.
    pub fn uses_data_slicing(&self) -> bool {
        matches!(self, Method::ReenactDs | Method::ReenactPsDs)
    }

    /// Whether this method applies program slicing.
    pub fn uses_program_slicing(&self) -> bool {
        matches!(self, Method::ReenactPs | Method::ReenactPsDs)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Method {
    type Err = Error;

    /// Parses a paper label (`N`, `R`, `R+DS`, `R+PS`, `R+PS+DS`) back into
    /// a method, so CLI flags and serving-layer request fields can name
    /// methods as the figures do. Matching is case-insensitive and ignores
    /// surrounding whitespace; the long names (`naive`, `reenact`, …) are
    /// accepted as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canonical = s.trim().to_ascii_uppercase();
        match canonical.as_str() {
            "N" | "NAIVE" => Ok(Method::Naive),
            "R" | "REENACT" => Ok(Method::Reenact),
            "R+DS" | "REENACTDS" => Ok(Method::ReenactDs),
            "R+PS" | "REENACTPS" => Ok(Method::ReenactPs),
            "R+PS+DS" | "REENACTPSDS" => Ok(Method::ReenactPsDs),
            _ => Err(Error::new(ErrorKind::UnknownMethod(s.trim().to_string()))),
        }
    }
}

/// Tunables of the reenactment-based engine.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Database compression used by program slicing (Section 8.3.1).
    pub compression: CompressionConfig,
    /// Solver resource limits.
    pub solver: SearchConfig,
    /// Use the general greedy slicer (Section 8.3.3) instead of the
    /// optimized dependency test (Section 9).
    pub use_greedy_slicer: bool,
    /// Disable the insert-split optimization of Section 10 (inserts are then
    /// reenacted inline as unions inside the reenactment query).
    pub disable_insert_split: bool,
    /// Do not add the compressed-database constraint Φ_D to the slicing
    /// condition (ablation).
    pub skip_compression_constraint: bool,
    /// Disable the group execution plans of the batch path: members of a
    /// slice-sharing group then reenact the original history themselves
    /// instead of sharing one original-side reenactment per `(group,
    /// relation)` (ablation / pre-group-plan baseline; the answers are
    /// identical either way).
    pub disable_group_reenactment: bool,
    /// Refine each member's program slice below the group's certified union
    /// slice (cheaply, reusing the group's symbolic context) and answer the
    /// member with its own smaller slice when refinement shrinks it. Pays a
    /// few extra solver calls per member to cut reenactment cost when the
    /// union slice is dominated by statements only few members need.
    pub refine_slices: bool,
}

impl EngineConfig {
    /// The program-slicing view of this configuration (the mapping every
    /// slicing entry point — single or shared — applies).
    pub fn slicing(&self) -> mahif_slicing::ProgramSlicingConfig {
        mahif_slicing::ProgramSlicingConfig {
            compression: self.compression.clone(),
            solver: self.solver.clone(),
            skip_compression_constraint: self.skip_compression_constraint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Method::Naive.label(), "N");
        assert_eq!(Method::ReenactPsDs.label(), "R+PS+DS");
        assert!(Method::ReenactPsDs.uses_data_slicing());
        assert!(Method::ReenactPsDs.uses_program_slicing());
        assert!(!Method::Reenact.uses_data_slicing());
        assert!(Method::ReenactDs.uses_data_slicing());
        assert!(!Method::ReenactDs.uses_program_slicing());
        assert!(Method::ReenactPs.uses_program_slicing());
        assert_eq!(Method::all().len(), 5);
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for method in Method::all() {
            // Display matches the paper label …
            assert_eq!(method.to_string(), method.label());
            // … and parses back to the same method.
            assert_eq!(method.label().parse::<Method>().unwrap(), method);
            // Parsing is case-insensitive and whitespace-tolerant.
            let relaxed = format!("  {}  ", method.label().to_lowercase());
            assert_eq!(relaxed.parse::<Method>().unwrap(), method);
        }
        let err = "R+XX".parse::<Method>().unwrap_err();
        assert!(matches!(
            err.kind,
            crate::error::ErrorKind::UnknownMethod(ref label) if label == "R+XX"
        ));
        assert!(err.to_string().contains("R+XX"));
    }

    #[test]
    fn default_config() {
        let c = EngineConfig::default();
        assert!(!c.use_greedy_slicer);
        assert!(!c.disable_insert_split);
        assert!(!c.skip_compression_constraint);
    }
}
