//! # mahif
//!
//! The Mahif middleware: efficient answering of **historical what-if
//! queries** (HWQs) over an in-memory transactional database, reproducing
//! *"Efficient Answering of Historical What-if Queries"* (SIGMOD 2022).
//!
//! A historical what-if query asks how the current database state would
//! differ if the transactional history had been different — e.g. *"how would
//! revenue be affected if we had charged an additional $6 for shipping?"*.
//! Formally it is a triple `(H, D, M)`: the history, the database state
//! before the history, and a set of modifications (replace / insert / delete
//! statements); the answer is the symmetric difference
//! `Δ(H(D), H[M](D))`.
//!
//! ## Quick start
//!
//! ```
//! use mahif::{Mahif, Method};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::{History, ModificationSet};
//!
//! // Register the running-example database and shipping-fee history.
//! let mahif = Mahif::new(
//!     running_example_database(),
//!     History::new(running_example_history()),
//! )
//! .unwrap();
//!
//! // "What if the free-shipping threshold had been $60 instead of $50?"
//! let modifications = ModificationSet::single_replace(0, running_example_u1_prime());
//! let answer = mahif.what_if(&modifications, Method::ReenactPsDs).unwrap();
//!
//! // Alex's order (ID 12) would pay $10 instead of $5.
//! assert_eq!(answer.delta.len(), 2);
//! ```
//!
//! ## Execution methods
//!
//! | method | description |
//! |---|---|
//! | [`Method::Naive`] | Algorithm 1: copy the pre-history state, run `H[M]`, diff against the current state |
//! | [`Method::Reenact`] | reenact both histories as queries over the time-travel state and diff (Section 5) |
//! | [`Method::ReenactDs`] | reenactment + data slicing (Section 6) |
//! | [`Method::ReenactPs`] | reenactment + program slicing (Sections 7–9) |
//! | [`Method::ReenactPsDs`] | reenactment + both optimizations (Algorithm 2, the Mahif default) |

pub mod config;
pub mod engine;
pub mod error;
pub mod impact;
pub mod mahif;
pub mod stats;

pub use config::{EngineConfig, Method};
pub use engine::{answer_normalized, answer_what_if, compute_program_slice};
pub use error::MahifError;
pub use impact::{impact_of, GroupImpact, ImpactReport, ImpactSpec};
pub use mahif::Mahif;
pub use stats::{EngineStats, PhaseTimings, WhatIfAnswer};
