//! # mahif
//!
//! The Mahif middleware: efficient answering of **historical what-if
//! queries** (HWQs) over an in-memory transactional database, reproducing
//! *"Efficient Answering of Historical What-if Queries"* (SIGMOD 2022).
//!
//! A historical what-if query asks how the current database state would
//! differ if the transactional history had been different — e.g. *"how would
//! revenue be affected if we had charged an additional $6 for shipping?"*.
//! Formally it is a triple `(H, D, M)`: the history, the database state
//! before the history, and a set of modifications (replace / insert / delete
//! statements); the answer is the symmetric difference
//! `Δ(H(D), H[M](D))`.
//!
//! ## The session model
//!
//! The public API is built around a long-lived [`Session`]:
//!
//! 1. **Register** expensive state once. [`Session::register`] names a
//!    `(D, H)` pair and executes the history a single time to materialize
//!    the version chain. A session holds any number of histories.
//! 2. **Ask** many cheap hypotheticals. [`Session::on`] starts a fluent
//!    [`WhatIfRequest`]; `run()` answers a single query, `run_batch(..)` a
//!    whole scenario sweep. Either way the request flows through the one
//!    [`Session::execute`] funnel — *single queries are batches of one* —
//!    so shared program slices, the worker pool and impact reporting apply
//!    uniformly. The engine borrows the registered history and initial
//!    state; no entry point clones them per call
//!    (see [`Session::stats`]).
//! 3. **Read** the uniform [`Response`]: per-scenario delta + timings +
//!    work stats + optional [`ImpactReport`], plus batch-level
//!    [`BatchStats`].
//!
//! Every fallible step reports the unified [`Error`], which names the
//! failing [`Phase`] and — when known — the offending
//! scenario and history.
//!
//! ## Quick start
//!
//! ```
//! use mahif::{Method, Session};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::History;
//!
//! // Register the running-example database and shipping-fee history.
//! let session = Session::with_history(
//!     "retail",
//!     running_example_database(),
//!     History::new(running_example_history()),
//! )
//! .unwrap();
//!
//! // "What if the free-shipping threshold had been $60 instead of $50?"
//! let response = session
//!     .on("retail")
//!     .replace(0, running_example_u1_prime())
//!     .method(Method::ReenactPsDs)
//!     .run()
//!     .unwrap();
//!
//! // Alex's order (ID 12) would pay $10 instead of $5.
//! assert_eq!(response.delta().len(), 2);
//! ```
//!
//! ## Migrating from `Mahif`
//!
//! The single-history [`Mahif`] façade is a deprecated shim over a
//! one-history session; its results are byte-identical. Ports are
//! mechanical:
//!
//! | pre-0.2 call | session form |
//! |---|---|
//! | `Mahif::new(db, history)?` | `Session::with_history("name", db, history)?` |
//! | `mahif.what_if(&mods, method)?` | `session.on("name").modifications(mods).method(method).run()?.into_answer()` |
//! | `mahif.what_if_sql(script, method)?` | `session.on("name").sql(script).method(method).run()?.into_answer()` |
//! | `mahif.what_if_configured(&mods, method, &cfg)?` | `session.on("name").modifications(mods).method(method).config(cfg).run()?.into_answer()` |
//! | `mahif.what_if_impact(&mods, method, &spec)?` | `session.on("name").modifications(mods).method(method).impact(spec).run()?` (report in `response.impact()`) |
//! | `mahif.current_state()` etc. | `session.history("name")?.current_state()` etc. |
//! | `ScenarioSet::new(&mahif)` | `ScenarioSet::over(&session, "name")` (crate `mahif-scenario`) |
//!
//! ## Execution methods
//!
//! | method | description |
//! |---|---|
//! | [`Method::Naive`] | Algorithm 1: copy the pre-history state, run `H[M]`, diff against the current state |
//! | [`Method::Reenact`] | reenact both histories as queries over the time-travel state and diff (Section 5) |
//! | [`Method::ReenactDs`] | reenactment + data slicing (Section 6) |
//! | [`Method::ReenactPs`] | reenactment + program slicing (Sections 7–9) |
//! | [`Method::ReenactPsDs`] | reenactment + both optimizations (Algorithm 2, the Mahif default) |
//!
//! [`Method`] round-trips its paper labels through `Display`/`FromStr`
//! (`"R+PS+DS".parse::<Method>()`), so CLI and serving layers can name
//! methods exactly as the figures do.

#![forbid(unsafe_code)]
// The unified `Error` carries its phase/scenario/history context inline,
// which makes the `Err` variant larger than clippy's 128-byte heuristic.
// What-if error paths are cold (registration or per-request failures), so
// the flat, cloneable context struct is the better trade than boxing.
#![allow(clippy::result_large_err)]

pub mod config;
pub mod engine;
pub mod error;
pub mod impact;
pub mod mahif;
mod pool;
pub mod provision;
pub mod request;
pub mod response;
pub mod session;
pub mod stats;

pub use config::{Budget, Deadline, EngineConfig, Method, RefinePolicy};
pub use engine::{answer_normalized, answer_what_if, compute_program_slice, GroupPlan};
pub use error::{BudgetBreach, Error, ErrorKind, MahifError, Phase};
pub use impact::{impact_of, GroupImpact, ImpactReport, ImpactSpec};
#[allow(deprecated)]
pub use mahif::Mahif;
pub use mahif_analyze::{AnalysisError, HistoryAnalysis};
pub use mahif_query::QueryError;
pub use provision::{CachedPlan, PlanCache, PlanKey, Provisioned, SessionConfig};
pub use request::{ScenarioSpec, WhatIfRequest};
pub use response::{batch_trace_spans, BatchStats, Response, ScenarioResponse};
pub use session::{sweep, RegisteredHistory, Session, SessionMetrics, SessionStats};
pub use stats::{EngineStats, PhaseTimings, WhatIfAnswer};
