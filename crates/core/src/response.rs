//! The uniform answer of a what-if request.
//!
//! Single queries are batches of one, so every request — `run()` or
//! `run_batch(...)` — produces the same [`Response`]: one
//! [`ScenarioResponse`] per scenario (delta + timings + work stats +
//! optional impact report) plus the request-level [`BatchStats`].

use std::fmt;
use std::time::Duration;

use mahif_history::DatabaseDelta;

use crate::config::Method;
use crate::impact::ImpactReport;
use crate::stats::WhatIfAnswer;

/// Work statistics of one executed request.
///
/// A single query is a batch of one, so these are always present; for k > 1
/// they describe the shared work (one program slice per scenario group, a
/// scoped worker pool).
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of scenarios answered.
    pub scenarios: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct program slices computed (slice-sharing groups).
    pub slice_groups: usize,
    /// Scenarios that reused a group slice instead of computing their own.
    pub shared_slice_hits: usize,
    /// Wall-clock time normalizing and grouping the scenarios.
    pub normalize: Duration,
    /// Wall-clock time computing program slices.
    pub slicing: Duration,
    /// Wall-clock time reenacting and diffing all scenarios.
    pub execution: Duration,
    /// End-to-end wall-clock time of the request.
    pub total: Duration,
}

/// One scenario's answer within a [`Response`].
#[derive(Debug, Clone)]
pub struct ScenarioResponse {
    /// The scenario's name (`"default"` for an unnamed single query).
    pub name: String,
    /// The what-if answer: delta, per-phase timings, work statistics.
    pub answer: WhatIfAnswer,
    /// The aggregate impact report, when the request carried an
    /// [`crate::ImpactSpec`]. The baseline is taken from the registered
    /// history's current state.
    pub impact: Option<ImpactReport>,
}

/// The answer of a what-if request: per-scenario answers plus batch-level
/// work statistics, uniform for single and batch requests.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Response {
    /// The registered history the request ran against.
    pub history: String,
    /// The execution method used.
    pub method: Method,
    /// Per-scenario answers, in request order (never empty).
    pub scenarios: Vec<ScenarioResponse>,
    /// Work statistics of the whole request.
    pub stats: BatchStats,
}

impl Response {
    pub(crate) fn new(
        history: String,
        method: Method,
        scenarios: Vec<ScenarioResponse>,
        stats: BatchStats,
    ) -> Self {
        debug_assert!(!scenarios.is_empty(), "a response answers >= 1 scenario");
        Response {
            history,
            method,
            scenarios,
            stats,
        }
    }

    /// The first (for a single query: the only) scenario's answer.
    pub fn answer(&self) -> &WhatIfAnswer {
        &self.scenarios[0].answer
    }

    /// The first scenario's delta `Δ(H(D), H[M](D))`.
    pub fn delta(&self) -> &DatabaseDelta {
        &self.answer().delta
    }

    /// The first scenario's impact report, when the request carried an
    /// impact spec.
    pub fn impact(&self) -> Option<&ImpactReport> {
        self.scenarios[0].impact.as_ref()
    }

    /// The answer of the scenario with the given name.
    pub fn get(&self, name: &str) -> Option<&ScenarioResponse> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Number of scenarios answered.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// A response always answers at least one scenario; this exists for
    /// clippy's `len_without_is_empty` and always returns `false`.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Iterates over the per-scenario answers in request order.
    pub fn iter(&self) -> std::slice::Iter<'_, ScenarioResponse> {
        self.scenarios.iter()
    }

    /// Consumes the response into the first scenario's answer (the whole
    /// answer for a single query).
    pub fn into_answer(self) -> WhatIfAnswer {
        self.scenarios
            .into_iter()
            .next()
            .expect("a response answers >= 1 scenario")
            .answer
    }
}

impl<'a> IntoIterator for &'a Response {
    type Item = &'a ScenarioResponse;
    type IntoIter = std::slice::Iter<'a, ScenarioResponse>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "response for history '{}' ({}, {} scenario(s), {} slice group(s), total {:?}):",
            self.history,
            self.method,
            self.stats.scenarios,
            self.stats.slice_groups,
            self.stats.total
        )?;
        for s in &self.scenarios {
            writeln!(f, "scenario '{}':", s.name)?;
            write!(f, "{}", s.answer)?;
            if let Some(report) = &s.impact {
                write!(f, "{report}")?;
            }
        }
        Ok(())
    }
}
