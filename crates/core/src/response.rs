//! The uniform answer of a what-if request.
//!
//! Single queries are batches of one, so every request — `run()` or
//! `run_batch(...)` — produces the same [`Response`]: one
//! [`ScenarioResponse`] per scenario (delta + timings + work stats +
//! optional impact report) plus the request-level [`BatchStats`].

use std::fmt;
use std::time::Duration;

use mahif_history::DatabaseDelta;

use crate::config::Method;
use crate::impact::ImpactReport;
use crate::stats::WhatIfAnswer;

/// Work statistics of one executed request.
///
/// A single query is a batch of one, so these are always present; for k > 1
/// they describe the shared work (one program slice per scenario group, a
/// scoped worker pool).
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of scenarios answered.
    pub scenarios: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct program slices computed (slice-sharing groups).
    pub slice_groups: usize,
    /// Scenarios that reused a group slice instead of computing their own.
    pub shared_slice_hits: usize,
    /// Original-side reenactments performed across the request: one per
    /// `(group plan, relation)` plus one per relation for scenarios
    /// answered outside a shared plan. For a k-scenario single-group sweep
    /// this equals `groups × relations` — not `k × relations` — which is
    /// the observable form of the once-per-group reenactment guarantee.
    pub original_reenactments: usize,
    /// Members of multi-scenario groups whose program slice was refined
    /// below the group's certified union slice (and answered with the
    /// smaller slice). Driven by `EngineConfig::refine` — the default
    /// `RefinePolicy::Auto` cost model, or the explicit overrides.
    pub refined_slices: usize,
    /// The request's **deduplicated** slicing solver cost: satisfiability
    /// checks of each distinct program slice computed for the request —
    /// one per group when sharing, one per scenario otherwise — counted
    /// once, excluding per-member refinements (those are member work,
    /// reported in the refined member's own `EngineStats`).
    ///
    /// Per-member attribution varies by path: members of a multi-member
    /// group plan report `0` in their own `EngineStats::solver_calls`
    /// (their `shared_work` flag is set), while scenarios answered solo —
    /// single queries, singleton groups, the `disable_group_reenactment`
    /// ablation, refined members — fold the slice they were answered with
    /// into their own stats, exactly like a standalone single query. So
    /// read *this* field for the request's true solver cost; summing
    /// member counts on top can re-count a shared slice on the solo paths.
    pub solver_calls: usize,
    /// Annotated delta tuples whose storage was deduplicated across the
    /// request's answers (scenarios with identical relation deltas share
    /// one allocation; see `mahif_history::DeltaInterner`).
    pub delta_tuples_deduped: usize,
    /// Per-relation reenactments the request answered on the columnar
    /// path (batch-at-a-time over typed columns): the shared original-side
    /// phase of freshly built multi-member plans plus every member's
    /// modified-side work. Byte-identical results either way — see
    /// `EngineConfig::disable_columnar` for the ablation.
    pub columnar_batches: usize,
    /// Flat predicate/projection programs evaluated vectorized by those
    /// columnar reenactments.
    pub vectorized_predicates: usize,
    /// Per-relation reenactments that attempted the columnar path but fell
    /// back to the row evaluator (inexpressible statement or predicate,
    /// mixed-type column, or a runtime fault the row path must reproduce).
    pub row_fallbacks: usize,
    /// Wall-clock time normalizing and grouping the scenarios.
    pub normalize: Duration,
    /// Wall-clock time of the slicing phase: computing the (shared or
    /// per-scenario) program slices plus any per-member refinements. Note
    /// a refined member *also* reports its refinement's duration as its
    /// own `program_slicing` time — this field is the phase's wall clock,
    /// not a sum of member attributions.
    pub slicing: Duration,
    /// Wall-clock time of the group plans' shared work (group data-slicing
    /// conditions + original-side reenactments), summed over multi-member
    /// groups. This shared cost is reported **once** here, and members of
    /// those plans cover only their member-specific work in their own
    /// `PhaseTimings` (their `EngineStats::shared_work` flag is set) — so
    /// in the default group-plan path, member timings plus this field give
    /// the true batch cost without double counting. Scenarios answered
    /// outside a multi-member plan fold their work like single queries
    /// (see [`solver_calls`](Self::solver_calls)). It is a component of
    /// [`execution`](Self::execution), not an addition to it.
    pub group_reenactment: Duration,
    /// Wall-clock time reenacting and diffing all scenarios, including
    /// building the group plans (their shared reenactment work) in the
    /// group-plan path.
    pub execution: Duration,
    /// End-to-end wall-clock time of the request.
    pub total: Duration,
    /// Per-relation breakdown of the group plans' shared original-side
    /// reenactment ([`group_reenactment`](Self::group_reenactment)),
    /// summed across multi-member plans and sorted by relation name. Empty
    /// outside the group-plan path. Tracing layers graft these as child
    /// spans so a slow plan build names the relation that cost it.
    pub plan_relations: Vec<(String, Duration)>,
}

/// One scenario's answer within a [`Response`].
#[derive(Debug, Clone)]
pub struct ScenarioResponse {
    /// The scenario's name (`"default"` for an unnamed single query).
    pub name: String,
    /// The what-if answer: delta, per-phase timings, work statistics.
    pub answer: WhatIfAnswer,
    /// The aggregate impact report, when the request carried an
    /// [`crate::ImpactSpec`]. The baseline is taken from the registered
    /// history's current state.
    pub impact: Option<ImpactReport>,
}

/// The answer of a what-if request: per-scenario answers plus batch-level
/// work statistics, uniform for single and batch requests.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Response {
    /// The registered history the request ran against.
    pub history: String,
    /// The execution method used.
    pub method: Method,
    /// Per-scenario answers, in request order (never empty).
    pub scenarios: Vec<ScenarioResponse>,
    /// Work statistics of the whole request.
    pub stats: BatchStats,
}

impl Response {
    pub(crate) fn new(
        history: String,
        method: Method,
        scenarios: Vec<ScenarioResponse>,
        stats: BatchStats,
    ) -> Self {
        debug_assert!(!scenarios.is_empty(), "a response answers >= 1 scenario");
        Response {
            history,
            method,
            scenarios,
            stats,
        }
    }

    /// The first (for a single query: the only) scenario's answer.
    pub fn answer(&self) -> &WhatIfAnswer {
        &self.scenarios[0].answer
    }

    /// The first scenario's delta `Δ(H(D), H[M](D))`.
    pub fn delta(&self) -> &DatabaseDelta {
        &self.answer().delta
    }

    /// The first scenario's impact report, when the request carried an
    /// impact spec.
    pub fn impact(&self) -> Option<&ImpactReport> {
        self.scenarios[0].impact.as_ref()
    }

    /// The answer of the scenario with the given name.
    pub fn get(&self, name: &str) -> Option<&ScenarioResponse> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Number of scenarios answered.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// A response always answers at least one scenario; this exists for
    /// clippy's `len_without_is_empty` and always returns `false`.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Iterates over the per-scenario answers in request order.
    pub fn iter(&self) -> std::slice::Iter<'_, ScenarioResponse> {
        self.scenarios.iter()
    }

    /// Grafts the engine's phase timings into trace [`mahif_obs::Span`]s, offset so
    /// the first span starts at `start` (the handler's offset for the
    /// engine call within its own trace).
    ///
    /// This is *the* conversion between the engine's [`BatchStats`] /
    /// [`PhaseTimings`](crate::PhaseTimings) and span-shaped traces —
    /// serving layers and library callers share it, so `Server-Timing`
    /// headers, the slow-query log, and in-process tracing all name the
    /// same sections:
    ///
    /// * `plan` — normalize + slicing wall clock, with children
    ///   `plan.normalize` and `plan.slicing`;
    /// * `execute` — the execution phase wall clock, with children
    ///   `execute.group` (the group plans' shared data slicing +
    ///   original-side reenactment, itself broken down per relation as
    ///   `execute.group.<relation>`) and the per-scenario
    ///   [`PhaseTimings`](crate::PhaseTimings) summed across the batch
    ///   (`execute.copy`, `execute.program_slicing`,
    ///   `execute.data_slicing`, `execute.reenact`, `execute.delta`).
    ///
    /// Child spans under `execute` aggregate work that ran in parallel on
    /// the worker pool, so their summed durations may exceed the parent's
    /// wall clock; their `start` offsets equal the parent's (the engine
    /// records durations, not per-worker offsets). Zero-duration children
    /// are omitted — a `ReenactPsDs` batch reports no `execute.copy`.
    pub fn trace_spans(&self, start: Duration) -> Vec<mahif_obs::Span> {
        batch_trace_spans(
            &self.stats,
            self.scenarios.iter().map(|s| &s.answer.timings),
            start,
        )
    }

    /// Consumes the response into the first scenario's answer (the whole
    /// answer for a single query).
    pub fn into_answer(self) -> WhatIfAnswer {
        self.scenarios
            .into_iter()
            .next()
            .expect("a response answers >= 1 scenario")
            .answer
    }
}

/// The span conversion behind [`Response::trace_spans`], usable by any
/// holder of a [`BatchStats`] plus the batch's per-scenario
/// [`PhaseTimings`](crate::PhaseTimings) (e.g. `mahif-scenario`'s
/// `BatchAnswer`, which drops the `Response` wrapper). See
/// [`Response::trace_spans`] for the span vocabulary and the
/// parallel-work caveats.
pub fn batch_trace_spans<'a>(
    stats: &BatchStats,
    member_timings: impl Iterator<Item = &'a crate::stats::PhaseTimings>,
    start: Duration,
) -> Vec<mahif_obs::Span> {
    let mut spans = Vec::new();
    let push = |spans: &mut Vec<mahif_obs::Span>, name: &str, at: Duration, d: Duration| {
        if !d.is_zero() {
            spans.push(mahif_obs::Span {
                name: name.to_string(),
                start: at,
                duration: d,
            });
        }
    };
    let plan = stats.normalize + stats.slicing;
    push(&mut spans, "plan", start, plan);
    push(&mut spans, "plan.normalize", start, stats.normalize);
    push(
        &mut spans,
        "plan.slicing",
        start + stats.normalize,
        stats.slicing,
    );
    let exec_start = start + plan;
    push(&mut spans, "execute", exec_start, stats.execution);
    push(
        &mut spans,
        "execute.group",
        exec_start,
        stats.group_reenactment,
    );
    for (relation, duration) in &stats.plan_relations {
        push(
            &mut spans,
            &format!("execute.group.{relation}"),
            exec_start,
            *duration,
        );
    }
    // The per-scenario engine timings, summed across the batch.
    let mut copy = Duration::ZERO;
    let mut ps = Duration::ZERO;
    let mut ds = Duration::ZERO;
    let mut exe = Duration::ZERO;
    let mut delta = Duration::ZERO;
    for t in member_timings {
        copy += t.copy;
        ps += t.program_slicing;
        ds += t.data_slicing;
        exe += t.execution;
        delta += t.delta;
    }
    push(&mut spans, "execute.copy", exec_start, copy);
    push(&mut spans, "execute.program_slicing", exec_start, ps);
    push(&mut spans, "execute.data_slicing", exec_start, ds);
    push(&mut spans, "execute.reenact", exec_start, exe);
    push(&mut spans, "execute.delta", exec_start, delta);
    spans
}

impl<'a> IntoIterator for &'a Response {
    type Item = &'a ScenarioResponse;
    type IntoIter = std::slice::Iter<'a, ScenarioResponse>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "response for history '{}' ({}, {} scenario(s), {} slice group(s), total {:?}):",
            self.history,
            self.method,
            self.stats.scenarios,
            self.stats.slice_groups,
            self.stats.total
        )?;
        for s in &self.scenarios {
            writeln!(f, "scenario '{}':", s.name)?;
            write!(f, "{}", s.answer)?;
            if let Some(report) = &s.impact {
                write!(f, "{report}")?;
            }
        }
        Ok(())
    }
}
