//! The fluent what-if request builder.
//!
//! A [`WhatIfRequest`] is obtained from [`Session::on`](crate::Session::on)
//! and describes one request against a registered history: one or more
//! named scenarios (modification sets), the execution [`Method`], the
//! [`EngineConfig`], batching knobs and an optional [`ImpactSpec`]. The
//! terminal [`run`](WhatIfRequest::run) / [`run_batch`](WhatIfRequest::run_batch)
//! calls funnel into [`Session::execute`](crate::Session::execute) — single
//! queries are batches of one, so every optimization of the batch path
//! (shared program slices, the worker pool) applies uniformly.
//!
//! ```
//! use mahif::{Method, Session};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::History;
//!
//! let session = Session::with_history(
//!     "retail",
//!     running_example_database(),
//!     History::new(running_example_history()),
//! )
//! .unwrap();
//!
//! let response = session
//!     .on("retail")
//!     .replace(0, running_example_u1_prime())
//!     .method(Method::ReenactPsDs)
//!     .run()
//!     .unwrap();
//! assert_eq!(response.delta().len(), 2);
//! ```

use mahif_history::{Modification, ModificationSet, Statement};

use crate::config::{Budget, EngineConfig, Method, RefinePolicy};
use crate::error::{Error, Phase};
use crate::impact::ImpactSpec;
use crate::response::Response;
use crate::session::Session;

/// One named scenario of a request: a name plus the modification set it
/// applies to the registered history.
///
/// Tuples convert for free: `("threshold/60", mods).into()`. Higher layers
/// (e.g. `mahif-scenario`'s `Scenario`) provide their own conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    name: String,
    modifications: ModificationSet,
}

impl ScenarioSpec {
    /// Creates a named scenario.
    pub fn new(name: impl Into<String>, modifications: ModificationSet) -> Self {
        ScenarioSpec {
            name: name.into(),
            modifications,
        }
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's modifications.
    pub fn modifications(&self) -> &ModificationSet {
        &self.modifications
    }
}

impl<N: Into<String>> From<(N, ModificationSet)> for ScenarioSpec {
    fn from((name, modifications): (N, ModificationSet)) -> Self {
        ScenarioSpec::new(name, modifications)
    }
}

/// The name given to the inline scenario of an unnamed single query.
pub(crate) const DEFAULT_SCENARIO: &str = "default";

/// The decomposed request handed to the session's execute funnel.
pub(crate) struct RequestParts {
    pub history: String,
    pub scenarios: Vec<ScenarioSpec>,
    pub method: Method,
    pub config: EngineConfig,
    pub parallelism: usize,
    pub no_slice_sharing: bool,
    pub no_plan_cache: bool,
    pub impact: Option<ImpactSpec>,
}

/// A fluent what-if request against one registered history of a
/// [`Session`]. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
#[must_use = "a request does nothing until `run()` or `run_batch(..)` executes it"]
pub struct WhatIfRequest<'s> {
    session: &'s Session,
    history: String,
    /// Completed scenarios added via [`Self::scenario`] / [`Self::run_batch`].
    scenarios: Vec<ScenarioSpec>,
    /// The inline scenario accumulated by [`Self::replace`] & friends.
    inline: Vec<Modification>,
    inline_name: Option<String>,
    method: Method,
    config: EngineConfig,
    parallelism: usize,
    no_slice_sharing: bool,
    no_plan_cache: bool,
    impact: Option<ImpactSpec>,
    /// Whether `run_batch` was the terminal call: an empty batch is then a
    /// reportable error, not an implicit empty single query.
    batched: bool,
    /// First builder error (e.g. a what-if script that did not parse),
    /// deferred so the fluent chain stays infallible until `run`.
    deferred: Option<Error>,
}

impl<'s> WhatIfRequest<'s> {
    pub(crate) fn new(session: &'s Session, history: String) -> Self {
        WhatIfRequest {
            session,
            history,
            scenarios: Vec::new(),
            inline: Vec::new(),
            inline_name: None,
            method: Method::ReenactPsDs,
            config: EngineConfig::default(),
            parallelism: 0,
            no_slice_sharing: false,
            no_plan_cache: false,
            impact: None,
            batched: false,
            deferred: None,
        }
    }

    /// Adds a *replace* modification to the inline scenario: statement
    /// `position` of the history is hypothetically replaced by `statement`.
    pub fn replace(mut self, position: usize, statement: Statement) -> Self {
        self.inline.push(Modification::replace(position, statement));
        self
    }

    /// Adds a *delete* modification: statement `position` is hypothetically
    /// removed from the history.
    pub fn delete(mut self, position: usize) -> Self {
        self.inline.push(Modification::delete(position));
        self
    }

    /// Adds an *insert* modification: `statement` is hypothetically inserted
    /// before position `position` of the history.
    pub fn insert(mut self, position: usize, statement: Statement) -> Self {
        self.inline.push(Modification::insert(position, statement));
        self
    }

    /// Adds all modifications of `modifications` to the inline scenario.
    pub fn modifications(mut self, modifications: ModificationSet) -> Self {
        self.inline.extend(modifications.into_modifications());
        self
    }

    /// Parses a what-if script in SQL text (see
    /// [`mahif_sqlparse::parse_whatif`]) into the inline scenario, e.g.
    /// `"REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60"`.
    /// A parse failure is reported by `run`, naming the scenario (the
    /// scenario name is resolved at `run` time, so `.named(..)` may come
    /// before or after `.sql(..)` in the chain).
    pub fn sql(mut self, script: &str) -> Self {
        match mahif_sqlparse::parse_whatif(script) {
            Ok(modifications) => self.inline.extend(modifications.into_modifications()),
            Err(e) => {
                let err = Error::from(e).in_phase(Phase::Build);
                self.deferred.get_or_insert(err);
            }
        }
        self
    }

    /// Names the inline scenario (defaults to `"default"`). The name appears
    /// in the [`Response`] and in error messages.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.inline_name = Some(name.into());
        self
    }

    /// Adds a complete named scenario to the batch.
    pub fn scenario(mut self, scenario: impl Into<ScenarioSpec>) -> Self {
        self.scenarios.push(scenario.into());
        self
    }

    /// Sets the execution method (default: [`Method::ReenactPsDs`], the
    /// paper's fully optimized Algorithm 2).
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Sets the engine configuration (solver limits, compression, ablation
    /// switches).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Requests an aggregate impact report per scenario, with the metric
    /// baseline taken from the registered history's current state.
    pub fn impact(mut self, spec: ImpactSpec) -> Self {
        self.impact = Some(spec);
        self
    }

    /// Sets the worker-thread count for batch execution (`0` = the
    /// machine's available parallelism, the default).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Disables program-slice sharing across the batch's scenario groups
    /// (ablation; the answers are identical either way).
    pub fn without_slice_sharing(mut self) -> Self {
        self.no_slice_sharing = true;
        self
    }

    /// Opts this request out of the session's cross-request provisioning
    /// cache: no cached plan is reused and no plan built for this request
    /// is cached (the answers are identical either way; see
    /// `mahif::provision`).
    pub fn without_plan_cache(mut self) -> Self {
        self.no_plan_cache = true;
        self
    }

    /// Disables the group execution plans of the batch path: members of a
    /// slice-sharing group then reenact the original history themselves
    /// instead of sharing one original-side reenactment per group
    /// (ablation / pre-group-plan baseline; the answers are identical
    /// either way).
    pub fn without_group_reenactment(mut self) -> Self {
        self.config.disable_group_reenactment = true;
        self
    }

    /// Disables the columnar reenactment path: every per-relation
    /// reenactment then runs tuple-at-a-time through the row evaluator
    /// (ablation / byte-identity baseline; the answers are identical
    /// either way).
    pub fn without_columnar(mut self) -> Self {
        self.config.disable_columnar = true;
        self
    }

    /// Disables the static analyzer's admission checks and no-op proofs
    /// for this request: scenarios are neither pre-validated against the
    /// inferred attribute types nor short-circuited when provably
    /// independent (ablation / byte-identity baseline; proven no-ops
    /// answer identically either way).
    pub fn without_analyzer(mut self) -> Self {
        self.config.disable_analyzer = true;
        self
    }

    /// Forces per-member slice refinement for every multi-member group: a
    /// group member whose own slice is smaller than the group's certified
    /// union slice is re-sliced cheaply (reusing the group's symbolic
    /// context) and answered with the smaller slice. This is the explicit
    /// override over the default [`RefinePolicy::Auto`] cost model; see
    /// `EngineConfig::refine`.
    pub fn with_slice_refinement(mut self) -> Self {
        self.config.refine = RefinePolicy::Always;
        self
    }

    /// Disables per-member slice refinement entirely (the explicit opt-out
    /// override over the default [`RefinePolicy::Auto`] cost model).
    pub fn without_slice_refinement(mut self) -> Self {
        self.config.refine = RefinePolicy::Never;
        self
    }

    /// Sets the refinement policy directly (e.g. an [`RefinePolicy::Auto`]
    /// with custom thresholds).
    pub fn refine(mut self, policy: RefinePolicy) -> Self {
        self.config.refine = policy;
        self
    }

    /// Sets the request's resource [`Budget`] (scenario count, solver
    /// calls, wall-clock deadline). An over-budget request fails fast with
    /// a structured `ErrorKind::BudgetExceeded` in the admit or plan phase
    /// instead of running away; see the [`crate::Session`] lifecycle docs.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Executes the request and returns the uniform [`Response`].
    ///
    /// The inline scenario (everything accumulated via [`Self::replace`],
    /// [`Self::sql`], …) joins any scenarios added with [`Self::scenario`];
    /// a request with no modifications at all answers one empty scenario
    /// (whose delta is empty).
    pub fn run(self) -> Result<Response, Error> {
        let session = self.session;
        session.execute(self)
    }

    /// Adds every scenario of `batch` and executes the request. This is the
    /// batch-first entry point: `k` scenarios are normalized together,
    /// grouped, answered with one program slice per group on a worker pool.
    /// An empty batch (no scenarios from `batch`, none added earlier, no
    /// inline modifications) is an error, not an empty single query.
    pub fn run_batch<S: Into<ScenarioSpec>>(
        mut self,
        batch: impl IntoIterator<Item = S>,
    ) -> Result<Response, Error> {
        self.scenarios.extend(batch.into_iter().map(Into::into));
        self.batched = true;
        self.run()
    }

    /// Decomposes the builder for the session funnel, surfacing deferred
    /// builder errors and materializing the inline scenario.
    pub(crate) fn into_parts(self) -> Result<RequestParts, Error> {
        let inline_name = self
            .inline_name
            .clone()
            .unwrap_or_else(|| DEFAULT_SCENARIO.to_string());
        if let Some(err) = self.deferred {
            // Builder errors concern the inline scenario; its name is only
            // final here, after the whole chain ran.
            return Err(err.for_scenario(inline_name).on_history(self.history));
        }
        let mut scenarios = Vec::new();
        // The inline scenario leads, in the position single-query callers
        // expect; it is materialized when it has modifications or a name, or
        // when it is the whole request (`run()` on an empty chain answers
        // one empty scenario; an empty `run_batch` is an error instead).
        if !self.inline.is_empty()
            || self.inline_name.is_some()
            || (self.scenarios.is_empty() && !self.batched)
        {
            scenarios.push(ScenarioSpec::new(
                inline_name,
                ModificationSet::new(self.inline),
            ));
        }
        scenarios.extend(self.scenarios);
        Ok(RequestParts {
            history: self.history,
            scenarios,
            method: self.method,
            config: self.config,
            parallelism: self.parallelism,
            no_slice_sharing: self.no_slice_sharing,
            no_plan_cache: self.no_plan_cache,
            impact: self.impact,
        })
    }
}
