//! The Mahif middleware façade.

use mahif_history::{HistoricalWhatIf, History, ModificationSet};
use mahif_storage::{Database, VersionedDatabase};

use crate::config::{EngineConfig, Method};
use crate::engine::answer_what_if;
use crate::error::MahifError;
use crate::stats::WhatIfAnswer;

/// The Mahif middleware: owns the transactional history of a database, keeps
/// the version chain needed for time travel, and answers historical what-if
/// queries against it.
#[derive(Debug, Clone)]
pub struct Mahif {
    history: History,
    versioned: VersionedDatabase,
}

impl Mahif {
    /// Registers a database and the transactional history that was executed
    /// over it. The history is executed once to materialize the version
    /// chain (the deployment equivalent is a DBMS with time travel plus the
    /// statement log).
    pub fn new(initial: Database, history: History) -> Result<Self, MahifError> {
        let versioned = history.execute_versioned(&initial)?;
        Ok(Mahif { history, versioned })
    }

    /// The registered history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> &Database {
        self.versioned.current()
    }

    /// The initial database state `D` (before the history).
    pub fn initial_state(&self) -> &Database {
        self.versioned.initial()
    }

    /// The full version chain (time travel).
    pub fn versions(&self) -> &VersionedDatabase {
        &self.versioned
    }

    /// Answers the historical what-if query defined by `modifications` using
    /// `method` with the default engine configuration.
    pub fn what_if(
        &self,
        modifications: &ModificationSet,
        method: Method,
    ) -> Result<WhatIfAnswer, MahifError> {
        self.what_if_configured(modifications, method, &EngineConfig::default())
    }

    /// Answers a historical what-if query given as a *what-if script* in SQL
    /// text (see [`mahif_sqlparse::parse_whatif`]), e.g.
    /// `"REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60"`.
    pub fn what_if_sql(&self, script: &str, method: Method) -> Result<WhatIfAnswer, MahifError> {
        let modifications = mahif_sqlparse::parse_whatif(script)
            .map_err(|e| MahifError::InvalidWhatIfScript(e.to_string()))?;
        self.what_if(&modifications, method)
    }

    /// Answers the historical what-if query and immediately reduces its
    /// delta to an aggregate impact report (with the metric baseline taken
    /// from the current database state), answering questions of the form
    /// *"how would revenue be affected if ..."* in one call.
    pub fn what_if_impact(
        &self,
        modifications: &ModificationSet,
        method: Method,
        spec: &crate::impact::ImpactSpec,
    ) -> Result<(WhatIfAnswer, crate::impact::ImpactReport), MahifError> {
        let answer = self.what_if(modifications, method)?;
        let report = answer
            .impact(spec)?
            .with_baseline(self.current_state(), spec)?;
        Ok((answer, report))
    }

    /// Answers the historical what-if query with an explicit engine
    /// configuration (solver limits, compression, ablation switches).
    pub fn what_if_configured(
        &self,
        modifications: &ModificationSet,
        method: Method,
        config: &EngineConfig,
    ) -> Result<WhatIfAnswer, MahifError> {
        let query = HistoricalWhatIf::new(
            self.history.clone(),
            self.versioned.initial().clone(),
            modifications.clone(),
        );
        answer_what_if(
            &query,
            &self.versioned,
            self.versioned.current(),
            method,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::ModificationSet;

    fn mahif() -> Mahif {
        Mahif::new(
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    #[test]
    fn registration_materializes_versions() {
        let m = mahif();
        assert_eq!(m.history().len(), 3);
        assert_eq!(m.versions().version_count(), 4);
        assert_eq!(m.initial_state().total_tuples(), 4);
        // Figure 3: current state has Jack's fee waived.
        let fee: i64 = m.current_state().relation("Order").unwrap().tuples[2]
            .value(4)
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(fee, 0);
    }

    #[test]
    fn what_if_all_methods_agree() {
        let m = mahif();
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        let reference = m.what_if(&mods, Method::Naive).unwrap();
        assert_eq!(reference.delta.len(), 2);
        for method in Method::all() {
            let answer = m.what_if(&mods, method).unwrap();
            assert_eq!(answer.delta, reference.delta, "method {}", method.label());
        }
    }

    #[test]
    fn configured_what_if() {
        let m = mahif();
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        let config = EngineConfig {
            use_greedy_slicer: true,
            ..Default::default()
        };
        let answer = m
            .what_if_configured(&mods, Method::ReenactPsDs, &config)
            .unwrap();
        assert_eq!(answer.delta.len(), 2);
    }
}
