//! The legacy single-history `Mahif` façade, now a thin shim over
//! [`Session`].
//!
//! `Mahif` predates the multi-history [`Session`]; it is kept so downstream
//! code compiles during migration and its answers are byte-identical to the
//! session's (every call funnels into [`Session::execute`]). New code
//! should register histories with a [`Session`] and build requests with
//! [`Session::on`]; see the crate-level migration table.

#![allow(deprecated)]

use mahif_history::{History, ModificationSet};
use mahif_storage::{Database, VersionedDatabase};

use crate::config::{EngineConfig, Method};
use crate::error::MahifError;
use crate::session::Session;
use crate::stats::WhatIfAnswer;

/// The single-history middleware façade: a [`Session`] with exactly one
/// registered history (named [`Mahif::HISTORY`]).
#[deprecated(
    since = "0.2.0",
    note = "use mahif::Session — register histories once, build requests with Session::on(..)"
)]
#[derive(Debug, Clone)]
pub struct Mahif {
    session: Session,
    /// The shim's own handle to the registered state: `Session::history`
    /// hands out shared `Arc` handles (the registry is concurrent), while
    /// the shim's accessors return plain references — so it holds one
    /// handle for its lifetime.
    registered: std::sync::Arc<crate::session::RegisteredHistory>,
}

impl Mahif {
    /// The name the shim registers its history under.
    pub const HISTORY: &'static str = "default";

    /// Registers a database and the transactional history that was executed
    /// over it. The history is executed once to materialize the version
    /// chain (the deployment equivalent is a DBMS with time travel plus the
    /// statement log).
    pub fn new(initial: Database, history: History) -> Result<Self, MahifError> {
        let session = Session::with_history(Self::HISTORY, initial, history)?;
        let registered = session
            .history(Self::HISTORY)
            .expect("the shim registers its history at construction");
        Ok(Mahif {
            session,
            registered,
        })
    }

    /// The underlying session (one registered history named
    /// [`Mahif::HISTORY`]).
    pub fn session(&self) -> &Session {
        &self.session
    }

    fn registered(&self) -> &crate::session::RegisteredHistory {
        &self.registered
    }

    /// The registered history.
    pub fn history(&self) -> &History {
        self.registered().history()
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> &Database {
        self.registered().current_state()
    }

    /// The initial database state `D` (before the history).
    pub fn initial_state(&self) -> &Database {
        self.registered().initial_state()
    }

    /// The full version chain (time travel).
    pub fn versions(&self) -> &VersionedDatabase {
        self.registered().versions()
    }

    /// Answers the historical what-if query defined by `modifications` using
    /// `method` with the default engine configuration.
    pub fn what_if(
        &self,
        modifications: &ModificationSet,
        method: Method,
    ) -> Result<WhatIfAnswer, MahifError> {
        self.what_if_configured(modifications, method, &EngineConfig::default())
    }

    /// Answers a historical what-if query given as a *what-if script* in SQL
    /// text (see [`mahif_sqlparse::parse_whatif`]), e.g.
    /// `"REPLACE STATEMENT 1 WITH UPDATE Order SET ShippingFee = 0 WHERE Price >= 60"`.
    pub fn what_if_sql(&self, script: &str, method: Method) -> Result<WhatIfAnswer, MahifError> {
        self.session
            .on(Self::HISTORY)
            .sql(script)
            .method(method)
            .run()
            .map(crate::Response::into_answer)
    }

    /// Answers the historical what-if query and immediately reduces its
    /// delta to an aggregate impact report (with the metric baseline taken
    /// from the current database state), answering questions of the form
    /// *"how would revenue be affected if ..."* in one call.
    pub fn what_if_impact(
        &self,
        modifications: &ModificationSet,
        method: Method,
        spec: &crate::impact::ImpactSpec,
    ) -> Result<(WhatIfAnswer, crate::impact::ImpactReport), MahifError> {
        let response = self
            .session
            .on(Self::HISTORY)
            .modifications(modifications.clone())
            .method(method)
            .impact(spec.clone())
            .run()?;
        let scenario = response
            .scenarios
            .into_iter()
            .next()
            .expect("a response answers >= 1 scenario");
        let report = scenario.impact.expect("the request carried an impact spec");
        Ok((scenario.answer, report))
    }

    /// Answers the historical what-if query with an explicit engine
    /// configuration (solver limits, compression, ablation switches).
    pub fn what_if_configured(
        &self,
        modifications: &ModificationSet,
        method: Method,
        config: &EngineConfig,
    ) -> Result<WhatIfAnswer, MahifError> {
        self.session
            .on(Self::HISTORY)
            .modifications(modifications.clone())
            .method(method)
            .config(config.clone())
            .run()
            .map(crate::Response::into_answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::ModificationSet;

    fn mahif() -> Mahif {
        Mahif::new(
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    #[test]
    fn registration_materializes_versions() {
        let m = mahif();
        assert_eq!(m.history().len(), 3);
        assert_eq!(m.versions().version_count(), 4);
        assert_eq!(m.initial_state().total_tuples(), 4);
        // Figure 3: current state has Jack's fee waived.
        let fee: i64 = m.current_state().relation("Order").unwrap().tuples[2]
            .value(4)
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(fee, 0);
    }

    #[test]
    fn what_if_all_methods_agree() {
        let m = mahif();
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        let reference = m.what_if(&mods, Method::Naive).unwrap();
        assert_eq!(reference.delta.len(), 2);
        for method in Method::all() {
            let answer = m.what_if(&mods, method).unwrap();
            assert_eq!(answer.delta, reference.delta, "method {}", method.label());
        }
    }

    #[test]
    fn configured_what_if() {
        let m = mahif();
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        let config = EngineConfig {
            use_greedy_slicer: true,
            ..Default::default()
        };
        let answer = m
            .what_if_configured(&mods, Method::ReenactPsDs, &config)
            .unwrap();
        assert_eq!(answer.delta.len(), 2);
    }

    #[test]
    fn shim_is_byte_identical_to_the_session() {
        // The acceptance gate of the redesign: the deprecated shim funnels
        // into the very same Session::execute path, so answers agree
        // byte-for-byte with a hand-built Session.
        let m = mahif();
        let session = Session::with_history(
            "h",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let mods = ModificationSet::single_replace(0, running_example_u1_prime());
        for method in Method::all() {
            let shim = m.what_if(&mods, method).unwrap();
            let new = session
                .on("h")
                .modifications(mods.clone())
                .method(method)
                .run()
                .unwrap();
            assert_eq!(shim.delta, new.delta().clone(), "method {method}");
            assert_eq!(
                shim.stats.statements_reenacted,
                new.answer().stats.statements_reenacted
            );
            assert_eq!(shim.stats.input_tuples, new.answer().stats.input_tuples);
        }
    }
}
