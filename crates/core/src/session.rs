//! The multi-history session: the middleware's long-lived public entry
//! point.
//!
//! A [`Session`] registers any number of **named** histories — each
//! registration executes the history once to materialize the version chain
//! (the deployment equivalent is a DBMS with time travel plus the statement
//! log) — and then answers what-if requests against them. Requests are
//! built fluently with [`Session::on`] and executed by the single
//! [`Session::execute`] funnel: a single query is a batch of one, so
//! shared-slice grouping and the worker pool apply to every entry point.
//! The engine borrows the registered history and initial state per request
//! — answering is O(answer), never O(|H| + |D|) in copies — which
//! [`Session::stats`] makes observable: `version_chains_built` stays at the
//! number of registrations no matter how many requests run.
//!
//! ```
//! use mahif::{ImpactSpec, Method, Session};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::History;
//!
//! let mut session = Session::new();
//! session
//!     .register(
//!         "retail",
//!         running_example_database(),
//!         History::new(running_example_history()),
//!     )
//!     .unwrap();
//!
//! // "What if the free-shipping threshold had been $60 instead of $50?"
//! let response = session
//!     .on("retail")
//!     .replace(0, running_example_u1_prime())
//!     .method(Method::ReenactPsDs)
//!     .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(response.delta().len(), 2);
//! assert_eq!(response.impact().unwrap().net_change(), 5);
//! assert_eq!(session.stats().version_chains_built, 1);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mahif_history::{History, ModificationSet, NormalizedWhatIf, WhatIfRef};
use mahif_slicing::{group_scenarios, program_slice_multi, ProgramSliceResult, SliceCache};
use mahif_storage::{Database, VersionedDatabase};

use crate::config::Method;
use crate::engine::{answer_normalized, answer_what_if, compute_program_slice};
use crate::error::{Error, ErrorKind, Phase};
use crate::pool::{collect_results, resolve_parallelism, run_indexed};
use crate::request::{RequestParts, ScenarioSpec, WhatIfRequest};
use crate::response::{BatchStats, Response, ScenarioResponse};
use crate::stats::WhatIfAnswer;

/// One history registered with a [`Session`]: the statement log plus the
/// version chain materialized at registration.
#[derive(Debug, Clone)]
pub struct RegisteredHistory {
    name: String,
    history: History,
    versioned: VersionedDatabase,
}

impl RegisteredHistory {
    /// The name the history was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered transactional history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The full version chain (time travel).
    pub fn versions(&self) -> &VersionedDatabase {
        &self.versioned
    }

    /// The initial database state `D` (before the history).
    pub fn initial_state(&self) -> &Database {
        self.versioned.initial()
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> &Database {
        self.versioned.current()
    }
}

/// Monotonic work counters of a session (interior mutability: answering
/// borrows the session immutably).
#[derive(Debug, Default)]
struct Counters {
    version_chains_built: AtomicU64,
    requests: AtomicU64,
    scenarios_answered: AtomicU64,
    slices_computed: AtomicU64,
    slices_shared: AtomicU64,
}

impl Clone for Counters {
    fn clone(&self) -> Self {
        Counters {
            version_chains_built: AtomicU64::new(self.version_chains_built.load(Ordering::Relaxed)),
            requests: AtomicU64::new(self.requests.load(Ordering::Relaxed)),
            scenarios_answered: AtomicU64::new(self.scenarios_answered.load(Ordering::Relaxed)),
            slices_computed: AtomicU64::new(self.slices_computed.load(Ordering::Relaxed)),
            slices_shared: AtomicU64::new(self.slices_shared.load(Ordering::Relaxed)),
        }
    }
}

/// A snapshot of a session's lifetime work counters (see
/// [`Session::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionStats {
    /// Histories currently registered.
    pub histories: usize,
    /// Version chains materialized — increments only in
    /// [`Session::register`]. Staying constant across requests is the
    /// observable form of the zero-clone guarantee: no request re-executes
    /// or re-clones a registered history.
    pub version_chains_built: u64,
    /// Requests executed (a batch counts once).
    pub requests: u64,
    /// Scenarios answered across all requests.
    pub scenarios_answered: u64,
    /// Program slices computed (one per slice-sharing group).
    pub slices_computed: u64,
    /// Scenarios that reused a group's shared slice.
    pub slices_shared: u64,
}

/// The Mahif middleware session: registers named histories once and answers
/// many what-if requests against them. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Session {
    histories: Vec<RegisteredHistory>,
    counters: Counters,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Convenience constructor: a session with one registered history.
    pub fn with_history(
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<Self, Error> {
        let mut session = Session::new();
        session.register(name, initial, history)?;
        Ok(session)
    }

    /// Registers a database and the transactional history that was executed
    /// over it under `name`. The history is executed once to materialize
    /// the version chain; every later request borrows that chain.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<&mut Self, Error> {
        let name = name.into();
        if self.histories.iter().any(|h| h.name == name) {
            return Err(Error::new(ErrorKind::DuplicateHistory(name.clone()))
                .in_phase(Phase::Register)
                .on_history(name));
        }
        let versioned = history.execute_versioned(&initial).map_err(|e| {
            Error::from(e)
                .in_phase(Phase::Register)
                .on_history(name.clone())
        })?;
        self.counters
            .version_chains_built
            .fetch_add(1, Ordering::Relaxed);
        self.histories.push(RegisteredHistory {
            name,
            history,
            versioned,
        });
        Ok(self)
    }

    /// Starts a fluent what-if request against the history registered under
    /// `name`. Name resolution is deferred to `run`, so the chain itself is
    /// infallible.
    pub fn on(&self, name: impl Into<String>) -> WhatIfRequest<'_> {
        WhatIfRequest::new(self, name.into())
    }

    /// The registered history named `name`.
    pub fn history(&self, name: &str) -> Result<&RegisteredHistory, Error> {
        self.histories
            .iter()
            .find(|h| h.name == name)
            .ok_or_else(|| {
                Error::new(ErrorKind::UnknownHistory(name.to_string()))
                    .in_phase(Phase::Build)
                    .on_history(name.to_string())
            })
    }

    /// The registered histories, in registration order.
    pub fn histories(&self) -> impl Iterator<Item = &RegisteredHistory> {
        self.histories.iter()
    }

    /// Number of registered histories.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// True when no history is registered.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// A snapshot of the session's lifetime work counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            histories: self.histories.len(),
            version_chains_built: self.counters.version_chains_built.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            scenarios_answered: self.counters.scenarios_answered.load(Ordering::Relaxed),
            slices_computed: self.counters.slices_computed.load(Ordering::Relaxed),
            slices_shared: self.counters.slices_shared.load(Ordering::Relaxed),
        }
    }

    /// Executes a request. This is the single funnel every public entry
    /// point goes through — `run()`, `run_batch(..)`, the deprecated
    /// [`crate::Mahif`] shim and `mahif-scenario`'s `ScenarioSet` all end
    /// here, so batch optimizations reach single queries and vice versa.
    pub fn execute(&self, request: WhatIfRequest<'_>) -> Result<Response, Error> {
        let parts = request.into_parts()?;
        self.execute_parts(parts)
    }

    fn execute_parts(&self, parts: RequestParts) -> Result<Response, Error> {
        let total_start = Instant::now();
        let RequestParts {
            history: history_name,
            scenarios,
            method,
            config,
            parallelism,
            no_slice_sharing,
            impact,
        } = parts;
        let registered = self.history(&history_name)?;
        if scenarios.is_empty() {
            return Err(Error::new(ErrorKind::EmptyRequest)
                .in_phase(Phase::Build)
                .on_history(history_name));
        }
        for (i, s) in scenarios.iter().enumerate() {
            if scenarios[..i].iter().any(|other| other.name() == s.name()) {
                return Err(
                    Error::new(ErrorKind::DuplicateScenario(s.name().to_string()))
                        .in_phase(Phase::Build)
                        .for_scenario(s.name().to_string())
                        .on_history(history_name),
                );
            }
        }
        let threads = resolve_parallelism(parallelism, scenarios.len());
        let mut stats = BatchStats {
            scenarios: scenarios.len(),
            threads,
            ..Default::default()
        };

        let context = |e: Error, phase: Phase, scenario: &ScenarioSpec| {
            e.in_phase(phase)
                .for_scenario(scenario.name().to_string())
                .on_history(history_name.clone())
        };

        let answers: Vec<WhatIfAnswer> = if method == Method::Naive {
            // The naïve algorithm re-executes the modified history over a
            // copy of the pre-history state; nothing is shareable beyond
            // the registered states, so scenarios just run in parallel.
            let exec_start = Instant::now();
            let answers = self.run_pool(threads, &scenarios, |i| {
                let query = WhatIfRef::new(
                    &registered.history,
                    registered.versioned.initial(),
                    scenarios[i].modifications(),
                );
                answer_what_if(
                    query,
                    &registered.versioned,
                    registered.versioned.current(),
                    method,
                    &config,
                )
                .map_err(|e| context(e, Phase::Execution, &scenarios[i]))
            })?;
            stats.execution = exec_start.elapsed();
            answers
        } else {
            // Normalize once per scenario and group scenarios that can
            // share a program slice.
            let normalize_start = Instant::now();
            let normalized = scenarios
                .iter()
                .map(|s| {
                    let query = WhatIfRef::new(
                        &registered.history,
                        registered.versioned.initial(),
                        s.modifications(),
                    );
                    query
                        .normalize()
                        .map_err(|e| context(Error::from(e), Phase::Normalize, s))
                })
                .collect::<Result<Vec<NormalizedWhatIf>, Error>>()?;
            let groups = group_scenarios(&normalized);
            stats.normalize = normalize_start.elapsed();

            // One slice per group (shared), or one per scenario (single
            // queries, ablation, or the greedy slicer whose certificates
            // are pairwise only).
            let slice_start = Instant::now();
            let share = scenarios.len() > 1
                && method.uses_program_slicing()
                && !no_slice_sharing
                && !config.use_greedy_slicer;
            let slices: Vec<Arc<ProgramSliceResult>> = if share {
                let computed = run_indexed(groups.groups.len(), threads, |g| {
                    let group = &groups.groups[g];
                    // Borrow each member's modified history from the
                    // normalization results instead of cloning it into the
                    // group.
                    let variants: Vec<&History> = group
                        .members
                        .iter()
                        .map(|&i| &normalized[i].modified)
                        .collect();
                    program_slice_multi(
                        &group.original,
                        &variants,
                        &group.positions,
                        registered.versioned.initial(),
                        &config.slicing(),
                    )
                    .map(Arc::new)
                    .map_err(|e| {
                        // A shared slice is computed for the whole group at
                        // once; name every member rather than guessing one.
                        let members = group
                            .members
                            .iter()
                            .map(|&i| scenarios[i].name())
                            .collect::<Vec<_>>()
                            .join(", ");
                        Error::from(e)
                            .in_phase(Phase::ProgramSlicing)
                            .for_scenario(members)
                            .on_history(history_name.clone())
                    })
                });
                collect_results(computed)?
            } else {
                let computed = run_indexed(normalized.len(), threads, |i| {
                    compute_program_slice(
                        &normalized[i],
                        registered.versioned.initial(),
                        method,
                        &config,
                    )
                    .map(Arc::new)
                    .map_err(|e| context(e, Phase::ProgramSlicing, &scenarios[i]))
                });
                collect_results(computed)?
            };
            stats.slicing = slice_start.elapsed();

            let cache: Option<SliceCache> = share.then(|| SliceCache::new(&groups, slices.clone()));
            if share {
                stats.slice_groups = groups.groups.len();
                stats.shared_slice_hits = scenarios.len() - groups.groups.len();
            } else {
                stats.slice_groups = slices.len();
            }
            self.counters
                .slices_computed
                .fetch_add(stats.slice_groups as u64, Ordering::Relaxed);
            self.counters
                .slices_shared
                .fetch_add(stats.shared_slice_hits as u64, Ordering::Relaxed);

            let exec_start = Instant::now();
            let answers = self.run_pool(threads, &scenarios, |i| {
                let slice = match &cache {
                    Some(cache) => cache.slice_for(i),
                    None => Arc::clone(&slices[i]),
                };
                answer_normalized(
                    &normalized[i],
                    &slice,
                    &registered.versioned,
                    method,
                    &config,
                )
                .map_err(|e| context(e, Phase::Execution, &scenarios[i]))
            })?;
            stats.execution = exec_start.elapsed();
            answers
        };

        // Optional impact phase: reduce each delta to an aggregate report
        // with the metric baseline taken from the current state.
        let reports = match &impact {
            None => vec![None; answers.len()],
            Some(spec) => answers
                .iter()
                .zip(&scenarios)
                .map(|(answer, s)| {
                    answer
                        .impact(spec)
                        .and_then(|report| report.with_baseline(registered.current_state(), spec))
                        .map(Some)
                        .map_err(|e| context(e, Phase::Impact, s))
                })
                .collect::<Result<Vec<_>, Error>>()?,
        };

        // Count the work only once it actually succeeded, so `stats()` never
        // reports failed requests as answered.
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .scenarios_answered
            .fetch_add(scenarios.len() as u64, Ordering::Relaxed);

        stats.total = total_start.elapsed();
        let scenarios = scenarios
            .into_iter()
            .zip(answers)
            .zip(reports)
            .map(|((spec, answer), impact)| ScenarioResponse {
                name: spec.name().to_string(),
                answer,
                impact,
            })
            .collect();
        Ok(Response::new(history_name, method, scenarios, stats))
    }

    /// Runs `answer` for every scenario on the worker pool, converting
    /// worker panics into [`ErrorKind::WorkerPanicked`].
    fn run_pool(
        &self,
        threads: usize,
        scenarios: &[ScenarioSpec],
        answer: impl Fn(usize) -> Result<WhatIfAnswer, Error> + Sync,
    ) -> Result<Vec<WhatIfAnswer>, Error> {
        let results = run_indexed(scenarios.len(), threads, |i| {
            catch_unwind(AssertUnwindSafe(|| answer(i))).unwrap_or_else(|_| {
                Err(Error::new(ErrorKind::WorkerPanicked)
                    .in_phase(Phase::Execution)
                    .for_scenario(scenarios[i].name().to_string()))
            })
        });
        collect_results(results)
    }
}

/// Convenience: `session.on(..).run_batch(pairs)` accepts
/// `(name, ModificationSet)` tuples; this free function builds the same
/// pairs from a sweep closure, mirroring
/// `mahif-scenario`'s `Scenario::sweep_replace_values` at the core layer.
pub fn sweep<V: std::fmt::Display>(
    prefix: &str,
    position: usize,
    values: impl IntoIterator<Item = V>,
    make: impl Fn(&V) -> mahif_history::Statement,
) -> Vec<ScenarioSpec> {
    values
        .into_iter()
        .map(|value| {
            let statement = make(&value);
            ScenarioSpec::new(
                format!("{prefix}/{value}"),
                ModificationSet::new(vec![mahif_history::Modification::replace(
                    position, statement,
                )]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impact::ImpactSpec;
    use mahif_expr::builder::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{SetClause, Statement};

    fn session() -> Session {
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn threshold(t: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(t)),
        )
    }

    #[test]
    fn registration_materializes_versions_once() {
        let s = session();
        let reg = s.history("retail").unwrap();
        assert_eq!(reg.name(), "retail");
        assert_eq!(reg.history().len(), 3);
        assert_eq!(reg.versions().version_count(), 4);
        assert_eq!(reg.initial_state().total_tuples(), 4);
        assert_eq!(s.stats().version_chains_built, 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut s = session();
        let err = s
            .register(
                "retail",
                running_example_database(),
                History::new(running_example_history()),
            )
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateHistory(_)));
        assert!(err.to_string().contains("retail"));
    }

    #[test]
    fn single_query_all_methods_agree() {
        let s = session();
        let reference = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .method(Method::Naive)
            .run()
            .unwrap();
        assert_eq!(reference.delta().len(), 2);
        for method in Method::all() {
            let response = s
                .on("retail")
                .replace(0, running_example_u1_prime())
                .method(method)
                .run()
                .unwrap();
            assert_eq!(response.delta(), reference.delta(), "method {method}");
            assert_eq!(response.len(), 1);
            assert_eq!(response.scenarios[0].name, "default");
        }
    }

    #[test]
    fn batch_shares_one_slice_across_a_sweep() {
        let s = session();
        let response = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| {
                threshold(*t)
            }))
            .unwrap();
        assert_eq!(response.len(), 5);
        assert_eq!(response.stats.slice_groups, 1);
        assert_eq!(response.stats.shared_slice_hits, 4);
        assert!(response.get("threshold/60").is_some());
        assert!(response.get("nope").is_none());
        // Each batch answer equals the single-query answer.
        for spec in sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| threshold(*t)) {
            let single = s
                .on("retail")
                .modifications(spec.modifications().clone())
                .run()
                .unwrap();
            assert_eq!(
                &response.get(spec.name()).unwrap().answer.delta,
                single.delta(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn stats_count_work_not_copies() {
        let s = session();
        for t in [55i64, 60, 65] {
            s.on("retail").replace(0, threshold(t)).run().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.version_chains_built, 1, "no request re-registers");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.scenarios_answered, 3);
    }

    #[test]
    fn multiple_histories_are_independent() {
        let mut s = session();
        s.register(
            "retail-2",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let a = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let b = s
            .on("retail-2")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        assert_eq!(a.delta(), b.delta());
        assert_eq!(a.history, "retail");
        assert_eq!(b.history, "retail-2");
        assert_eq!(s.stats().version_chains_built, 2);
    }

    #[test]
    fn unknown_history_is_reported_with_context() {
        let s = session();
        let err = s
            .on("nope")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)));
        assert!(err.to_string().contains("'nope'"), "{err}");
    }

    #[test]
    fn empty_request_answers_one_empty_scenario() {
        let s = session();
        let response = s.on("retail").run().unwrap();
        assert_eq!(response.len(), 1);
        assert!(response.delta().is_empty());
    }

    #[test]
    fn empty_run_batch_is_an_error_not_a_silent_default() {
        let s = session();
        let empty: Vec<ScenarioSpec> = Vec::new();
        let err = s.on("retail").run_batch(empty).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::EmptyRequest), "{err:?}");
        assert!(err.to_string().contains("no scenarios"), "{err}");
        // Inline modifications still count as a scenario for run_batch.
        let empty: Vec<ScenarioSpec> = Vec::new();
        let response = s
            .on("retail")
            .replace(0, threshold(60))
            .run_batch(empty)
            .unwrap();
        assert_eq!(response.len(), 1);
    }

    #[test]
    fn failed_requests_are_not_counted_as_answered() {
        let s = session();
        s.on("nope").run().unwrap_err();
        s.on("retail").sql("FROB").run().unwrap_err();
        let stats = s.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.scenarios_answered, 0);
        s.on("retail").replace(0, threshold(60)).run().unwrap();
        assert_eq!(s.stats().requests, 1);
        assert_eq!(s.stats().scenarios_answered, 1);
    }

    #[test]
    fn sql_error_uses_the_final_inline_name_regardless_of_order() {
        let s = session();
        // `.named()` after `.sql()` — the error must still name 'late'.
        let err = s.on("retail").sql("FROB").named("late").run().unwrap_err();
        assert!(err.to_string().contains("scenario 'late'"), "{err}");
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let s = session();
        let err = s
            .on("retail")
            .scenario(("a", ModificationSet::single_replace(0, threshold(55))))
            .scenario(("a", ModificationSet::single_replace(0, threshold(60))))
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateScenario(_)));
        assert!(err.to_string().contains("'a'"));
    }

    #[test]
    fn impact_reports_ride_along_uniformly() {
        let s = session();
        let response = s
            .on("retail")
            .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
            .run_batch(sweep("threshold", 0, [60i64, 100], |t| threshold(*t)))
            .unwrap();
        let t60 = response.get("threshold/60").unwrap();
        let report = t60.impact.as_ref().unwrap();
        // Current fees total 17 (Figure 3); threshold 60 charges Alex 5 more.
        assert_eq!(report.baseline, Some(17));
        assert_eq!(report.net_change(), 5);
    }

    #[test]
    fn display_of_response_names_scenarios() {
        let s = session();
        let response = s
            .on("retail")
            .named("bob")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let text = response.to_string();
        assert!(text.contains("scenario 'bob'"), "{text}");
        assert!(text.contains("history 'retail'"), "{text}");
    }
}
