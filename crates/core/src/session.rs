//! The multi-history session: the middleware's long-lived public entry
//! point.
//!
//! A [`Session`] registers any number of **named** histories — each
//! registration executes the history once to materialize the version chain
//! (the deployment equivalent is a DBMS with time travel plus the statement
//! log) — and then answers what-if requests against them. Requests are
//! built fluently with [`Session::on`] and executed by the single
//! [`Session::execute`] funnel: a single query is a batch of one, so
//! shared-slice grouping and the worker pool apply to every entry point.
//! The engine borrows the registered history and initial state per request
//! — answering is O(answer), never O(|H| + |D|) in copies — which
//! [`Session::stats`] makes observable: `version_chains_built` stays at the
//! number of registrations no matter how many requests run.
//!
//! ```
//! use mahif::{ImpactSpec, Method, Session};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::History;
//!
//! let mut session = Session::new();
//! session
//!     .register(
//!         "retail",
//!         running_example_database(),
//!         History::new(running_example_history()),
//!     )
//!     .unwrap();
//!
//! // "What if the free-shipping threshold had been $60 instead of $50?"
//! let response = session
//!     .on("retail")
//!     .replace(0, running_example_u1_prime())
//!     .method(Method::ReenactPsDs)
//!     .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(response.delta().len(), 2);
//! assert_eq!(response.impact().unwrap().net_change(), 5);
//! assert_eq!(session.stats().version_chains_built, 1);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mahif_history::{DeltaInterner, History, ModificationSet, NormalizedWhatIf, WhatIfRef};
use mahif_slicing::{
    group_scenarios, program_slice_multi_with_context, refine_slice_for_variant,
    ProgramSliceResult, SliceCache, SymbolicGroupContext,
};
use mahif_storage::{Database, VersionedDatabase};

use crate::config::Method;
use crate::engine::{answer_normalized, answer_what_if, compute_program_slice, GroupPlan};
use crate::error::{Error, ErrorKind, Phase};
use crate::pool::{collect_results, resolve_parallelism, run_indexed};
use crate::request::{RequestParts, ScenarioSpec, WhatIfRequest};
use crate::response::{BatchStats, Response, ScenarioResponse};
use crate::stats::WhatIfAnswer;

/// One history registered with a [`Session`]: the statement log plus the
/// version chain materialized at registration.
#[derive(Debug, Clone)]
pub struct RegisteredHistory {
    name: String,
    history: History,
    versioned: VersionedDatabase,
}

impl RegisteredHistory {
    /// The name the history was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered transactional history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The full version chain (time travel).
    pub fn versions(&self) -> &VersionedDatabase {
        &self.versioned
    }

    /// The initial database state `D` (before the history).
    pub fn initial_state(&self) -> &Database {
        self.versioned.initial()
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> &Database {
        self.versioned.current()
    }
}

/// Monotonic work counters of a session (interior mutability: answering
/// borrows the session immutably).
#[derive(Debug, Default)]
struct Counters {
    version_chains_built: AtomicU64,
    requests: AtomicU64,
    scenarios_answered: AtomicU64,
    slices_computed: AtomicU64,
    slices_shared: AtomicU64,
    original_reenactments: AtomicU64,
    refined_slices: AtomicU64,
    delta_tuples_deduped: AtomicU64,
}

impl Clone for Counters {
    fn clone(&self) -> Self {
        Counters {
            version_chains_built: AtomicU64::new(self.version_chains_built.load(Ordering::Relaxed)),
            requests: AtomicU64::new(self.requests.load(Ordering::Relaxed)),
            scenarios_answered: AtomicU64::new(self.scenarios_answered.load(Ordering::Relaxed)),
            slices_computed: AtomicU64::new(self.slices_computed.load(Ordering::Relaxed)),
            slices_shared: AtomicU64::new(self.slices_shared.load(Ordering::Relaxed)),
            original_reenactments: AtomicU64::new(
                self.original_reenactments.load(Ordering::Relaxed),
            ),
            refined_slices: AtomicU64::new(self.refined_slices.load(Ordering::Relaxed)),
            delta_tuples_deduped: AtomicU64::new(self.delta_tuples_deduped.load(Ordering::Relaxed)),
        }
    }
}

/// A snapshot of a session's lifetime work counters (see
/// [`Session::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionStats {
    /// Histories currently registered.
    pub histories: usize,
    /// Version chains materialized — increments only in
    /// [`Session::register`]. Staying constant across requests is the
    /// observable form of the zero-clone guarantee: no request re-executes
    /// or re-clones a registered history.
    pub version_chains_built: u64,
    /// Requests executed (a batch counts once).
    pub requests: u64,
    /// Scenarios answered across all requests.
    pub scenarios_answered: u64,
    /// Program slices computed (one per slice-sharing group).
    pub slices_computed: u64,
    /// Scenarios that reused a group's shared slice.
    pub slices_shared: u64,
    /// Original-side reenactments performed: one per `(group plan,
    /// relation)` plus one per relation for scenarios answered outside a
    /// shared plan. For batches this grows by `groups × relations`, not
    /// `scenarios × relations` — the observable once-per-group guarantee.
    pub original_reenactments: u64,
    /// Group members whose slice was refined below the group's union slice
    /// (see `EngineConfig::refine_slices`).
    pub refined_slices: u64,
    /// Annotated delta tuples deduplicated across batch answers (identical
    /// relation deltas stored once; see `mahif_history::DeltaInterner`).
    pub delta_tuples_deduped: u64,
}

/// The Mahif middleware session: registers named histories once and answers
/// many what-if requests against them. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Session {
    histories: Vec<RegisteredHistory>,
    counters: Counters,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Convenience constructor: a session with one registered history.
    pub fn with_history(
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<Self, Error> {
        let mut session = Session::new();
        session.register(name, initial, history)?;
        Ok(session)
    }

    /// Registers a database and the transactional history that was executed
    /// over it under `name`. The history is executed once to materialize
    /// the version chain; every later request borrows that chain.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<&mut Self, Error> {
        let name = name.into();
        if self.histories.iter().any(|h| h.name == name) {
            return Err(Error::new(ErrorKind::DuplicateHistory(name.clone()))
                .in_phase(Phase::Register)
                .on_history(name));
        }
        let versioned = history.execute_versioned(&initial).map_err(|e| {
            Error::from(e)
                .in_phase(Phase::Register)
                .on_history(name.clone())
        })?;
        self.counters
            .version_chains_built
            .fetch_add(1, Ordering::Relaxed);
        self.histories.push(RegisteredHistory {
            name,
            history,
            versioned,
        });
        Ok(self)
    }

    /// Starts a fluent what-if request against the history registered under
    /// `name`. Name resolution is deferred to `run`, so the chain itself is
    /// infallible.
    pub fn on(&self, name: impl Into<String>) -> WhatIfRequest<'_> {
        WhatIfRequest::new(self, name.into())
    }

    /// The registered history named `name`.
    pub fn history(&self, name: &str) -> Result<&RegisteredHistory, Error> {
        self.histories
            .iter()
            .find(|h| h.name == name)
            .ok_or_else(|| {
                Error::new(ErrorKind::UnknownHistory(name.to_string()))
                    .in_phase(Phase::Build)
                    .on_history(name.to_string())
            })
    }

    /// The registered histories, in registration order.
    pub fn histories(&self) -> impl Iterator<Item = &RegisteredHistory> {
        self.histories.iter()
    }

    /// Number of registered histories.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// True when no history is registered.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// A snapshot of the session's lifetime work counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            histories: self.histories.len(),
            version_chains_built: self.counters.version_chains_built.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            scenarios_answered: self.counters.scenarios_answered.load(Ordering::Relaxed),
            slices_computed: self.counters.slices_computed.load(Ordering::Relaxed),
            slices_shared: self.counters.slices_shared.load(Ordering::Relaxed),
            original_reenactments: self.counters.original_reenactments.load(Ordering::Relaxed),
            refined_slices: self.counters.refined_slices.load(Ordering::Relaxed),
            delta_tuples_deduped: self.counters.delta_tuples_deduped.load(Ordering::Relaxed),
        }
    }

    /// Executes a request. This is the single funnel every public entry
    /// point goes through — `run()`, `run_batch(..)`, the deprecated
    /// [`crate::Mahif`] shim and `mahif-scenario`'s `ScenarioSet` all end
    /// here, so batch optimizations reach single queries and vice versa.
    pub fn execute(&self, request: WhatIfRequest<'_>) -> Result<Response, Error> {
        let parts = request.into_parts()?;
        self.execute_parts(parts)
    }

    fn execute_parts(&self, parts: RequestParts) -> Result<Response, Error> {
        let total_start = Instant::now();
        let RequestParts {
            history: history_name,
            scenarios,
            method,
            config,
            parallelism,
            no_slice_sharing,
            impact,
        } = parts;
        let registered = self.history(&history_name)?;
        if scenarios.is_empty() {
            return Err(Error::new(ErrorKind::EmptyRequest)
                .in_phase(Phase::Build)
                .on_history(history_name));
        }
        for (i, s) in scenarios.iter().enumerate() {
            if scenarios[..i].iter().any(|other| other.name() == s.name()) {
                return Err(
                    Error::new(ErrorKind::DuplicateScenario(s.name().to_string()))
                        .in_phase(Phase::Build)
                        .for_scenario(s.name().to_string())
                        .on_history(history_name),
                );
            }
        }
        let threads = resolve_parallelism(parallelism, scenarios.len());
        let mut stats = BatchStats {
            scenarios: scenarios.len(),
            threads,
            ..Default::default()
        };

        let context = |e: Error, phase: Phase, scenario: &ScenarioSpec| {
            e.in_phase(phase)
                .for_scenario(scenario.name().to_string())
                .on_history(history_name.clone())
        };

        let answers: Vec<WhatIfAnswer> = if method == Method::Naive {
            // The naïve algorithm re-executes the modified history over a
            // copy of the pre-history state; nothing is shareable beyond
            // the registered states, so scenarios just run in parallel.
            let exec_start = Instant::now();
            let answers = self.run_pool(threads, &scenarios, |i| {
                let query = WhatIfRef::new(
                    &registered.history,
                    registered.versioned.initial(),
                    scenarios[i].modifications(),
                );
                answer_what_if(
                    query,
                    &registered.versioned,
                    registered.versioned.current(),
                    method,
                    &config,
                )
                .map_err(|e| context(e, Phase::Execution, &scenarios[i]))
            })?;
            stats.execution = exec_start.elapsed();
            answers
        } else {
            // Normalize once per scenario and group scenarios that can
            // share a program slice.
            let normalize_start = Instant::now();
            let normalized = scenarios
                .iter()
                .map(|s| {
                    let query = WhatIfRef::new(
                        &registered.history,
                        registered.versioned.initial(),
                        s.modifications(),
                    );
                    query
                        .normalize()
                        .map_err(|e| context(Error::from(e), Phase::Normalize, s))
                })
                .collect::<Result<Vec<NormalizedWhatIf>, Error>>()?;
            let groups = group_scenarios(&normalized);
            stats.normalize = normalize_start.elapsed();

            // One slice per group (shared), or one per scenario (single
            // queries, ablation, or the greedy slicer whose certificates
            // are pairwise only).
            let group_error = |e: Error, phase: Phase, g: usize| {
                // Shared work is computed for the whole group at once; name
                // every member rather than guessing one.
                let members = groups.groups[g]
                    .members
                    .iter()
                    .map(|&i| scenarios[i].name())
                    .collect::<Vec<_>>()
                    .join(", ");
                e.in_phase(phase)
                    .for_scenario(members)
                    .on_history(history_name.clone())
            };
            let slice_start = Instant::now();
            let share = scenarios.len() > 1
                && method.uses_program_slicing()
                && !no_slice_sharing
                && !config.use_greedy_slicer;
            let (slices, contexts): (Vec<Arc<ProgramSliceResult>>, Vec<SymbolicGroupContext>) =
                if share {
                    let computed = run_indexed(groups.groups.len(), threads, |g| {
                        let group = &groups.groups[g];
                        // Borrow each member's modified history from the
                        // normalization results instead of cloning it into
                        // the group.
                        let variants: Vec<&History> = group
                            .members
                            .iter()
                            .map(|&i| &normalized[i].modified)
                            .collect();
                        program_slice_multi_with_context(
                            &group.original,
                            &variants,
                            &group.positions,
                            registered.versioned.initial(),
                            &config.slicing(),
                        )
                        .map(|(slice, ctx)| (Arc::new(slice), ctx))
                        .map_err(|e| group_error(Error::from(e), Phase::ProgramSlicing, g))
                    });
                    collect_results(computed)?.into_iter().unzip()
                } else {
                    let computed = run_indexed(normalized.len(), threads, |i| {
                        compute_program_slice(
                            &normalized[i],
                            registered.versioned.initial(),
                            method,
                            &config,
                        )
                        .map(Arc::new)
                        .map_err(|e| context(e, Phase::ProgramSlicing, &scenarios[i]))
                    });
                    (collect_results(computed)?, Vec::new())
                };
            if share {
                stats.slice_groups = groups.groups.len();
                stats.shared_slice_hits = scenarios.len() - groups.groups.len();
            } else {
                stats.slice_groups = slices.len();
            }
            self.counters
                .slices_computed
                .fetch_add(stats.slice_groups as u64, Ordering::Relaxed);
            self.counters
                .slices_shared
                .fetch_add(stats.shared_slice_hits as u64, Ordering::Relaxed);

            // Group execution plans: the original-side reenactment is
            // identical across a group's members, so compute it once per
            // group and answer members against the cached results. Disabled
            // for ablation (and as the pre-group-plan baseline) via
            // `EngineConfig::disable_group_reenactment`.
            let use_plans = share && !config.disable_group_reenactment;

            // Optional per-member refinement: shrink a member's slice below
            // the certified union (reusing the group's symbolic context) and
            // answer it solo with the smaller slice when refinement helps.
            // Refinement needs only the shared slices and their symbolic
            // contexts, so it composes with `disable_group_reenactment`.
            let refined: Vec<Option<Arc<ProgramSliceResult>>> = if share && config.refine_slices {
                let computed = run_indexed(scenarios.len(), threads, |i| {
                    let g = groups.scenario_group[i];
                    if groups.groups[g].members.len() <= 1 {
                        return Ok(None);
                    }
                    refine_slice_for_variant(
                        &normalized[i].original,
                        &normalized[i].modified,
                        &normalized[i].modified_positions,
                        registered.versioned.initial(),
                        &config.slicing(),
                        &slices[g],
                        &contexts[g],
                    )
                    .map(|r| {
                        (r.kept_positions.len() < slices[g].kept_positions.len())
                            .then(|| Arc::new(r))
                    })
                    .map_err(|e| context(Error::from(e), Phase::ProgramSlicing, &scenarios[i]))
                });
                collect_results(computed)?
            } else {
                vec![None; scenarios.len()]
            };
            stats.refined_slices = refined.iter().filter(|r| r.is_some()).count();
            // The request's deduplicated slicing solver cost: each distinct
            // slice counted once. Refinement solver calls are member work —
            // a refined member re-reports them in its own answer
            // (`shared_work` stays false) — so they are not added here;
            // refinement *wall-clock* still falls inside `stats.slicing`,
            // which times the phase, not member attributions.
            stats.solver_calls = slices.iter().map(|s| s.solver_calls).sum::<usize>();
            stats.slicing = slice_start.elapsed();

            if use_plans {
                // The execution phase covers plan building (the groups'
                // shared reenactment work) plus member answering.
                let exec_start = Instant::now();
                // Build plans only for groups with at least one member that
                // was not refined away; a fully refined group would never
                // use its plan's cached original-side results.
                let needs_plan: Vec<bool> = groups
                    .groups
                    .iter()
                    .map(|g| g.members.iter().any(|&i| refined[i].is_none()))
                    .collect();
                let plan_results = run_indexed(groups.groups.len(), threads, |g| {
                    if !needs_plan[g] {
                        return Ok(None);
                    }
                    let members: Vec<&NormalizedWhatIf> = groups.groups[g]
                        .members
                        .iter()
                        .map(|&i| &normalized[i])
                        .collect();
                    GroupPlan::build(&members, &slices[g], &registered.versioned, method, &config)
                        .map(Some)
                        .map_err(|e| group_error(e, Phase::Execution, g))
                });
                let plans = collect_results(plan_results)?;
                // Singleton groups fold their shared work into the member's
                // own answer (exact single-query behavior), so only
                // multi-member plans report shared work at the batch level.
                stats.group_reenactment = plans
                    .iter()
                    .flatten()
                    .filter(|p| p.group_size() > 1)
                    .map(|p| p.shared_duration())
                    .sum();
                stats.original_reenactments = plans
                    .iter()
                    .flatten()
                    .filter(|p| p.group_size() > 1)
                    .map(|p| p.original_reenactments())
                    .sum::<usize>();

                let answers = self.run_pool(threads, &scenarios, |i| {
                    match &refined[i] {
                        // A refined member answers solo with its own smaller
                        // slice (its original-side reenactment is over the
                        // *refined* sliced history, so it cannot reuse the
                        // plan's cached results).
                        Some(slice) => answer_normalized(
                            &normalized[i],
                            slice,
                            &registered.versioned,
                            method,
                            &config,
                        ),
                        None => plans[groups.scenario_group[i]]
                            .as_ref()
                            .expect("a plan is built for every group with unrefined members")
                            .answer_in_group(&normalized[i], &registered.versioned),
                    }
                    .map_err(|e| context(e, Phase::Execution, &scenarios[i]))
                })?;
                stats.execution = exec_start.elapsed();
                answers
            } else {
                let cache: Option<SliceCache> =
                    share.then(|| SliceCache::new(&groups, slices.clone()));
                let exec_start = Instant::now();
                let answers = self.run_pool(threads, &scenarios, |i| {
                    let slice = match (&refined[i], &cache) {
                        // Refinement composes with the no-group-plan
                        // ablation: a refined member still answers with its
                        // smaller slice.
                        (Some(refined), _) => Arc::clone(refined),
                        (None, Some(cache)) => cache.slice_for(i),
                        (None, None) => Arc::clone(&slices[i]),
                    };
                    answer_normalized(
                        &normalized[i],
                        &slice,
                        &registered.versioned,
                        method,
                        &config,
                    )
                    .map_err(|e| context(e, Phase::Execution, &scenarios[i]))
                })?;
                stats.execution = exec_start.elapsed();
                answers
            }
        };

        // Scenarios answered outside a shared plan (solo paths, refined
        // members) report their own original-side reenactments; add them to
        // the plans' once-per-group count.
        stats.original_reenactments += answers
            .iter()
            .map(|a| a.stats.original_reenactments)
            .sum::<usize>();

        // Share the storage of identical answers across the batch (the
        // base-plus-diff representation of a sweep's deltas): equal relation
        // deltas collapse to one allocation, observably via
        // `delta_tuples_deduped`. Content equality is untouched. A single
        // answer has nothing to share, so the single-query hot path skips
        // the pass entirely.
        let mut answers = answers;
        if answers.len() > 1 {
            let mut interner = DeltaInterner::new();
            for answer in &mut answers {
                stats.delta_tuples_deduped += interner.intern(&mut answer.delta);
            }
        }

        // Optional impact phase: reduce each delta to an aggregate report
        // with the metric baseline taken from the current state.
        let reports = match &impact {
            None => vec![None; answers.len()],
            Some(spec) => answers
                .iter()
                .zip(&scenarios)
                .map(|(answer, s)| {
                    answer
                        .impact(spec)
                        .and_then(|report| report.with_baseline(registered.current_state(), spec))
                        .map(Some)
                        .map_err(|e| context(e, Phase::Impact, s))
                })
                .collect::<Result<Vec<_>, Error>>()?,
        };

        // Count the work only once it actually succeeded, so `stats()` never
        // reports failed requests as answered.
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .scenarios_answered
            .fetch_add(scenarios.len() as u64, Ordering::Relaxed);
        self.counters
            .original_reenactments
            .fetch_add(stats.original_reenactments as u64, Ordering::Relaxed);
        self.counters
            .refined_slices
            .fetch_add(stats.refined_slices as u64, Ordering::Relaxed);
        self.counters
            .delta_tuples_deduped
            .fetch_add(stats.delta_tuples_deduped as u64, Ordering::Relaxed);

        stats.total = total_start.elapsed();
        let scenarios = scenarios
            .into_iter()
            .zip(answers)
            .zip(reports)
            .map(|((spec, answer), impact)| ScenarioResponse {
                name: spec.name().to_string(),
                answer,
                impact,
            })
            .collect();
        Ok(Response::new(history_name, method, scenarios, stats))
    }

    /// Runs `answer` for every scenario on the worker pool, converting
    /// worker panics into [`ErrorKind::WorkerPanicked`].
    fn run_pool(
        &self,
        threads: usize,
        scenarios: &[ScenarioSpec],
        answer: impl Fn(usize) -> Result<WhatIfAnswer, Error> + Sync,
    ) -> Result<Vec<WhatIfAnswer>, Error> {
        let results = run_indexed(scenarios.len(), threads, |i| {
            catch_unwind(AssertUnwindSafe(|| answer(i))).unwrap_or_else(|_| {
                Err(Error::new(ErrorKind::WorkerPanicked)
                    .in_phase(Phase::Execution)
                    .for_scenario(scenarios[i].name().to_string()))
            })
        });
        collect_results(results)
    }
}

/// Convenience: `session.on(..).run_batch(pairs)` accepts
/// `(name, ModificationSet)` tuples; this free function builds the same
/// pairs from a sweep closure, mirroring
/// `mahif-scenario`'s `Scenario::sweep_replace_values` at the core layer.
pub fn sweep<V: std::fmt::Display>(
    prefix: &str,
    position: usize,
    values: impl IntoIterator<Item = V>,
    make: impl Fn(&V) -> mahif_history::Statement,
) -> Vec<ScenarioSpec> {
    values
        .into_iter()
        .map(|value| {
            let statement = make(&value);
            ScenarioSpec::new(
                format!("{prefix}/{value}"),
                ModificationSet::new(vec![mahif_history::Modification::replace(
                    position, statement,
                )]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impact::ImpactSpec;
    use mahif_expr::builder::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{SetClause, Statement};

    fn session() -> Session {
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn threshold(t: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(t)),
        )
    }

    #[test]
    fn registration_materializes_versions_once() {
        let s = session();
        let reg = s.history("retail").unwrap();
        assert_eq!(reg.name(), "retail");
        assert_eq!(reg.history().len(), 3);
        assert_eq!(reg.versions().version_count(), 4);
        assert_eq!(reg.initial_state().total_tuples(), 4);
        assert_eq!(s.stats().version_chains_built, 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut s = session();
        let err = s
            .register(
                "retail",
                running_example_database(),
                History::new(running_example_history()),
            )
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateHistory(_)));
        assert!(err.to_string().contains("retail"));
    }

    #[test]
    fn single_query_all_methods_agree() {
        let s = session();
        let reference = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .method(Method::Naive)
            .run()
            .unwrap();
        assert_eq!(reference.delta().len(), 2);
        for method in Method::all() {
            let response = s
                .on("retail")
                .replace(0, running_example_u1_prime())
                .method(method)
                .run()
                .unwrap();
            assert_eq!(response.delta(), reference.delta(), "method {method}");
            assert_eq!(response.len(), 1);
            assert_eq!(response.scenarios[0].name, "default");
        }
    }

    #[test]
    fn batch_shares_one_slice_across_a_sweep() {
        let s = session();
        let response = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| {
                threshold(*t)
            }))
            .unwrap();
        assert_eq!(response.len(), 5);
        assert_eq!(response.stats.slice_groups, 1);
        assert_eq!(response.stats.shared_slice_hits, 4);
        assert!(response.get("threshold/60").is_some());
        assert!(response.get("nope").is_none());
        // Each batch answer equals the single-query answer.
        for spec in sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| threshold(*t)) {
            let single = s
                .on("retail")
                .modifications(spec.modifications().clone())
                .run()
                .unwrap();
            assert_eq!(
                &response.get(spec.name()).unwrap().answer.delta,
                single.delta(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn group_plan_reenacts_the_original_once_per_group() {
        let s = session();
        let thresholds = [55i64, 60, 65, 70, 75];
        let response = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        // One group over one relation: groups × relations = 1, not k × 1.
        assert_eq!(response.stats.slice_groups, 1);
        assert_eq!(response.stats.original_reenactments, 1);
        // Members carry the shared-work flag and no re-attributed shared
        // timings; the shared cost is reported once at the batch level.
        for member in &response.scenarios {
            assert!(member.answer.stats.shared_work);
            assert_eq!(member.answer.stats.original_reenactments, 0);
            assert_eq!(
                member.answer.timings.program_slicing,
                std::time::Duration::ZERO
            );
        }
        // Most thresholds (65..75) waive the same two orders: their equal
        // deltas share storage.
        assert!(response.stats.delta_tuples_deduped > 0);
        // The shared slice's solver calls are reported once at the batch
        // level, not per member.
        assert!(response.stats.solver_calls > 0);
        for member in &response.scenarios {
            assert_eq!(member.answer.stats.solver_calls, 0);
        }
        // The session counters accumulate the same numbers.
        assert_eq!(s.stats().original_reenactments, 1);
        assert_eq!(
            s.stats().delta_tuples_deduped,
            response.stats.delta_tuples_deduped as u64
        );

        // The ablation (pre-group-plan path) reenacts the original once per
        // member — and still answers identically.
        let unshared = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .without_group_reenactment()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(unshared.stats.original_reenactments, thresholds.len());
        for (a, b) in response.scenarios.iter().zip(&unshared.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
    }

    #[test]
    fn slice_refinement_is_counted_and_preserves_answers() {
        // Extend the history with an update only low thresholds interact
        // with, so a mixed sweep's union slice keeps it while refinement
        // drops it for the high-threshold members.
        let mut statements = running_example_history();
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(3)),
            and(ge(attr("Price"), lit(30)), le(attr("Price"), lit(35))),
        ));
        let s = Session::with_history(
            "retail",
            running_example_database(),
            History::new(statements),
        )
        .unwrap();
        let thresholds = [32i64, 60, 65];
        let reference = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(reference.stats.refined_slices, 0, "refinement is opt-in");
        let refined = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .with_slice_refinement()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert!(
            refined.stats.refined_slices > 0,
            "the high thresholds' slices shrink below the union"
        );
        assert_eq!(
            s.stats().refined_slices,
            refined.stats.refined_slices as u64
        );
        for (a, b) in reference.scenarios.iter().zip(&refined.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
        // Refinement composes with the no-group-plan ablation: members
        // still answer with their refined slices.
        let combo = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .with_slice_refinement()
            .without_group_reenactment()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(combo.stats.refined_slices, refined.stats.refined_slices);
        for (a, b) in reference.scenarios.iter().zip(&combo.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
    }

    #[test]
    fn stats_count_work_not_copies() {
        let s = session();
        for t in [55i64, 60, 65] {
            s.on("retail").replace(0, threshold(t)).run().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.version_chains_built, 1, "no request re-registers");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.scenarios_answered, 3);
    }

    #[test]
    fn multiple_histories_are_independent() {
        let mut s = session();
        s.register(
            "retail-2",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let a = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let b = s
            .on("retail-2")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        assert_eq!(a.delta(), b.delta());
        assert_eq!(a.history, "retail");
        assert_eq!(b.history, "retail-2");
        assert_eq!(s.stats().version_chains_built, 2);
    }

    #[test]
    fn unknown_history_is_reported_with_context() {
        let s = session();
        let err = s
            .on("nope")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)));
        assert!(err.to_string().contains("'nope'"), "{err}");
    }

    #[test]
    fn empty_request_answers_one_empty_scenario() {
        let s = session();
        let response = s.on("retail").run().unwrap();
        assert_eq!(response.len(), 1);
        assert!(response.delta().is_empty());
    }

    #[test]
    fn empty_run_batch_is_an_error_not_a_silent_default() {
        let s = session();
        let empty: Vec<ScenarioSpec> = Vec::new();
        let err = s.on("retail").run_batch(empty).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::EmptyRequest), "{err:?}");
        assert!(err.to_string().contains("no scenarios"), "{err}");
        // Inline modifications still count as a scenario for run_batch.
        let empty: Vec<ScenarioSpec> = Vec::new();
        let response = s
            .on("retail")
            .replace(0, threshold(60))
            .run_batch(empty)
            .unwrap();
        assert_eq!(response.len(), 1);
    }

    #[test]
    fn failed_requests_are_not_counted_as_answered() {
        let s = session();
        s.on("nope").run().unwrap_err();
        s.on("retail").sql("FROB").run().unwrap_err();
        let stats = s.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.scenarios_answered, 0);
        s.on("retail").replace(0, threshold(60)).run().unwrap();
        assert_eq!(s.stats().requests, 1);
        assert_eq!(s.stats().scenarios_answered, 1);
    }

    #[test]
    fn sql_error_uses_the_final_inline_name_regardless_of_order() {
        let s = session();
        // `.named()` after `.sql()` — the error must still name 'late'.
        let err = s.on("retail").sql("FROB").named("late").run().unwrap_err();
        assert!(err.to_string().contains("scenario 'late'"), "{err}");
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let s = session();
        let err = s
            .on("retail")
            .scenario(("a", ModificationSet::single_replace(0, threshold(55))))
            .scenario(("a", ModificationSet::single_replace(0, threshold(60))))
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateScenario(_)));
        assert!(err.to_string().contains("'a'"));
    }

    #[test]
    fn impact_reports_ride_along_uniformly() {
        let s = session();
        let response = s
            .on("retail")
            .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
            .run_batch(sweep("threshold", 0, [60i64, 100], |t| threshold(*t)))
            .unwrap();
        let t60 = response.get("threshold/60").unwrap();
        let report = t60.impact.as_ref().unwrap();
        // Current fees total 17 (Figure 3); threshold 60 charges Alex 5 more.
        assert_eq!(report.baseline, Some(17));
        assert_eq!(report.net_change(), 5);
    }

    #[test]
    fn display_of_response_names_scenarios() {
        let s = session();
        let response = s
            .on("retail")
            .named("bob")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let text = response.to_string();
        assert!(text.contains("scenario 'bob'"), "{text}");
        assert!(text.contains("history 'retail'"), "{text}");
    }
}
