//! The multi-history session: the middleware's long-lived, shareable
//! service core.
//!
//! A [`Session`] registers any number of **named** histories — each
//! registration executes the history once to materialize the version chain
//! (the deployment equivalent is a DBMS with time travel plus the statement
//! log) — and then answers what-if requests against them. Requests are
//! built fluently with [`Session::on`] and executed by the single
//! [`Session::execute`] funnel: a single query is a batch of one, so
//! shared-slice grouping and the worker pool apply to every entry point.
//! The engine borrows the registered history and initial state per request
//! — answering is O(answer), never O(|H| + |D|) in copies — which
//! [`Session::stats`] makes observable: `version_chains_built` stays at the
//! number of registrations no matter how many requests run.
//!
//! ## Concurrency
//!
//! The session is a *shared* service core: `Session` is `Send + Sync`, the
//! registry lives behind a `RwLock`, and **every** operation — including
//! [`Session::register`] and [`Session::unregister`] — takes `&self`, so
//! many threads can serve requests against one `Arc<Session>` while
//! histories come and go. Requests hold no registry lock while executing
//! (they clone out the registered history's `Arc` at admission), so a slow
//! batch never blocks registration or other requests.
//!
//! ## Request lifecycle
//!
//! [`Session::execute`] runs an explicit three-phase lifecycle:
//!
//! 1. **Admit** — resolve the history, validate the scenario set and check
//!    the request [`Budget`](crate::Budget)'s scenario limit; arm the wall-clock deadline.
//! 2. **Plan** — normalize, group and slice the scenarios; an over-budget
//!    solver bill or a passed deadline fails here, before execution.
//! 3. **Execute** — build group plans and answer members on the worker
//!    pool, re-checking the deadline between units of work.
//!
//! A breached budget reports a structured
//! [`ErrorKind::BudgetExceeded`] naming the limit and the observed value.
//!
//! ```
//! use mahif::{ImpactSpec, Method, Session};
//! use mahif_history::statement::{
//!     running_example_database, running_example_history, running_example_u1_prime,
//! };
//! use mahif_history::History;
//!
//! let session = Session::new();
//! session
//!     .register(
//!         "retail",
//!         running_example_database(),
//!         History::new(running_example_history()),
//!     )
//!     .unwrap();
//!
//! // "What if the free-shipping threshold had been $60 instead of $50?"
//! let response = session
//!     .on("retail")
//!     .replace(0, running_example_u1_prime())
//!     .method(Method::ReenactPsDs)
//!     .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(response.delta().len(), 2);
//! assert_eq!(response.impact().unwrap().net_change(), 5);
//! assert_eq!(session.stats().version_chains_built, 1);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mahif_history::{
    DatabaseDelta, DeltaInterner, History, ModificationSet, NormalizedWhatIf, WhatIfRef,
};
use mahif_slicing::{
    group_scenarios, program_slice_multi_with_context, refine_slice_for_variant,
    ProgramSliceResult, ScenarioGroups, SliceCache, SymbolicGroupContext,
};
use mahif_storage::{Database, VersionedDatabase};

use crate::config::{Deadline, EngineConfig, Method};
use crate::engine::{answer_normalized, answer_what_if, compute_program_slice, GroupPlan};
use crate::error::{BudgetBreach, Error, ErrorKind, Phase};
use crate::pool::{collect_results, resolve_parallelism, run_indexed};
use crate::provision::{CachedPlan, PlanKey, Provisioned, SessionConfig};
use crate::request::{RequestParts, ScenarioSpec, WhatIfRequest};
use crate::response::{BatchStats, Response, ScenarioResponse};
use crate::stats::{EngineStats, PhaseTimings, WhatIfAnswer};

/// One history registered with a [`Session`]: the statement log plus the
/// version chain materialized at registration.
#[derive(Debug, Clone)]
pub struct RegisteredHistory {
    name: String,
    history: History,
    versioned: VersionedDatabase,
    /// Provisioning state precomputed at registration (see
    /// [`crate::provision`]): per-statement dependency summaries plus the
    /// history's cross-request plan cache. Lives on the registered state —
    /// an unregister/re-register replaces it wholesale (and bumps the
    /// session's generation), so a stale plan can never be served.
    provisioned: Provisioned,
}

impl RegisteredHistory {
    /// The name the history was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered transactional history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The full version chain (time travel).
    pub fn versions(&self) -> &VersionedDatabase {
        &self.versioned
    }

    /// The initial database state `D` (before the history).
    pub fn initial_state(&self) -> &Database {
        self.versioned.initial()
    }

    /// The current database state `H(D)`.
    pub fn current_state(&self) -> &Database {
        self.versioned.current()
    }

    /// The provisioning state precomputed at registration: dependency
    /// summaries plus the history's cross-request plan cache.
    pub fn provisioned(&self) -> &Provisioned {
        &self.provisioned
    }
}

/// Monotonic work counters of a session (interior mutability: answering
/// borrows the session immutably).
///
/// One mutex guards all values: counters are only touched in whole-request
/// (or whole-registration) commits and whole-set snapshots, so a snapshot
/// can never observe half of a request's counters — also as fields grow.
/// Committing is rare (once per request, not per scenario), so a plain
/// mutex is the right tool; do not "optimize" individual counters into
/// lock-free atomics, that would reintroduce torn snapshots. Lock order:
/// registry lock (if held) strictly before this one.
#[derive(Debug, Default)]
struct Counters {
    values: Mutex<CounterValues>,
}

#[derive(Debug, Clone, Copy, Default)]
struct CounterValues {
    version_chains_built: u64,
    requests: u64,
    scenarios_answered: u64,
    slices_computed: u64,
    slices_shared: u64,
    original_reenactments: u64,
    refined_slices: u64,
    delta_tuples_deduped: u64,
}

impl Counters {
    /// Applies one atomic multi-counter commit.
    fn commit(&self, apply: impl FnOnce(&mut CounterValues)) {
        apply(&mut self.values.lock().expect("counter lock poisoned"));
    }

    /// The single consistent read path over the counters: both
    /// [`Session::stats`] and any serving layer's `/stats` endpoint go
    /// through here, and only ever see whole committed requests.
    fn snapshot(&self, histories: usize) -> SessionStats {
        let v = *self.values.lock().expect("counter lock poisoned");
        SessionStats {
            histories,
            version_chains_built: v.version_chains_built,
            requests: v.requests,
            scenarios_answered: v.scenarios_answered,
            slices_computed: v.slices_computed,
            slices_shared: v.slices_shared,
            original_reenactments: v.original_reenactments,
            refined_slices: v.refined_slices,
            delta_tuples_deduped: v.delta_tuples_deduped,
            // Filled from the live metric cells by `Session::stats` — the
            // plan-cache values are mutated at cache-lookup/insert time on
            // the lock-free monitoring path, so `/stats` and `/metrics`
            // read the very same cells.
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_evictions: 0,
            plan_cache_entries: 0,
            columnar_batches: 0,
            vectorized_predicates: 0,
            row_fallbacks: 0,
            analyzer_rejections: 0,
            analyzer_noop_proofs: 0,
        }
    }
}

impl Clone for Counters {
    fn clone(&self) -> Self {
        Counters {
            values: Mutex::new(*self.values.lock().expect("counter lock poisoned")),
        }
    }
}

/// A snapshot of a session's lifetime work counters (see
/// [`Session::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionStats {
    /// Histories currently registered.
    pub histories: usize,
    /// Version chains materialized — increments only in
    /// [`Session::register`]. Staying constant across requests is the
    /// observable form of the zero-clone guarantee: no request re-executes
    /// or re-clones a registered history.
    pub version_chains_built: u64,
    /// Requests executed (a batch counts once).
    pub requests: u64,
    /// Scenarios answered across all requests.
    pub scenarios_answered: u64,
    /// Program slices computed (one per slice-sharing group).
    pub slices_computed: u64,
    /// Scenarios that reused a group's shared slice.
    pub slices_shared: u64,
    /// Original-side reenactments performed: one per `(group plan,
    /// relation)` plus one per relation for scenarios answered outside a
    /// shared plan. For batches this grows by `groups × relations`, not
    /// `scenarios × relations` — the observable once-per-group guarantee.
    pub original_reenactments: u64,
    /// Group members whose slice was refined below the group's union slice
    /// (see `EngineConfig::refine`).
    pub refined_slices: u64,
    /// Annotated delta tuples deduplicated across batch answers (identical
    /// relation deltas stored once; see `mahif_history::DeltaInterner`).
    pub delta_tuples_deduped: u64,
    /// Provisioning-cache lookups that reused a cached [`crate::GroupPlan`]
    /// — the group (or single scenario) skipped program slicing and plan
    /// building entirely. Unlike the request counters above, the four
    /// plan-cache values read the same atomic cells as `/metrics` (they are
    /// recorded at lookup/insert time, including for requests that later
    /// fail), so both endpoints agree by construction.
    pub plan_cache_hits: u64,
    /// Provisioning-cache lookups that found no certified plan to reuse.
    pub plan_cache_misses: u64,
    /// Cached plans evicted by the per-history LRU bounds (see
    /// [`crate::SessionConfig`]).
    pub plan_cache_evictions: u64,
    /// Plans currently cached across registered histories (approximate
    /// while an unregister races an in-flight request's insert).
    pub plan_cache_entries: u64,
    /// Per-relation reenactments answered on the columnar path
    /// (batch-at-a-time over typed columns). Like the plan-cache values,
    /// the three columnar counters read the same atomic cells as
    /// `/metrics`, so both endpoints agree by construction.
    pub columnar_batches: u64,
    /// Flat predicate/projection programs evaluated vectorized by those
    /// columnar reenactments.
    pub vectorized_predicates: u64,
    /// Per-relation reenactments that attempted the columnar path but fell
    /// back to the row evaluator (inexpressible statement or predicate,
    /// mixed-type column, or a runtime fault the row path must reproduce).
    pub row_fallbacks: u64,
    /// Requests rejected at admission by the static analyzer (unknown
    /// relation/attribute, type-mismatched predicate, malformed parameter
    /// substitution). Rejected requests never reach the success-path
    /// counter commit, so this value lives in the same atomic cell
    /// `/metrics` scrapes — the two endpoints agree by construction.
    pub analyzer_rejections: u64,
    /// Scenarios proven independent by the static analyzer and answered as
    /// an empty delta without slicing or reenactment (byte-identical to
    /// the full answer). Reads the same atomic cell as `/metrics`.
    pub analyzer_noop_proofs: u64,
}

/// The session's always-on telemetry mirror: lock-cheap atomic counters
/// and latency histograms recorded alongside (never instead of) the
/// internal `Counters` commit. The mutex-guarded counters stay the one
/// *consistent* snapshot path (`/stats`); these atomics are the
/// *monitoring* path (`/metrics`), where Prometheus-style scrapes are racy
/// by nature and cross-counter consistency is not promised. A serving
/// layer adopts the handles into its [`mahif_obs::Registry`] via
/// [`SessionMetrics::register_into`], so the scrape reads the very cells
/// the session increments.
#[derive(Debug)]
pub struct SessionMetrics {
    /// Requests executed (a batch counts once), mirroring
    /// [`SessionStats::requests`].
    pub requests: Arc<mahif_obs::Counter>,
    /// Scenarios answered, mirroring [`SessionStats::scenarios_answered`].
    pub scenarios_answered: Arc<mahif_obs::Counter>,
    /// Slicing solver calls spent across requests (the deduplicated
    /// request-level count; see `BatchStats::solver_calls`).
    pub solver_calls: Arc<mahif_obs::Counter>,
    /// Statements reenacted across all answers (after program slicing).
    pub statements_reenacted: Arc<mahif_obs::Counter>,
    /// Annotated delta tuples deduplicated across batch answers.
    pub delta_tuples_deduped: Arc<mahif_obs::Counter>,
    /// Per-request planning latency (normalize + slicing phases).
    pub plan_seconds: Arc<mahif_obs::Histogram>,
    /// Per-request execution latency (reenactment + diffing, including
    /// group-plan building).
    pub execute_seconds: Arc<mahif_obs::Histogram>,
    /// Provisioning-cache plan reuses, mirrored into
    /// [`SessionStats::plan_cache_hits`].
    pub plan_cache_hits: Arc<mahif_obs::Counter>,
    /// Provisioning-cache lookups without a reusable plan, mirrored into
    /// [`SessionStats::plan_cache_misses`].
    pub plan_cache_misses: Arc<mahif_obs::Counter>,
    /// Cached plans evicted by the LRU bounds, mirrored into
    /// [`SessionStats::plan_cache_evictions`].
    pub plan_cache_evictions: Arc<mahif_obs::Counter>,
    /// Plans currently cached across registered histories (gauge), mirrored
    /// into [`SessionStats::plan_cache_entries`].
    pub plan_cache_entries: Arc<mahif_obs::Gauge>,
    /// Per-relation reenactments answered on the columnar path, mirrored
    /// into [`SessionStats::columnar_batches`].
    pub columnar_batches: Arc<mahif_obs::Counter>,
    /// Vectorized predicate/projection programs evaluated, mirrored into
    /// [`SessionStats::vectorized_predicates`].
    pub vectorized_predicates: Arc<mahif_obs::Counter>,
    /// Columnar attempts that fell back to the row evaluator, mirrored
    /// into [`SessionStats::row_fallbacks`].
    pub row_fallbacks: Arc<mahif_obs::Counter>,
    /// Requests rejected at admission by the static analyzer, mirrored
    /// into [`SessionStats::analyzer_rejections`].
    pub analyzer_rejections: Arc<mahif_obs::Counter>,
    /// Scenarios proven independent and answered as empty deltas without
    /// engine work, mirrored into [`SessionStats::analyzer_noop_proofs`].
    pub analyzer_noop_proofs: Arc<mahif_obs::Counter>,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        SessionMetrics {
            requests: Arc::new(mahif_obs::Counter::new()),
            scenarios_answered: Arc::new(mahif_obs::Counter::new()),
            solver_calls: Arc::new(mahif_obs::Counter::new()),
            statements_reenacted: Arc::new(mahif_obs::Counter::new()),
            delta_tuples_deduped: Arc::new(mahif_obs::Counter::new()),
            plan_seconds: Arc::new(mahif_obs::Histogram::latency()),
            execute_seconds: Arc::new(mahif_obs::Histogram::latency()),
            plan_cache_hits: Arc::new(mahif_obs::Counter::new()),
            plan_cache_misses: Arc::new(mahif_obs::Counter::new()),
            plan_cache_evictions: Arc::new(mahif_obs::Counter::new()),
            plan_cache_entries: Arc::new(mahif_obs::Gauge::new()),
            columnar_batches: Arc::new(mahif_obs::Counter::new()),
            vectorized_predicates: Arc::new(mahif_obs::Counter::new()),
            row_fallbacks: Arc::new(mahif_obs::Counter::new()),
            analyzer_rejections: Arc::new(mahif_obs::Counter::new()),
            analyzer_noop_proofs: Arc::new(mahif_obs::Counter::new()),
        }
    }
}

impl SessionMetrics {
    /// Adopts the session's live metric cells into `registry` under their
    /// canonical `mahif_*` names, so a `/metrics` scrape and the session's
    /// own increments read the same atomics.
    pub fn register_into(&self, registry: &mahif_obs::Registry) {
        registry.adopt_counter(
            "mahif_engine_requests_total",
            "What-if requests executed by the session (a batch counts once)",
            Arc::clone(&self.requests),
        );
        registry.adopt_counter(
            "mahif_scenarios_answered_total",
            "Scenarios answered across all requests",
            Arc::clone(&self.scenarios_answered),
        );
        registry.adopt_counter(
            "mahif_solver_calls_total",
            "Slicing solver satisfiability checks spent across requests",
            Arc::clone(&self.solver_calls),
        );
        registry.adopt_counter(
            "mahif_statements_reenacted_total",
            "History statements reenacted after program slicing",
            Arc::clone(&self.statements_reenacted),
        );
        registry.adopt_counter(
            "mahif_delta_tuples_deduped_total",
            "Annotated delta tuples deduplicated across batch answers",
            Arc::clone(&self.delta_tuples_deduped),
        );
        registry.adopt_histogram(
            "mahif_plan_seconds",
            "Per-request planning latency (normalize + slicing phases), seconds",
            Arc::clone(&self.plan_seconds),
        );
        registry.adopt_histogram(
            "mahif_execute_seconds",
            "Per-request execution latency (reenactment + diffing), seconds",
            Arc::clone(&self.execute_seconds),
        );
        registry.adopt_counter(
            "mahif_plan_cache_hits_total",
            "Provisioning-cache lookups that reused a cached group plan",
            Arc::clone(&self.plan_cache_hits),
        );
        registry.adopt_counter(
            "mahif_plan_cache_misses_total",
            "Provisioning-cache lookups without a certified plan to reuse",
            Arc::clone(&self.plan_cache_misses),
        );
        registry.adopt_counter(
            "mahif_plan_cache_evictions_total",
            "Cached plans evicted by the provisioning cache's LRU bounds",
            Arc::clone(&self.plan_cache_evictions),
        );
        registry.adopt_gauge(
            "mahif_plan_cache_entries",
            "Plans currently cached across registered histories",
            Arc::clone(&self.plan_cache_entries),
        );
        registry.adopt_counter(
            "mahif_columnar_batches_total",
            "Per-relation reenactments answered on the columnar path",
            Arc::clone(&self.columnar_batches),
        );
        registry.adopt_counter(
            "mahif_vectorized_predicates_total",
            "Predicate/projection programs evaluated vectorized over columns",
            Arc::clone(&self.vectorized_predicates),
        );
        registry.adopt_counter(
            "mahif_row_fallbacks_total",
            "Columnar reenactment attempts that fell back to the row evaluator",
            Arc::clone(&self.row_fallbacks),
        );
        registry.adopt_counter(
            "mahif_analyzer_rejections_total",
            "Requests rejected at admission by the static analyzer",
            Arc::clone(&self.analyzer_rejections),
        );
        registry.adopt_counter(
            "mahif_analyzer_noop_proofs_total",
            "Scenarios proven independent and answered without engine work",
            Arc::clone(&self.analyzer_noop_proofs),
        );
    }
}

/// The Mahif middleware session: registers named histories once and answers
/// many what-if requests against them, from any number of threads sharing
/// one `Arc<Session>`. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Session {
    histories: RwLock<Vec<Arc<RegisteredHistory>>>,
    counters: Counters,
    metrics: SessionMetrics,
    /// Provisioning knobs (plan-cache bounds); fixed at construction.
    config: SessionConfig,
    /// Monotonic registration generation, bumped by every `register` and
    /// baked into every plan-cache key: a plan provisioned for an earlier
    /// registration under the same name can never match after a
    /// re-register.
    generations: AtomicU64,
}

// The whole point of the service core: one `Arc<Session>` shared across
// threads. Compile-time regression guard.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

impl Clone for Session {
    /// Clones the session *state*: the registered histories (shared via
    /// `Arc`, not re-executed) and a snapshot of the counters. The clone is
    /// an independent session — later registrations and requests on one are
    /// not visible on the other.
    fn clone(&self) -> Self {
        // The telemetry mirror starts fresh: metric handles may be adopted
        // into a registry, and a clone sharing them would double-count.
        // `/stats` consistency comes from `counters` — except the four
        // plan-cache values, which live in the metric cells; seed the fresh
        // cells with their current values so the clone's `stats()` matches
        // the original's at clone time.
        let metrics = SessionMetrics::default();
        metrics
            .plan_cache_hits
            .add(self.metrics.plan_cache_hits.get());
        metrics
            .plan_cache_misses
            .add(self.metrics.plan_cache_misses.get());
        metrics
            .plan_cache_evictions
            .add(self.metrics.plan_cache_evictions.get());
        metrics
            .plan_cache_entries
            .set(self.metrics.plan_cache_entries.get());
        metrics
            .columnar_batches
            .add(self.metrics.columnar_batches.get());
        metrics
            .vectorized_predicates
            .add(self.metrics.vectorized_predicates.get());
        metrics.row_fallbacks.add(self.metrics.row_fallbacks.get());
        metrics
            .analyzer_rejections
            .add(self.metrics.analyzer_rejections.get());
        metrics
            .analyzer_noop_proofs
            .add(self.metrics.analyzer_noop_proofs.get());
        Session {
            histories: RwLock::new(self.registry().clone()),
            counters: self.counters.clone(),
            metrics,
            config: self.config,
            generations: AtomicU64::new(self.generations.load(Ordering::Relaxed)),
        }
    }
}

/// A request admitted for execution: the resolved history plus the
/// validated scenario set and the armed deadline. Phase 1 of the lifecycle.
struct AdmittedRequest {
    total_start: Instant,
    registered: Arc<RegisteredHistory>,
    history: String,
    scenarios: Vec<ScenarioSpec>,
    /// Scenarios the static analyzer proved independent at admission, with
    /// their original position in the request's scenario order. They skip
    /// planning and execution entirely and rejoin the answer stream as
    /// empty deltas in phase 3.
    noops: Vec<(usize, ScenarioSpec)>,
    method: Method,
    config: EngineConfig,
    threads: usize,
    no_slice_sharing: bool,
    no_plan_cache: bool,
    impact: Option<crate::impact::ImpactSpec>,
    deadline: Option<Deadline>,
}

impl AdmittedRequest {
    /// Stamps request context onto a scenario-scoped error.
    fn context(&self, e: Error, phase: Phase, scenario: &ScenarioSpec) -> Error {
        e.in_phase(phase)
            .for_scenario(scenario.name().to_string())
            .on_history(self.history.clone())
    }

    /// Stamps request context onto a group-scoped error. Shared work is
    /// computed for the whole group at once, so the error names every
    /// member rather than guessing one.
    fn group_context(&self, e: Error, phase: Phase, groups: &ScenarioGroups, g: usize) -> Error {
        let members = groups.groups[g]
            .members
            .iter()
            .map(|&i| self.scenarios[i].name())
            .collect::<Vec<_>>()
            .join(", ");
        e.in_phase(phase)
            .for_scenario(members)
            .on_history(self.history.clone())
    }

    /// Errors if the request's deadline has passed, stamping `phase`.
    fn check_deadline(&self, phase: Phase) -> Result<(), Error> {
        match &self.deadline {
            Some(deadline) => deadline
                .check()
                .map_err(|e| e.in_phase(phase).on_history(self.history.clone())),
            None => Ok(()),
        }
    }
}

/// The planned work of an admitted request. Phase 2 of the lifecycle: for
/// reenactment methods this owns the normalization, grouping and (possibly
/// refined) program slices; the naïve method has nothing to precompute.
enum PlannedWork {
    Naive,
    Reenact {
        normalized: Vec<NormalizedWhatIf>,
        groups: ScenarioGroups,
        slices: Vec<Arc<ProgramSliceResult>>,
        refined: Vec<Option<Arc<ProgramSliceResult>>>,
        share: bool,
        /// Provisioning-cache hits, parallel to `groups.groups` when
        /// `share`, else to the scenarios. A hit group's slice was *not*
        /// computed this request (it comes from the cached entry), and its
        /// members answer from the cached plan in phase 3.
        cached: Vec<Option<Arc<CachedPlan>>>,
    },
}

impl Session {
    /// Creates an empty session with default provisioning knobs (the plan
    /// cache enabled with the [`SessionConfig`] defaults).
    pub fn new() -> Self {
        Session::default()
    }

    /// Creates an empty session with explicit provisioning knobs.
    /// [`SessionConfig::disabled`] turns the cross-request plan cache off
    /// entirely — every request plans from scratch, the pre-provisioning
    /// behavior (benchmark baselines use this to measure the cold path).
    pub fn with_config(config: SessionConfig) -> Self {
        Session {
            config,
            ..Session::default()
        }
    }

    /// The session's provisioning configuration.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Convenience constructor: a session with one registered history.
    pub fn with_history(
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<Self, Error> {
        let session = Session::new();
        session.register(name, initial, history)?;
        Ok(session)
    }

    /// A snapshot of the current registry (read lock scope helper).
    fn registry(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<RegisteredHistory>>> {
        self.histories.read().expect("history registry poisoned")
    }

    /// Registers a database and the transactional history that was executed
    /// over it under `name`. The history is executed once to materialize
    /// the version chain; every later request borrows that chain. Takes
    /// `&self`: registration is a concurrent service operation, safe from
    /// any thread sharing the session.
    pub fn register(
        &self,
        name: impl Into<String>,
        initial: Database,
        history: History,
    ) -> Result<&Self, Error> {
        let name = name.into();
        let duplicate = |name: String| {
            Error::new(ErrorKind::DuplicateHistory(name.clone()))
                .in_phase(Phase::Register)
                .on_history(name)
        };
        // Cheap pre-check under the read lock: an already-taken name must
        // not pay for materializing a version chain it will then discard.
        if self.registry().iter().any(|h| h.name == name) {
            return Err(duplicate(name));
        }
        // Intern repeated string values across the registered state before
        // materializing the version chain: the version snapshots, the
        // columnar string pools and every reenactment result built from
        // them then share one allocation per distinct string instead of
        // re-cloning it per tuple. Equality, hashing and ordering are
        // untouched (see `mahif_storage::StringInterner`).
        let mut initial = initial;
        mahif_storage::StringInterner::new().intern_database(&mut initial);
        // Materialize the version chain outside the registry lock — it is
        // the expensive part, and other threads' requests must not stall on
        // it. The authoritative duplicate check runs again under the write
        // lock, so two racing registrations of one name still resolve to
        // exactly one winner.
        let versioned = history.execute_versioned(&initial).map_err(|e| {
            Error::from(e)
                .in_phase(Phase::Register)
                .on_history(name.clone())
        })?;
        // Provision the history while still outside the lock: the
        // generation is globally monotonic (never reused even across racing
        // registrations), and the dependency summaries and static analysis
        // (type inference, def-use graph, liveness) are single passes over
        // the statements.
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        let provisioned = Provisioned::build(&initial, &history, generation, self.config);
        let mut histories = self.histories.write().expect("history registry poisoned");
        if histories.iter().any(|h| h.name == name) {
            return Err(duplicate(name));
        }
        histories.push(Arc::new(RegisteredHistory {
            name,
            history,
            versioned,
            provisioned,
        }));
        // Commit the counter while still holding the registry write lock so
        // a concurrent `stats()` sees the new history and its version chain
        // together (see `Counters`).
        self.counters.commit(|c| c.version_chains_built += 1);
        Ok(self)
    }

    /// Removes the history registered under `name`. In-flight requests
    /// against it finish normally (they hold their own `Arc` to the
    /// registered state); requests admitted afterwards report
    /// [`ErrorKind::UnknownHistory`].
    pub fn unregister(&self, name: &str) -> Result<(), Error> {
        let mut histories = self.histories.write().expect("history registry poisoned");
        match histories.iter().position(|h| h.name == name) {
            Some(idx) => {
                let removed = histories.remove(idx);
                // The removed history's cached plans leave the session with
                // it (in-flight requests may briefly keep the detached
                // state alive via their own `Arc`).
                self.metrics
                    .plan_cache_entries
                    .sub(removed.provisioned.cache().len() as i64);
                Ok(())
            }
            None => Err(Error::new(ErrorKind::UnknownHistory(name.to_string()))
                .in_phase(Phase::Register)
                .on_history(name.to_string())),
        }
    }

    /// Starts a fluent what-if request against the history registered under
    /// `name`. Name resolution is deferred to `run`, so the chain itself is
    /// infallible.
    pub fn on(&self, name: impl Into<String>) -> WhatIfRequest<'_> {
        WhatIfRequest::new(self, name.into())
    }

    /// The registered history named `name` (a shared handle: the registered
    /// state stays alive while the handle does, even across a concurrent
    /// [`Session::unregister`]).
    pub fn history(&self, name: &str) -> Result<Arc<RegisteredHistory>, Error> {
        self.registry()
            .iter()
            .find(|h| h.name == name)
            .cloned()
            .ok_or_else(|| {
                Error::new(ErrorKind::UnknownHistory(name.to_string()))
                    .in_phase(Phase::Build)
                    .on_history(name.to_string())
            })
    }

    /// The registered histories at this moment, in registration order.
    pub fn histories(&self) -> Vec<Arc<RegisteredHistory>> {
        self.registry().clone()
    }

    /// Number of registered histories.
    pub fn len(&self) -> usize {
        self.registry().len()
    }

    /// True when no history is registered.
    pub fn is_empty(&self) -> bool {
        self.registry().is_empty()
    }

    /// A consistent snapshot of the session's lifetime work counters: the
    /// one read path over the counters (serving layers expose exactly this
    /// snapshot), serialized against counter commits so it never reflects a
    /// half-committed request.
    pub fn stats(&self) -> SessionStats {
        let histories = self.registry();
        let mut stats = self.counters.snapshot(histories.len());
        // The plan-cache values come from the live metric cells (the same
        // atomics `/metrics` scrapes), so the two observability surfaces
        // agree by construction.
        stats.plan_cache_hits = self.metrics.plan_cache_hits.get();
        stats.plan_cache_misses = self.metrics.plan_cache_misses.get();
        stats.plan_cache_evictions = self.metrics.plan_cache_evictions.get();
        stats.plan_cache_entries = self.metrics.plan_cache_entries.get().max(0) as u64;
        // So do the columnar-path counters: one cell each, read here and
        // scraped by `/metrics`.
        stats.columnar_batches = self.metrics.columnar_batches.get();
        stats.vectorized_predicates = self.metrics.vectorized_predicates.get();
        stats.row_fallbacks = self.metrics.row_fallbacks.get();
        // And the analyzer counters: rejections happen on requests that
        // never reach the success-path commit, so both values live in the
        // metric cells.
        stats.analyzer_rejections = self.metrics.analyzer_rejections.get();
        stats.analyzer_noop_proofs = self.metrics.analyzer_noop_proofs.get();
        stats
    }

    /// The session's always-on telemetry mirror (see [`SessionMetrics`]):
    /// lock-cheap atomics a serving layer adopts into its metrics registry.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// Executes a request through the explicit three-phase lifecycle
    /// (admit → plan → execute; see the [module docs](self)). This is the
    /// single funnel every public entry point goes through — `run()`,
    /// `run_batch(..)`, the deprecated [`crate::Mahif`] shim,
    /// `mahif-scenario`'s `ScenarioSet` and any serving layer all end here,
    /// so batch optimizations and budget enforcement reach every entry
    /// point.
    pub fn execute(&self, request: WhatIfRequest<'_>) -> Result<Response, Error> {
        let parts = request.into_parts()?;
        let admitted = self.admit(parts)?;
        let mut stats = BatchStats {
            // Proven no-ops are answered, so they count as scenarios of
            // the batch even though they skip planning and execution.
            scenarios: admitted.scenarios.len() + admitted.noops.len(),
            threads: admitted.threads,
            ..Default::default()
        };
        let planned = self.plan(&admitted, &mut stats)?;
        self.execute_planned(admitted, planned, stats)
    }

    /// Phase 1: admission. Resolves the history, validates the scenario
    /// set, enforces the budget's scenario limit and arms the deadline —
    /// all before any engine work, so an inadmissible request is rejected
    /// in O(k).
    fn admit(&self, parts: RequestParts) -> Result<AdmittedRequest, Error> {
        let total_start = Instant::now();
        let RequestParts {
            history,
            scenarios,
            method,
            config,
            parallelism,
            no_slice_sharing,
            no_plan_cache,
            impact,
        } = parts;
        let registered = self.history(&history)?;
        if scenarios.is_empty() {
            return Err(Error::new(ErrorKind::EmptyRequest)
                .in_phase(Phase::Admission)
                .on_history(history));
        }
        // The scenario-count budget comes before the quadratic duplicate
        // scan: an over-budget request must be rejected in O(1), not after
        // O(k²) name comparisons over the very payload the budget exists
        // to bound.
        if let Some(limit) = config.budget.max_scenarios {
            if scenarios.len() > limit {
                return Err(
                    Error::new(ErrorKind::BudgetExceeded(BudgetBreach::Scenarios {
                        limit,
                        requested: scenarios.len(),
                    }))
                    .in_phase(Phase::Admission)
                    .on_history(history),
                );
            }
        }
        for (i, s) in scenarios.iter().enumerate() {
            if scenarios[..i].iter().any(|other| other.name() == s.name()) {
                return Err(
                    Error::new(ErrorKind::DuplicateScenario(s.name().to_string()))
                        .in_phase(Phase::Admission)
                        .for_scenario(s.name().to_string())
                        .on_history(history),
                );
            }
        }
        // The static analyzer's admission pass (skipped only under the
        // `disable_analyzer` ablation). First strict pre-validation: a
        // scenario the registration-time type inference proves would fault
        // mid-execution — unknown relation/attribute, type-mismatched
        // predicate, unbound parameter variable, out-of-bounds position —
        // is rejected here as a structured `ErrorKind::Analysis` before
        // any engine work. Then no-op proofs: a scenario whose
        // modifications provably cannot change the final state is
        // partitioned out and answered as an empty delta in phase 3,
        // skipping normalization, slicing and reenactment entirely.
        let mut scenarios = scenarios;
        let mut noops = Vec::new();
        if !config.disable_analyzer {
            let analysis = registered.provisioned().analysis();
            for s in &scenarios {
                if let Err(e) = analysis.validate(s.modifications()) {
                    self.metrics.analyzer_rejections.inc();
                    return Err(Error::from(e)
                        .in_phase(Phase::Admission)
                        .for_scenario(s.name().to_string())
                        .on_history(history));
                }
            }
            let mut kept = Vec::with_capacity(scenarios.len());
            for (position, s) in scenarios.into_iter().enumerate() {
                if analysis.prove_noop(s.modifications()) {
                    noops.push((position, s));
                } else {
                    kept.push(s);
                }
            }
            scenarios = kept;
            // Recorded at proof time like the plan-cache counters (i.e.
            // even if the surviving scenarios later breach the budget), so
            // `/stats` and `/metrics` read the same cell.
            self.metrics.analyzer_noop_proofs.add(noops.len() as u64);
        }
        let threads = resolve_parallelism(parallelism, scenarios.len());
        let deadline = config.budget.start_clock();
        Ok(AdmittedRequest {
            total_start,
            registered,
            history,
            scenarios,
            noops,
            method,
            config,
            threads,
            no_slice_sharing,
            no_plan_cache,
            impact,
            deadline,
        })
    }

    /// Whether a request may use the cross-request provisioning cache.
    /// Ablation modes (`no_slice_sharing`, the greedy slicer,
    /// `disable_group_reenactment`) exist to measure the uncached engine,
    /// so they bypass the cache entirely; `Naive` never reaches here.
    fn cache_eligible(&self, req: &AdmittedRequest) -> bool {
        self.config.cache_enabled()
            && !req.no_plan_cache
            && !req.no_slice_sharing
            && !req.config.use_greedy_slicer
            && !req.config.disable_group_reenactment
    }

    /// Phase 2: planning. Normalizes, groups and slices the scenarios (for
    /// reenactment methods), refines member slices per the configured
    /// [`crate::RefinePolicy`], and enforces the budget's solver-call limit
    /// and deadline — an over-budget batch fails here, before execution
    /// spends anything.
    fn plan(&self, req: &AdmittedRequest, stats: &mut BatchStats) -> Result<PlannedWork, Error> {
        if req.method == Method::Naive {
            // The naïve algorithm re-executes the modified history over a
            // copy of the pre-history state; nothing is plannable beyond
            // the registered states.
            return Ok(PlannedWork::Naive);
        }
        let AdmittedRequest {
            registered,
            scenarios,
            method,
            config,
            threads,
            no_slice_sharing,
            ..
        } = req;
        let (method, threads) = (*method, *threads);

        // Normalize once per scenario and group scenarios that can share a
        // program slice.
        let normalize_start = Instant::now();
        let normalized = scenarios
            .iter()
            .map(|s| {
                let query = WhatIfRef::new(
                    &registered.history,
                    registered.versioned.initial(),
                    s.modifications(),
                );
                query
                    .normalize()
                    .map_err(|e| req.context(Error::from(e), Phase::Normalize, s))
            })
            .collect::<Result<Vec<NormalizedWhatIf>, Error>>()?;
        let groups = group_scenarios(&normalized);
        stats.normalize = normalize_start.elapsed();
        req.check_deadline(Phase::Normalize)?;

        // One slice per group (shared), or one per scenario (single
        // queries, ablation, or the greedy slicer whose certificates are
        // pairwise only).
        let slice_start = Instant::now();
        let share = scenarios.len() > 1
            && method.uses_program_slicing()
            && !no_slice_sharing
            && !config.use_greedy_slicer;

        // Cross-request provisioning: look up cached plans *before*
        // slicing — a hit reuses the entry's certified slice here and its
        // `GroupPlan` in phase 3, skipping `program_slice_multi` and
        // `GroupPlan::build` entirely. The key is a cheap filter;
        // `PlanCache::lookup` then verifies the original history, the
        // positions and every member's certification by full structural
        // equality, so a plan is only ever reused for queries it was built
        // for.
        let cache_on = self.cache_eligible(req);
        let provisioned = registered.provisioned();
        let cached: Vec<Option<Arc<CachedPlan>>> = if !cache_on {
            vec![
                None;
                if share {
                    groups.groups.len()
                } else {
                    normalized.len()
                }
            ]
        } else if share {
            groups
                .groups
                .iter()
                .map(|group| {
                    let members: Vec<&History> = group
                        .members
                        .iter()
                        .map(|&i| &normalized[i].modified)
                        .collect();
                    let key =
                        PlanKey::new(provisioned.generation(), method, &group.positions, config);
                    provisioned
                        .cache()
                        .lookup(&key, &group.original, &group.positions, &members)
                })
                .collect()
        } else {
            normalized
                .iter()
                .map(|n| {
                    let key = PlanKey::new(
                        provisioned.generation(),
                        method,
                        &n.modified_positions,
                        config,
                    );
                    provisioned.cache().lookup(
                        &key,
                        &n.original,
                        &n.modified_positions,
                        &[&n.modified],
                    )
                })
                .collect()
        };
        let hits = cached.iter().filter(|c| c.is_some()).count();
        if cache_on {
            self.metrics.plan_cache_hits.add(hits as u64);
            self.metrics
                .plan_cache_misses
                .add((cached.len() - hits) as u64);
        }

        let (slices, contexts): (
            Vec<Arc<ProgramSliceResult>>,
            Vec<Option<SymbolicGroupContext>>,
        ) = if share {
            let computed = run_indexed(groups.groups.len(), threads, |g| {
                // A provisioned hit reuses the cached group slice. No
                // symbolic context is kept in the cache, so members of hit
                // groups skip refinement — refinement never changes
                // answers, only per-member cost, and a hit already skipped
                // the work refinement would trim.
                if let Some(entry) = &cached[g] {
                    return Ok((Arc::clone(entry.slice()), None));
                }
                let group = &groups.groups[g];
                // Borrow each member's modified history from the
                // normalization results instead of cloning it into the
                // group.
                let variants: Vec<&History> = group
                    .members
                    .iter()
                    .map(|&i| &normalized[i].modified)
                    .collect();
                program_slice_multi_with_context(
                    &group.original,
                    &variants,
                    &group.positions,
                    registered.versioned.initial(),
                    &config.slicing(),
                )
                .map(|(slice, ctx)| (Arc::new(slice), Some(ctx)))
                .map_err(|e| req.group_context(Error::from(e), Phase::ProgramSlicing, &groups, g))
            });
            collect_results(computed)?.into_iter().unzip()
        } else {
            let computed = run_indexed(normalized.len(), threads, |i| {
                if let Some(entry) = &cached[i] {
                    return Ok(Arc::clone(entry.slice()));
                }
                compute_program_slice(
                    &normalized[i],
                    registered.versioned.initial(),
                    method,
                    config,
                )
                .map(Arc::new)
                .map_err(|e| req.context(e, Phase::ProgramSlicing, &scenarios[i]))
            });
            (collect_results(computed)?, Vec::new())
        };
        // Only slices actually computed this request count as work; hit
        // groups reuse a slice computed by an earlier request.
        stats.slice_groups = cached.len() - hits;
        if share {
            stats.shared_slice_hits = scenarios.len() - groups.groups.len();
        }
        req.check_deadline(Phase::ProgramSlicing)?;

        // Optional per-member refinement: shrink a member's slice below the
        // certified union (reusing the group's symbolic context) and answer
        // it solo with the smaller slice when refinement helps. The
        // RefinePolicy decides per member — `Always`/`Never` are the
        // explicit overrides, `Auto` applies the group-size / union-slice
        // cost model. Refinement needs only the shared slices and their
        // symbolic contexts, so it composes with
        // `disable_group_reenactment`.
        let refined: Vec<Option<Arc<ProgramSliceResult>>> = if share
            && config.refine.considers_refinement()
        {
            let computed = run_indexed(scenarios.len(), threads, |i| {
                let g = groups.scenario_group[i];
                let group_size = groups.groups[g].members.len();
                if group_size <= 1
                    || !config
                        .refine
                        .should_refine(group_size, slices[g].kept_positions.len())
                {
                    return Ok(None);
                }
                // Members of provisioned-hit groups answer from the cached
                // plan; the hit skipped slicing, so there is no symbolic
                // context to refine against (and nothing left to save).
                let Some(context) = &contexts[g] else {
                    return Ok(None);
                };
                req.check_deadline(Phase::ProgramSlicing)?;
                refine_slice_for_variant(
                    &normalized[i].original,
                    &normalized[i].modified,
                    &normalized[i].modified_positions,
                    registered.versioned.initial(),
                    &config.slicing(),
                    &slices[g],
                    context,
                )
                .map(|r| {
                    (r.kept_positions.len() < slices[g].kept_positions.len()).then(|| Arc::new(r))
                })
                .map_err(|e| req.context(Error::from(e), Phase::ProgramSlicing, &scenarios[i]))
            });
            collect_results(computed)?
        } else {
            vec![None; scenarios.len()]
        };
        stats.refined_slices = refined.iter().filter(|r| r.is_some()).count();
        // The request's deduplicated slicing solver cost: each distinct
        // slice counted once. Refinement solver calls are member work — a
        // refined member re-reports them in its own answer (`shared_work`
        // stays false) — so they are not added here; refinement
        // *wall-clock* still falls inside `stats.slicing`, which times the
        // phase, not member attributions.
        // Hit groups spent no solver calls this request — their slice's
        // bill was paid by the request that built the cached plan — so a
        // warm request passes a solver budget its cold twin may breach:
        // the budget bounds actual spend.
        stats.solver_calls = slices
            .iter()
            .zip(cached.iter())
            .filter(|(_, c)| c.is_none())
            .map(|(s, _)| s.solver_calls)
            .sum::<usize>();
        stats.slicing = slice_start.elapsed();
        if let Some(limit) = config.budget.max_solver_calls {
            if stats.solver_calls > limit {
                return Err(
                    Error::new(ErrorKind::BudgetExceeded(BudgetBreach::SolverCalls {
                        limit,
                        used: stats.solver_calls,
                    }))
                    .in_phase(Phase::ProgramSlicing)
                    .on_history(req.history.clone()),
                );
            }
        }
        req.check_deadline(Phase::ProgramSlicing)?;

        Ok(PlannedWork::Reenact {
            normalized,
            groups,
            slices,
            refined,
            share,
            cached,
        })
    }

    /// Phase 3: execution. Builds group plans (the shared original-side
    /// reenactment), answers every scenario on the worker pool — checking
    /// the deadline between units of work — deduplicates deltas, computes
    /// impact reports and commits the work counters.
    fn execute_planned(
        &self,
        mut req: AdmittedRequest,
        planned: PlannedWork,
        mut stats: BatchStats,
    ) -> Result<Response, Error> {
        let registered = &req.registered;
        let scenarios = &req.scenarios;
        let (method, config, threads) = (req.method, &req.config, req.threads);
        let cache_on = self.cache_eligible(&req);

        let answers: Vec<WhatIfAnswer> = match &planned {
            PlannedWork::Naive => {
                // Nothing is shareable beyond the registered states, so
                // scenarios just run in parallel.
                let exec_start = Instant::now();
                let answers = self.run_pool(threads, scenarios, |i| {
                    req.check_deadline(Phase::Execution)?;
                    let query = WhatIfRef::new(
                        &registered.history,
                        registered.versioned.initial(),
                        scenarios[i].modifications(),
                    );
                    answer_what_if(
                        query,
                        &registered.versioned,
                        registered.versioned.current(),
                        method,
                        config,
                    )
                    .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]))
                })?;
                stats.execution = exec_start.elapsed();
                answers
            }
            PlannedWork::Reenact {
                normalized,
                groups,
                slices,
                refined,
                share,
                cached,
            } => {
                // Group execution plans: the original-side reenactment is
                // identical across a group's members, so compute it once
                // per group and answer members against the cached results.
                // Disabled for ablation (and as the pre-group-plan
                // baseline) via `EngineConfig::disable_group_reenactment`.
                let use_plans = *share && !config.disable_group_reenactment;

                if use_plans {
                    // The execution phase covers plan building (the groups'
                    // shared reenactment work) plus member answering.
                    let exec_start = Instant::now();
                    // Build plans only for cache-miss groups with at least
                    // one member that was not refined away; a hit group
                    // answers from its cached plan, and a fully refined
                    // group would never use its plan's cached original-side
                    // results.
                    let needs_plan: Vec<bool> = groups
                        .groups
                        .iter()
                        .enumerate()
                        .map(|(g, group)| {
                            cached[g].is_none()
                                && group.members.iter().any(|&i| refined[i].is_none())
                        })
                        .collect();
                    let plan_results = run_indexed(groups.groups.len(), threads, |g| {
                        if !needs_plan[g] {
                            return Ok(None);
                        }
                        let members: Vec<&NormalizedWhatIf> = groups.groups[g]
                            .members
                            .iter()
                            .map(|&i| &normalized[i])
                            .collect();
                        GroupPlan::build(
                            &members,
                            &slices[g],
                            &registered.versioned,
                            method,
                            config,
                            req.deadline,
                        )
                        .map(Some)
                        .map_err(|e| req.group_context(e, Phase::Execution, groups, g))
                    });
                    let plans = collect_results(plan_results)?;
                    // One handle per group: the provisioned hit, or the
                    // freshly built plan wrapped with its certification
                    // metadata and — when caching is on — inserted into
                    // the history's cache for later requests. A racing
                    // request that inserted an equivalent entry first wins
                    // ties; this request still answers from its own plan.
                    let provisioned = registered.provisioned();
                    let handles: Vec<Option<Arc<CachedPlan>>> = plans
                        .into_iter()
                        .enumerate()
                        .map(|(g, plan)| match (&cached[g], plan) {
                            (Some(entry), _) => Some(Arc::clone(entry)),
                            (None, Some(plan)) => {
                                let group = &groups.groups[g];
                                let entry = Arc::new(CachedPlan::new(
                                    PlanKey::new(
                                        provisioned.generation(),
                                        method,
                                        &group.positions,
                                        config,
                                    ),
                                    group.original.clone(),
                                    &group.positions,
                                    group
                                        .members
                                        .iter()
                                        .map(|&i| normalized[i].modified.clone())
                                        .collect(),
                                    Arc::clone(&slices[g]),
                                    plan,
                                ));
                                if cache_on {
                                    self.record_insert(
                                        provisioned.cache().insert(Arc::clone(&entry)),
                                    );
                                }
                                Some(entry)
                            }
                            (None, None) => None,
                        })
                        .collect();
                    // Singleton groups fold their shared work into the
                    // member's own answer (exact single-query behavior), so
                    // only multi-member plans report shared work at the
                    // batch level — and only *freshly built* ones: a hit
                    // group's shared reenactment happened in an earlier
                    // request, so a warm batch adds nothing here.
                    let fresh_multi: Vec<&GroupPlan> = handles
                        .iter()
                        .zip(cached.iter())
                        .filter(|(_, c)| c.is_none())
                        .filter_map(|(h, _)| h.as_deref())
                        .map(CachedPlan::plan)
                        .filter(|p| p.group_size() > 1)
                        .collect();
                    stats.group_reenactment = fresh_multi.iter().map(|p| p.shared_duration()).sum();
                    stats.original_reenactments = fresh_multi
                        .iter()
                        .map(|p| p.original_reenactments())
                        .sum::<usize>();
                    // The shared original-side phase of those same fresh
                    // multi-member plans is also where their columnar work
                    // happened (singleton plans fold it into the member's
                    // answer, summed below with the rest).
                    for plan in &fresh_multi {
                        let shared = plan.shared_columnar();
                        stats.columnar_batches += shared.batches;
                        stats.vectorized_predicates += shared.predicates;
                        stats.row_fallbacks += shared.fallbacks;
                    }
                    // Per-relation breakdown of the shared reenactment,
                    // merged across plans (sorted by relation name — the
                    // plans' own orders already are).
                    let mut by_relation: std::collections::BTreeMap<String, Duration> =
                        std::collections::BTreeMap::new();
                    for plan in &fresh_multi {
                        for (relation, duration) in plan.relation_timings() {
                            *by_relation.entry(relation.to_string()).or_default() += duration;
                        }
                    }
                    stats.plan_relations = by_relation.into_iter().collect();

                    let answers = self.run_pool(threads, scenarios, |i| {
                        req.check_deadline(Phase::Execution)?;
                        let g = groups.scenario_group[i];
                        match &refined[i] {
                            // A refined member answers solo with its own
                            // smaller slice (its original-side reenactment
                            // is over the *refined* sliced history, so it
                            // cannot reuse the plan's cached results).
                            Some(slice) => answer_normalized(
                                &normalized[i],
                                slice,
                                &registered.versioned,
                                method,
                                config,
                            ),
                            None => {
                                let entry = handles[g]
                                    .as_ref()
                                    .expect("a plan exists for every group with unrefined members");
                                if cached[g].is_some() {
                                    // Cross-request hit: byte-identical
                                    // delta, shared phases never folded
                                    // (this request did not perform them).
                                    entry
                                        .plan()
                                        .answer_cached(&normalized[i], &registered.versioned)
                                } else {
                                    entry
                                        .plan()
                                        .answer_in_group(&normalized[i], &registered.versioned)
                                }
                            }
                        }
                        .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]))
                    })?;
                    stats.execution = exec_start.elapsed();
                    answers
                } else {
                    let cache: Option<SliceCache> =
                        share.then(|| SliceCache::new(groups, slices.clone()));
                    let exec_start = Instant::now();
                    let provisioned = registered.provisioned();
                    let answers = self.run_pool(threads, scenarios, |i| {
                        req.check_deadline(Phase::Execution)?;
                        // The per-scenario provisioning scope: single
                        // queries and non-program-slicing methods reach
                        // here (caching is never eligible alongside the
                        // ablation flags, so `share` is false whenever
                        // `cache_on` holds).
                        if cache_on {
                            if let Some(entry) = &cached[i] {
                                return entry
                                    .plan()
                                    .answer_cached(&normalized[i], &registered.versioned)
                                    .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]));
                            }
                            // Miss: build the singleton plan — exactly what
                            // `answer_normalized` does internally — answer
                            // from it, and provision it for later requests.
                            let entry = Arc::new(CachedPlan::new(
                                PlanKey::new(
                                    provisioned.generation(),
                                    method,
                                    &normalized[i].modified_positions,
                                    config,
                                ),
                                normalized[i].original.clone(),
                                &normalized[i].modified_positions,
                                vec![normalized[i].modified.clone()],
                                Arc::clone(&slices[i]),
                                GroupPlan::build(
                                    &[&normalized[i]],
                                    &slices[i],
                                    &registered.versioned,
                                    method,
                                    config,
                                    req.deadline,
                                )
                                .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]))?,
                            ));
                            let answer = entry
                                .plan()
                                .answer_in_group(&normalized[i], &registered.versioned)
                                .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]))?;
                            self.record_insert(provisioned.cache().insert(entry));
                            return Ok(answer);
                        }
                        let slice = match (&refined[i], &cache) {
                            // Refinement composes with the no-group-plan
                            // ablation: a refined member still answers with
                            // its smaller slice.
                            (Some(refined), _) => Arc::clone(refined),
                            (None, Some(cache)) => cache.slice_for(i),
                            (None, None) => Arc::clone(&slices[i]),
                        };
                        answer_normalized(
                            &normalized[i],
                            &slice,
                            &registered.versioned,
                            method,
                            config,
                        )
                        .map_err(|e| req.context(e, Phase::Execution, &scenarios[i]))
                    })?;
                    stats.execution = exec_start.elapsed();
                    answers
                }
            }
        };

        // Statically proven no-ops rejoin the answer stream here, at their
        // original request positions, as empty answers: the analyzer
        // certified the delta empty (`DatabaseDelta::default()`, exactly
        // what the full pipeline returns for them — only non-empty
        // relation deltas are ever stored), and no engine phase ran, so
        // every timing and work counter is zero. Downstream phases —
        // interning, impact, the response zip — treat them exactly like
        // executed answers.
        let total = req.scenarios.len() + req.noops.len();
        let mut specs: Vec<ScenarioSpec> = Vec::with_capacity(total);
        let mut merged: Vec<WhatIfAnswer> = Vec::with_capacity(total);
        let mut executed = std::mem::take(&mut req.scenarios).into_iter().zip(answers);
        let mut noops = std::mem::take(&mut req.noops).into_iter().peekable();
        for position in 0..total {
            match noops.peek() {
                Some(&(p, _)) if p == position => {
                    let (_, spec) = noops.next().expect("peeked entry exists");
                    specs.push(spec);
                    merged.push(WhatIfAnswer {
                        delta: DatabaseDelta::default(),
                        timings: PhaseTimings::default(),
                        stats: EngineStats::default(),
                    });
                }
                _ => {
                    let (spec, answer) = executed
                        .next()
                        .expect("one executed answer per non-noop scenario");
                    specs.push(spec);
                    merged.push(answer);
                }
            }
        }
        let answers = merged;

        // Scenarios answered outside a shared plan (solo paths, refined
        // members) report their own original-side reenactments; add them to
        // the plans' once-per-group count.
        stats.original_reenactments += answers
            .iter()
            .map(|a| a.stats.original_reenactments)
            .sum::<usize>();
        // Columnar-path work of the member answers themselves (modified-side
        // reenactments everywhere, plus the folded shared phase of solo
        // answers and singleton plans).
        for answer in &answers {
            stats.columnar_batches += answer.stats.columnar_batches;
            stats.vectorized_predicates += answer.stats.vectorized_predicates;
            stats.row_fallbacks += answer.stats.row_fallbacks;
        }

        // Share the storage of identical answers across the batch (the
        // base-plus-diff representation of a sweep's deltas): equal
        // relation deltas collapse to one allocation, observably via
        // `delta_tuples_deduped`. Content equality is untouched. A single
        // answer has nothing to share, so the single-query hot path skips
        // the pass entirely.
        let mut answers = answers;
        if answers.len() > 1 {
            let mut interner = DeltaInterner::new();
            for answer in &mut answers {
                stats.delta_tuples_deduped += interner.intern(&mut answer.delta);
            }
        }

        // Optional impact phase: reduce each delta to an aggregate report
        // with the metric baseline taken from the current state.
        let reports = match &req.impact {
            None => vec![None; answers.len()],
            Some(spec) => answers
                .iter()
                .zip(&specs)
                .map(|(answer, s)| {
                    answer
                        .impact(spec)
                        .and_then(|report| report.with_baseline(registered.current_state(), spec))
                        .map(Some)
                        .map_err(|e| req.context(e, Phase::Impact, s))
                })
                .collect::<Result<Vec<_>, Error>>()?,
        };

        // Count the work only once it actually succeeded, so `stats()`
        // never reports failed requests as answered — and commit all of a
        // request's counters as one unit, so a concurrent snapshot never
        // observes half of them.
        self.counters.commit(|c| {
            c.requests += 1;
            c.scenarios_answered += specs.len() as u64;
            c.slices_computed += stats.slice_groups as u64;
            c.slices_shared += stats.shared_slice_hits as u64;
            c.original_reenactments += stats.original_reenactments as u64;
            c.refined_slices += stats.refined_slices as u64;
            c.delta_tuples_deduped += stats.delta_tuples_deduped as u64;
        });

        // The telemetry mirror records the same successful request into
        // the lock-free monitoring atomics (scrapes are racy by design;
        // the commit above stays the consistent snapshot path). Statement
        // counts come from the answers: group members report the shared
        // slice's kept-statement count each, so the total reflects work
        // actually reenacted per scenario.
        self.metrics.requests.inc();
        self.metrics.scenarios_answered.add(specs.len() as u64);
        self.metrics.solver_calls.add(stats.solver_calls as u64);
        self.metrics.statements_reenacted.add(
            answers
                .iter()
                .map(|a| a.stats.statements_reenacted as u64)
                .sum(),
        );
        self.metrics
            .delta_tuples_deduped
            .add(stats.delta_tuples_deduped as u64);
        self.metrics
            .columnar_batches
            .add(stats.columnar_batches as u64);
        self.metrics
            .vectorized_predicates
            .add(stats.vectorized_predicates as u64);
        self.metrics.row_fallbacks.add(stats.row_fallbacks as u64);
        self.metrics
            .plan_seconds
            .observe_duration(stats.normalize + stats.slicing);
        self.metrics
            .execute_seconds
            .observe_duration(stats.execution);

        stats.total = req.total_start.elapsed();
        let scenarios = specs
            .into_iter()
            .zip(answers)
            .zip(reports)
            .map(|((spec, answer), impact)| ScenarioResponse {
                name: spec.name().to_string(),
                answer,
                impact,
            })
            .collect();
        Ok(Response::new(req.history, req.method, scenarios, stats))
    }

    /// Records a plan-cache insert's outcome into the monitoring cells
    /// (entry gauge and eviction counter). Lock-free: called from worker
    /// threads on the execution path.
    fn record_insert(&self, outcome: crate::provision::InsertOutcome) {
        if outcome.inserted {
            self.metrics.plan_cache_entries.add(1);
        }
        if outcome.evicted > 0 {
            self.metrics
                .plan_cache_evictions
                .add(outcome.evicted as u64);
            self.metrics.plan_cache_entries.sub(outcome.evicted as i64);
        }
    }

    /// Runs `answer` for every scenario on the worker pool, converting
    /// worker panics into [`ErrorKind::WorkerPanicked`].
    fn run_pool(
        &self,
        threads: usize,
        scenarios: &[ScenarioSpec],
        answer: impl Fn(usize) -> Result<WhatIfAnswer, Error> + Sync,
    ) -> Result<Vec<WhatIfAnswer>, Error> {
        let results = run_indexed(scenarios.len(), threads, |i| {
            catch_unwind(AssertUnwindSafe(|| answer(i))).unwrap_or_else(|_| {
                Err(Error::new(ErrorKind::WorkerPanicked)
                    .in_phase(Phase::Execution)
                    .for_scenario(scenarios[i].name().to_string()))
            })
        });
        collect_results(results)
    }
}

/// Convenience: `session.on(..).run_batch(pairs)` accepts
/// `(name, ModificationSet)` tuples; this free function builds the same
/// pairs from a sweep closure, mirroring
/// `mahif-scenario`'s `Scenario::sweep_replace_values` at the core layer.
pub fn sweep<V: std::fmt::Display>(
    prefix: &str,
    position: usize,
    values: impl IntoIterator<Item = V>,
    make: impl Fn(&V) -> mahif_history::Statement,
) -> Vec<ScenarioSpec> {
    values
        .into_iter()
        .map(|value| {
            let statement = make(&value);
            ScenarioSpec::new(
                format!("{prefix}/{value}"),
                ModificationSet::new(vec![mahif_history::Modification::replace(
                    position, statement,
                )]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Budget, RefinePolicy};
    use crate::impact::ImpactSpec;
    use mahif_expr::builder::*;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{SetClause, Statement};
    use std::time::Duration;

    fn session() -> Session {
        Session::with_history(
            "retail",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
    }

    fn threshold(t: i64) -> Statement {
        Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(0)),
            ge(attr("Price"), lit(t)),
        )
    }

    #[test]
    fn registration_materializes_versions_once() {
        let s = session();
        let reg = s.history("retail").unwrap();
        assert_eq!(reg.name(), "retail");
        assert_eq!(reg.history().len(), 3);
        assert_eq!(reg.versions().version_count(), 4);
        assert_eq!(reg.initial_state().total_tuples(), 4);
        assert_eq!(s.stats().version_chains_built, 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let s = session();
        let err = s
            .register(
                "retail",
                running_example_database(),
                History::new(running_example_history()),
            )
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateHistory(_)));
        assert!(err.to_string().contains("retail"));
    }

    #[test]
    fn registration_chains_and_unregister_frees_the_name() {
        let s = session();
        // `register` takes `&self` and returns `&Self`, so service code can
        // chain registrations on a shared session.
        s.register(
            "a",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap()
        .register(
            "b",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        assert_eq!(s.len(), 3);

        // A handle obtained before unregistration stays usable: the state
        // is shared, not dropped from under the caller.
        let handle = s.history("a").unwrap();
        s.unregister("a").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(handle.current_state().total_tuples(), 4);
        assert_eq!(s.stats().histories, 2);
        // The chain counter is monotonic — unregistration does not undo it.
        assert_eq!(s.stats().version_chains_built, 3);

        // Requests against the removed name now fail; the name is free for
        // re-registration.
        let err = s.on("a").run().unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)));
        let err = s.unregister("a").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)));
        s.register(
            "a",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn session_is_shared_across_threads() {
        // The core concurrency contract: one Arc<Session>, many threads,
        // registration and execution both through `&self`.
        let s = Arc::new(session());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let response = s
                        .on("retail")
                        .replace(0, threshold(55 + t))
                        .run()
                        .expect("concurrent request succeeds");
                    assert_eq!(response.len(), 1);
                });
            }
            let s2 = Arc::clone(&s);
            scope.spawn(move || {
                s2.register(
                    "retail-threaded",
                    running_example_database(),
                    History::new(running_example_history()),
                )
                .expect("concurrent registration succeeds");
            });
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().requests, 4);
    }

    #[test]
    fn single_query_all_methods_agree() {
        let s = session();
        let reference = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .method(Method::Naive)
            .run()
            .unwrap();
        assert_eq!(reference.delta().len(), 2);
        for method in Method::all() {
            let response = s
                .on("retail")
                .replace(0, running_example_u1_prime())
                .method(method)
                .run()
                .unwrap();
            assert_eq!(response.delta(), reference.delta(), "method {method}");
            assert_eq!(response.len(), 1);
            assert_eq!(response.scenarios[0].name, "default");
        }
    }

    #[test]
    fn batch_shares_one_slice_across_a_sweep() {
        let s = session();
        let response = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| {
                threshold(*t)
            }))
            .unwrap();
        assert_eq!(response.len(), 5);
        assert_eq!(response.stats.slice_groups, 1);
        assert_eq!(response.stats.shared_slice_hits, 4);
        assert!(response.get("threshold/60").is_some());
        assert!(response.get("nope").is_none());
        // Each batch answer equals the single-query answer.
        for spec in sweep("threshold", 0, [55i64, 60, 65, 70, 75], |t| threshold(*t)) {
            let single = s
                .on("retail")
                .modifications(spec.modifications().clone())
                .run()
                .unwrap();
            assert_eq!(
                &response.get(spec.name()).unwrap().answer.delta,
                single.delta(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn group_plan_reenacts_the_original_once_per_group() {
        let s = session();
        let thresholds = [55i64, 60, 65, 70, 75];
        let response = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        // One group over one relation: groups × relations = 1, not k × 1.
        assert_eq!(response.stats.slice_groups, 1);
        assert_eq!(response.stats.original_reenactments, 1);
        // Members carry the shared-work flag and no re-attributed shared
        // timings; the shared cost is reported once at the batch level.
        for member in &response.scenarios {
            assert!(member.answer.stats.shared_work);
            assert_eq!(member.answer.stats.original_reenactments, 0);
            assert_eq!(
                member.answer.timings.program_slicing,
                std::time::Duration::ZERO
            );
        }
        // Most thresholds (65..75) waive the same two orders: their equal
        // deltas share storage.
        assert!(response.stats.delta_tuples_deduped > 0);
        // The shared slice's solver calls are reported once at the batch
        // level, not per member.
        assert!(response.stats.solver_calls > 0);
        for member in &response.scenarios {
            assert_eq!(member.answer.stats.solver_calls, 0);
        }
        // The session counters accumulate the same numbers.
        assert_eq!(s.stats().original_reenactments, 1);
        assert_eq!(
            s.stats().delta_tuples_deduped,
            response.stats.delta_tuples_deduped as u64
        );

        // The ablation (pre-group-plan path) reenacts the original once per
        // member — and still answers identically.
        let unshared = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .without_group_reenactment()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(unshared.stats.original_reenactments, thresholds.len());
        for (a, b) in response.scenarios.iter().zip(&unshared.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
    }

    #[test]
    fn slice_refinement_is_counted_and_preserves_answers() {
        // Extend the history with an update only low thresholds interact
        // with, so a mixed sweep's union slice keeps it while refinement
        // drops it for the high-threshold members.
        let mut statements = running_example_history();
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(3)),
            and(ge(attr("Price"), lit(30)), le(attr("Price"), lit(35))),
        ));
        let s = Session::with_history(
            "retail",
            running_example_database(),
            History::new(statements),
        )
        .unwrap();
        let thresholds = [32i64, 60, 65];
        let reference = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(
            reference.stats.refined_slices, 0,
            "a 3-member group is below RefinePolicy::auto()'s group-size threshold"
        );
        let refined = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .with_slice_refinement()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert!(
            refined.stats.refined_slices > 0,
            "the high thresholds' slices shrink below the union"
        );
        assert_eq!(
            s.stats().refined_slices,
            refined.stats.refined_slices as u64
        );
        for (a, b) in reference.scenarios.iter().zip(&refined.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
        // Refinement composes with the no-group-plan ablation: members
        // still answer with their refined slices.
        let combo = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .with_slice_refinement()
            .without_group_reenactment()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(combo.stats.refined_slices, refined.stats.refined_slices);
        for (a, b) in reference.scenarios.iter().zip(&combo.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
        // The explicit opt-out always wins.
        let never = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .without_slice_refinement()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(never.stats.refined_slices, 0);
    }

    #[test]
    fn auto_refine_policy_triggers_on_large_groups_with_large_slices() {
        // A history whose union slice keeps several statements: the
        // modified threshold update, the fee surcharge that reads what the
        // threshold wrote, and two band updates that only the low
        // thresholds interact with. A 5-member sweep then meets both Auto
        // thresholds, and the high-threshold members' slices shrink below
        // the union — with the *default* configuration, no explicit opt-in.
        let mut statements = running_example_history();
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(3)),
            and(ge(attr("Price"), lit(30)), le(attr("Price"), lit(35))),
        ));
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(4)),
            and(ge(attr("Price"), lit(36)), le(attr("Price"), lit(41))),
        ));
        let s = Session::with_history(
            "retail",
            running_example_database(),
            History::new(statements),
        )
        .unwrap();
        let thresholds = [32i64, 38, 60, 65, 70];
        let auto = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(auto.stats.slice_groups, 1, "one 5-member group");
        assert!(
            auto.stats.refined_slices > 0,
            "Auto refines: group size {} ≥ 5 and the union slice is large enough",
            thresholds.len()
        );
        // The cost model changes the plan, never the answers.
        let never = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .without_slice_refinement()
            .run_batch(sweep("threshold", 0, thresholds, |t| threshold(*t)))
            .unwrap();
        assert_eq!(never.stats.refined_slices, 0);
        for (a, b) in auto.scenarios.iter().zip(&never.scenarios) {
            assert_eq!(a.answer.delta, b.answer.delta, "{}", a.name);
        }
    }

    #[test]
    fn scenario_budget_is_enforced_at_admission() {
        let s = session();
        let err = s
            .on("retail")
            .budget(Budget::unlimited().with_max_scenarios(2))
            .run_batch(sweep("threshold", 0, [55i64, 60, 65], |t| threshold(*t)))
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                ErrorKind::BudgetExceeded(BudgetBreach::Scenarios {
                    limit: 2,
                    requested: 3
                })
            ),
            "{err:?}"
        );
        assert_eq!(err.phase, Some(Phase::Admission));
        // Nothing ran: the rejected request is not counted as answered.
        assert_eq!(s.stats().requests, 0);
        // At the limit, the batch is admitted and answered.
        let ok = s
            .on("retail")
            .budget(Budget::unlimited().with_max_scenarios(2))
            .run_batch(sweep("threshold", 0, [55i64, 60], |t| threshold(*t)))
            .unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn solver_call_budget_fails_during_planning() {
        let s = session();
        let err = s
            .on("retail")
            .method(Method::ReenactPsDs)
            .budget(Budget::unlimited().with_max_solver_calls(0))
            .run_batch(sweep("threshold", 0, [55i64, 60], |t| threshold(*t)))
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                ErrorKind::BudgetExceeded(BudgetBreach::SolverCalls { limit: 0, .. })
            ),
            "{err:?}"
        );
        assert_eq!(err.phase, Some(Phase::ProgramSlicing));
        assert_eq!(s.stats().requests, 0);
        // Counters commit per whole request: a failed plan contributes no
        // slice work either.
        assert_eq!(s.stats().slices_computed, 0);
        assert_eq!(s.stats().slices_shared, 0);
        // Methods that never call the solver are unaffected by the limit.
        let ok = s
            .on("retail")
            .method(Method::Reenact)
            .budget(Budget::unlimited().with_max_solver_calls(0))
            .replace(0, threshold(60))
            .run()
            .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn expired_deadline_fails_fast_with_a_structured_error() {
        let s = session();
        let err = s
            .on("retail")
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .run_batch(sweep("threshold", 0, [55i64, 60, 65], |t| threshold(*t)))
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                ErrorKind::BudgetExceeded(BudgetBreach::Deadline { .. })
            ),
            "{err:?}"
        );
        assert_eq!(s.stats().requests, 0);
        // A generous deadline admits and answers normally.
        let ok = s
            .on("retail")
            .budget(Budget::unlimited().with_deadline(Duration::from_secs(3600)))
            .replace(0, threshold(60))
            .run()
            .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(s.stats().requests, 1);
    }

    #[test]
    fn stats_count_work_not_copies() {
        let s = session();
        for t in [55i64, 60, 65] {
            s.on("retail").replace(0, threshold(t)).run().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.version_chains_built, 1, "no request re-registers");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.scenarios_answered, 3);
    }

    #[test]
    fn multiple_histories_are_independent() {
        let s = session();
        s.register(
            "retail-2",
            running_example_database(),
            History::new(running_example_history()),
        )
        .unwrap();
        let a = s
            .on("retail")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let b = s
            .on("retail-2")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        assert_eq!(a.delta(), b.delta());
        assert_eq!(a.history, "retail");
        assert_eq!(b.history, "retail-2");
        assert_eq!(s.stats().version_chains_built, 2);
    }

    #[test]
    fn unknown_history_is_reported_with_context() {
        let s = session();
        let err = s
            .on("nope")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownHistory(_)));
        assert!(err.to_string().contains("'nope'"), "{err}");
    }

    #[test]
    fn empty_request_answers_one_empty_scenario() {
        let s = session();
        let response = s.on("retail").run().unwrap();
        assert_eq!(response.len(), 1);
        assert!(response.delta().is_empty());
    }

    #[test]
    fn empty_run_batch_is_an_error_not_a_silent_default() {
        let s = session();
        let empty: Vec<ScenarioSpec> = Vec::new();
        let err = s.on("retail").run_batch(empty).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::EmptyRequest), "{err:?}");
        assert!(err.to_string().contains("no scenarios"), "{err}");
        // Inline modifications still count as a scenario for run_batch.
        let empty: Vec<ScenarioSpec> = Vec::new();
        let response = s
            .on("retail")
            .replace(0, threshold(60))
            .run_batch(empty)
            .unwrap();
        assert_eq!(response.len(), 1);
    }

    #[test]
    fn failed_requests_are_not_counted_as_answered() {
        let s = session();
        s.on("nope").run().unwrap_err();
        s.on("retail").sql("FROB").run().unwrap_err();
        let stats = s.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.scenarios_answered, 0);
        s.on("retail").replace(0, threshold(60)).run().unwrap();
        assert_eq!(s.stats().requests, 1);
        assert_eq!(s.stats().scenarios_answered, 1);
    }

    #[test]
    fn sql_error_uses_the_final_inline_name_regardless_of_order() {
        let s = session();
        // `.named()` after `.sql()` — the error must still name 'late'.
        let err = s.on("retail").sql("FROB").named("late").run().unwrap_err();
        assert!(err.to_string().contains("scenario 'late'"), "{err}");
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let s = session();
        let err = s
            .on("retail")
            .scenario(("a", ModificationSet::single_replace(0, threshold(55))))
            .scenario(("a", ModificationSet::single_replace(0, threshold(60))))
            .run()
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateScenario(_)));
        assert!(err.to_string().contains("'a'"));
        assert_eq!(err.phase, Some(Phase::Admission));
    }

    #[test]
    fn impact_reports_ride_along_uniformly() {
        let s = session();
        let response = s
            .on("retail")
            .impact(ImpactSpec::sum_of("Order", "ShippingFee"))
            .run_batch(sweep("threshold", 0, [60i64, 100], |t| threshold(*t)))
            .unwrap();
        let t60 = response.get("threshold/60").unwrap();
        let report = t60.impact.as_ref().unwrap();
        // Current fees total 17 (Figure 3); threshold 60 charges Alex 5 more.
        assert_eq!(report.baseline, Some(17));
        assert_eq!(report.net_change(), 5);
    }

    #[test]
    fn display_of_response_names_scenarios() {
        let s = session();
        let response = s
            .on("retail")
            .named("bob")
            .replace(0, running_example_u1_prime())
            .run()
            .unwrap();
        let text = response.to_string();
        assert!(text.contains("scenario 'bob'"), "{text}");
        assert!(text.contains("history 'retail'"), "{text}");
    }

    #[test]
    fn clone_snapshots_state_without_rerunning_histories() {
        let s = session();
        s.on("retail").replace(0, threshold(60)).run().unwrap();
        let clone = s.clone();
        assert_eq!(clone.stats(), s.stats());
        // The clone is independent: new work on the original is invisible.
        s.on("retail").replace(0, threshold(65)).run().unwrap();
        assert_eq!(clone.stats().requests + 1, s.stats().requests);
        // Policy knob: `RefinePolicy` default is the Auto cost model.
        assert_eq!(EngineConfig::default().refine, RefinePolicy::auto());
    }
}
