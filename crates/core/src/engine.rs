//! The reenactment-based execution engine (Algorithm 2) and the dispatch to
//! the naïve baseline (Algorithm 1).

use std::collections::BTreeSet;
use std::time::Instant;

use mahif_expr::Expr;
use mahif_history::{
    naive_what_if, DatabaseDelta, History, NormalizedWhatIf, RelationDelta, WhatIfRef,
};
use mahif_query::{evaluate, filter_relation};
use mahif_reenact::split::{split_reenactment, SplitReenactment};
use mahif_slicing::{
    apply_data_slicing, data_slicing_conditions, greedy_slice, program_slice,
    DataSlicingConditions, GreedyConfig, ProgramSliceResult,
};
use mahif_storage::{Database, Relation, VersionedDatabase};

use crate::config::{EngineConfig, Method};
use crate::error::MahifError;
use crate::stats::{EngineStats, PhaseTimings, WhatIfAnswer};

/// Answers a historical what-if query with the given method.
///
/// The query is the borrowed view [`WhatIfRef`] (a `&HistoricalWhatIf`
/// converts via `Into`): the engine never clones the registered history or
/// the pre-history state, so a long-lived [`crate::Session`] answers every
/// request against the state it registered once. `versioned` must be the
/// version chain obtained by executing `query.history` over
/// `query.database` (the session maintains it); `current_state` is its
/// newest version `H(D)`.
pub fn answer_what_if<'a>(
    query: impl Into<WhatIfRef<'a>>,
    versioned: &VersionedDatabase,
    current_state: &Database,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    let query = query.into();
    match method {
        Method::Naive => answer_naive(query, current_state),
        _ => answer_reenactment(query, versioned, method, config),
    }
}

pub(crate) fn answer_naive(
    query: WhatIfRef<'_>,
    current_state: &Database,
) -> Result<WhatIfAnswer, MahifError> {
    let result = naive_what_if(query, current_state)?;
    let stats = EngineStats {
        statements_total: query.history.len(),
        statements_reenacted: query.history.len(),
        solver_calls: 0,
        input_tuples: query.database.total_tuples(),
        total_tuples: query.database.total_tuples(),
    };
    Ok(WhatIfAnswer {
        delta: result.delta,
        timings: PhaseTimings {
            copy: result.breakdown.creation,
            execution: result.breakdown.execution,
            delta: result.breakdown.delta,
            ..Default::default()
        },
        stats,
    })
}

fn answer_reenactment(
    query: WhatIfRef<'_>,
    versioned: &VersionedDatabase,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    // Normalize the modifications into two equal-length histories related by
    // replacements only (Section 3 / Section 6).
    let normalized = query.normalize()?;
    let slice = compute_program_slice(&normalized, versioned.initial(), method, config)?;
    answer_normalized(&normalized, &slice, versioned, method, config)
}

/// Phase 1 of the reenactment engine: the program slice for a normalized
/// what-if query (the trivial keep-all slice for methods without program
/// slicing). Exposed so batch engines can compute — or share — slices
/// separately from reenactment; see [`answer_normalized`].
pub fn compute_program_slice(
    normalized: &NormalizedWhatIf,
    base_db: &Database,
    method: Method,
    config: &EngineConfig,
) -> Result<ProgramSliceResult, MahifError> {
    if !method.uses_program_slicing() || normalized.modified_positions.is_empty() {
        return Ok(ProgramSliceResult::keep_all(normalized.original.len()));
    }
    let start = Instant::now();
    let mut result = if config.use_greedy_slicer {
        greedy_slice(
            &normalized.original,
            &normalized.modified,
            &normalized.modified_positions,
            base_db,
            &GreedyConfig {
                compression: config.compression.clone(),
                solver: config.solver.clone(),
            },
        )?
    } else {
        program_slice(
            &normalized.original,
            &normalized.modified,
            &normalized.modified_positions,
            base_db,
            &config.slicing(),
        )?
    };
    result.duration = start.elapsed();
    Ok(result)
}

/// Phases 2–4 of the reenactment engine (data slicing, reenactment, delta)
/// for an already-normalized query and an already-computed program slice.
///
/// `slice` must be answer-preserving for `normalized` over the initial state
/// of `versioned` — either produced by [`compute_program_slice`] for this
/// exact query, or a shared slice certified for a whole scenario group (see
/// `mahif_slicing::program_slice_multi`). Keeping more statements than the
/// per-query minimum is always sound; the delta is unchanged, only the
/// reenactment cost grows.
pub fn answer_normalized(
    normalized: &NormalizedWhatIf,
    slice: &ProgramSliceResult,
    versioned: &VersionedDatabase,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    let mut timings = PhaseTimings::default();
    let mut stats = EngineStats {
        statements_total: normalized.original.len(),
        ..Default::default()
    };
    if normalized.modified_positions.is_empty() {
        return Ok(WhatIfAnswer {
            delta: DatabaseDelta::default(),
            timings,
            stats,
        });
    }
    timings.program_slicing = slice.duration;
    stats.solver_calls = slice.solver_calls;
    stats.statements_reenacted = slice.kept_positions.len();

    // The reenactment base is the time-travel state `D` before the history.
    // Program slicing (both the dependency test and the greedy ζ check)
    // certifies that the sliced histories produce the same delta as the full
    // histories *over this state*, so no later snapshot is needed.
    let base_db = versioned.initial();

    let sliced_original = normalized.original.restrict(&slice.kept_positions);
    let sliced_modified = normalized.modified.restrict(&slice.kept_positions);
    // Positions of the modified statements within the restricted histories.
    let restricted_positions: Vec<usize> = normalized
        .modified_positions
        .iter()
        .filter_map(|p| slice.kept_positions.iter().position(|k| k == p))
        .collect();

    // Phase 2: data slicing.
    let conditions: DataSlicingConditions = if method.uses_data_slicing() {
        let start = Instant::now();
        let c = data_slicing_conditions(&sliced_original, &sliced_modified, &restricted_positions)?;
        timings.data_slicing = start.elapsed();
        c
    } else {
        DataSlicingConditions::default()
    };

    // Phase 3: reenactment of both histories per relation.
    let start = Instant::now();
    let mut relations: BTreeSet<String> = BTreeSet::new();
    for stmt in sliced_original
        .statements()
        .iter()
        .chain(sliced_modified.statements())
    {
        relations.insert(stmt.relation().to_string());
    }
    // The unsliced histories: insert branches must reenact the *full*
    // history following each insert over the inserted tuples (Section 10) —
    // program slicing only applies to stored tuples.
    let original_tail = &normalized.original;
    let modified_tail = &normalized.modified;
    let mut original_results: Vec<(String, Relation)> = Vec::new();
    let mut modified_results: Vec<(String, Relation)> = Vec::new();
    for relation in &relations {
        let schema = base_db.relation(relation)?.schema.clone();
        let original_result = reenact_side(
            &sliced_original,
            original_tail,
            relation,
            &schema,
            &conditions.original_for(relation),
            base_db,
            config,
        )?;
        let modified_result = reenact_side(
            &sliced_modified,
            modified_tail,
            relation,
            &schema,
            &conditions.modified_for(relation),
            base_db,
            config,
        )?;
        original_results.push((relation.clone(), original_result));
        modified_results.push((relation.clone(), modified_result));
    }
    timings.execution = start.elapsed();

    // Phase 4: delta.
    let start = Instant::now();
    let mut deltas = Vec::new();
    for ((relation, left), (_, right)) in original_results.iter().zip(modified_results.iter()) {
        let delta = RelationDelta::compute(relation, left, right);
        if !delta.is_empty() {
            deltas.push(delta);
        }
    }
    timings.delta = start.elapsed();

    // Input-size statistics (outside the timed phases).
    for relation in &relations {
        let rel = base_db.relation(relation)?;
        stats.total_tuples += rel.len();
        let cond_o = conditions.original_for(relation);
        let cond_m = conditions.modified_for(relation);
        stats.input_tuples += count_matching(rel, &cond_o)?.max(count_matching(rel, &cond_m)?);
    }

    Ok(WhatIfAnswer {
        delta: DatabaseDelta { relations: deltas },
        timings,
        stats,
    })
}

fn count_matching(rel: &Relation, cond: &Expr) -> Result<usize, MahifError> {
    if cond.is_true() {
        return Ok(rel.len());
    }
    if cond.is_false() {
        return Ok(0);
    }
    Ok(filter_relation(rel, cond)?.len())
}

/// Reenacts one history over one relation, applying the data-slicing
/// condition and, unless disabled, the insert-split of Section 10 (the
/// no-insert branch reenacts the *sliced* history over the filtered stored
/// relation, the insert branches reenact the *unsliced* suffix over each
/// insert's own small input, and the results are unioned).
#[allow(clippy::too_many_arguments)]
fn reenact_side(
    sliced: &History,
    full_tail: &History,
    relation: &str,
    schema: &mahif_storage::SchemaRef,
    condition: &Expr,
    base_db: &Database,
    config: &EngineConfig,
) -> Result<Relation, MahifError> {
    let has_inserts = full_tail.statements().iter().any(|s| {
        s.relation() == relation
            && matches!(
                s,
                mahif_history::Statement::InsertValues { .. }
                    | mahif_history::Statement::InsertQuery { .. }
            )
    });
    if !has_inserts {
        let query = apply_data_slicing(sliced, relation, schema, condition);
        return Ok(evaluate(&query, base_db)?);
    }
    if config.disable_insert_split {
        // Without the split, inserted tuples flow through the inline unions of
        // the reenactment query, so statements excluded by program slicing
        // would silently not be applied to them. Reenacting the full suffix
        // keeps the ablation correct (and shows what the split buys).
        let query = apply_data_slicing(full_tail, relation, schema, condition);
        return Ok(evaluate(&query, base_db)?);
    }
    // Insert split: reenact the sliced updates/deletes over the filtered
    // scan, and each insert's contribution under the full suffix, then union.
    let SplitReenactment {
        no_insert_query, ..
    } = split_reenactment(sliced, relation, schema);
    let SplitReenactment {
        insert_branches, ..
    } = split_reenactment(full_tail, relation, schema);
    let filtered = if condition.is_true() {
        no_insert_query
    } else {
        inject_filter(no_insert_query, relation, condition)
    };
    let mut result = evaluate(&filtered, base_db)?;
    for branch in insert_branches {
        let branch_result = evaluate(&branch, base_db)?;
        result = result.union_all(&branch_result)?;
    }
    Ok(result)
}

/// Replaces the single base scan of `relation` in a no-insert reenactment
/// query with a filtered scan.
fn inject_filter(
    query: mahif_query::Query,
    relation: &str,
    condition: &Expr,
) -> mahif_query::Query {
    use mahif_query::Query;
    match query {
        Query::Scan { relation: r } if r == relation => {
            Query::select(condition.clone(), Query::Scan { relation: r })
        }
        Query::Select { cond, input } => Query::Select {
            cond,
            input: Box::new(inject_filter(*input, relation, condition)),
        },
        Query::Project { items, input } => Query::Project {
            items,
            input: Box::new(inject_filter(*input, relation, condition)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Value;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{HistoricalWhatIf, Modification, ModificationSet, SetClause, Statement};
    use mahif_storage::Tuple;

    fn setup(modifications: ModificationSet) -> (HistoricalWhatIf, VersionedDatabase, Database) {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let versioned = history.execute_versioned(&db).unwrap();
        let current = versioned.current().clone();
        (
            HistoricalWhatIf::new(history, db, modifications),
            versioned,
            current,
        )
    }

    fn all_methods_agree(modifications: ModificationSet) {
        let (query, versioned, current) = setup(modifications);
        let reference = query.answer_by_direct_execution().unwrap();
        for method in Method::all() {
            let answer = answer_what_if(
                &query,
                &versioned,
                &current,
                method,
                &EngineConfig::default(),
            )
            .unwrap();
            assert_eq!(
                answer.delta,
                reference,
                "method {} disagrees with direct execution",
                method.label()
            );
        }
    }

    #[test]
    fn all_methods_running_example() {
        all_methods_agree(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
    }

    #[test]
    fn all_methods_statement_deletion() {
        all_methods_agree(ModificationSet::new(vec![Modification::delete(1)]));
    }

    #[test]
    fn all_methods_statement_insertion() {
        let extra = Statement::update(
            "Order",
            SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(1))),
            eq(attr("Country"), slit("US")),
        );
        all_methods_agree(ModificationSet::new(vec![Modification::insert(3, extra)]));
    }

    #[test]
    fn all_methods_multiple_modifications() {
        let u3_prime = Statement::update(
            "Order",
            SetClause::single("ShippingFee", sub(attr("ShippingFee"), lit(2))),
            and(le(attr("Price"), lit(40)), ge(attr("ShippingFee"), lit(10))),
        );
        all_methods_agree(ModificationSet::new(vec![
            Modification::replace(0, running_example_u1_prime()),
            Modification::replace(2, u3_prime),
        ]));
    }

    #[test]
    fn all_methods_with_inserts_in_history() {
        // Extend the history with an insert and a delete, then modify u1.
        let db = running_example_database();
        let mut statements = running_example_history();
        statements.push(Statement::insert_values(
            "Order",
            Tuple::new(vec![
                Value::int(15),
                Value::str("Eve"),
                Value::str("UK"),
                Value::int(55),
                Value::int(7),
            ]),
        ));
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(1)),
            ge(attr("Price"), lit(52)),
        ));
        let history = History::new(statements);
        let versioned = history.execute_versioned(&db).unwrap();
        let current = versioned.current().clone();
        let query = HistoricalWhatIf::new(
            history,
            db,
            ModificationSet::single_replace(0, running_example_u1_prime()),
        );
        let reference = query.answer_by_direct_execution().unwrap();
        for method in Method::all() {
            for disable_split in [false, true] {
                let config = EngineConfig {
                    disable_insert_split: disable_split,
                    ..Default::default()
                };
                let answer = answer_what_if(&query, &versioned, &current, method, &config).unwrap();
                assert_eq!(
                    answer.delta,
                    reference,
                    "method {} (split disabled: {disable_split}) disagrees",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn greedy_slicer_configuration() {
        let (query, versioned, current) = setup(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
        let reference = query.answer_by_direct_execution().unwrap();
        let config = EngineConfig {
            use_greedy_slicer: true,
            ..Default::default()
        };
        let answer =
            answer_what_if(&query, &versioned, &current, Method::ReenactPsDs, &config).unwrap();
        assert_eq!(answer.delta, reference);
        assert!(answer.stats.solver_calls > 0);
    }

    #[test]
    fn stats_reflect_slicing() {
        let (query, versioned, current) = setup(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
        let answer = answer_what_if(
            &query,
            &versioned,
            &current,
            Method::ReenactPsDs,
            &EngineConfig::default(),
        )
        .unwrap();
        // u3 is excluded by program slicing, the data slice keeps 2 of 4
        // tuples.
        assert_eq!(answer.stats.statements_total, 3);
        assert_eq!(answer.stats.statements_reenacted, 2);
        assert_eq!(answer.stats.total_tuples, 4);
        assert_eq!(answer.stats.input_tuples, 2);
        assert!(answer.timings.program_slicing > std::time::Duration::ZERO);
        // Reenactment-only has no slicing cost and full input.
        let plain = answer_what_if(
            &query,
            &versioned,
            &current,
            Method::Reenact,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.stats.statements_reenacted, 3);
        assert_eq!(plain.stats.input_tuples, 4);
        assert_eq!(plain.stats.solver_calls, 0);
    }

    #[test]
    fn empty_modifications_give_empty_answer() {
        let (query, versioned, current) = setup(ModificationSet::default());
        for method in Method::all() {
            let answer = answer_what_if(
                &query,
                &versioned,
                &current,
                method,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(answer.delta.is_empty(), "method {}", method.label());
        }
    }
}
