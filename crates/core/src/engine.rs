//! The reenactment-based execution engine (Algorithm 2) and the dispatch to
//! the naïve baseline (Algorithm 1).
//!
//! The engine is organized around **group execution plans**: scenarios of a
//! batch whose normalizations share the original history and the modified
//! positions form a group (see `mahif_slicing::groups`), and everything in
//! the reenactment pipeline that depends only on the shared side is computed
//! once per group by [`GroupPlan::build`] — the sliced original history, the
//! group-level data-slicing conditions and, crucially, the *original-side
//! reenactment result per relation*, which is identical across all group
//! members. [`GroupPlan::answer_in_group`] then answers one member with only
//! the member-specific work: the modified-side reenactment and the delta
//! against the cached original relations. A single query is a group of one,
//! so [`answer_normalized`] is a thin wrapper that builds a singleton plan
//! and answers it.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use mahif_expr::Expr;
use mahif_history::{
    naive_what_if, DatabaseDelta, History, NormalizedWhatIf, RelationDelta, WhatIfRef,
};
use mahif_query::{evaluate, filter_relation};
use mahif_reenact::columnar::reenact_side_columnar;
use mahif_reenact::split::{split_reenactment, SplitReenactment};
use mahif_slicing::{
    apply_data_slicing, data_slicing_conditions, data_slicing_conditions_multi, greedy_slice,
    program_slice, DataSlicingConditions, GreedyConfig, ProgramSliceResult,
};
use mahif_storage::{ColumnarRelation, Database, Relation, VersionedDatabase};

use crate::config::{Deadline, EngineConfig, Method};
use crate::error::MahifError;
use crate::stats::{EngineStats, PhaseTimings, WhatIfAnswer};

/// Answers a historical what-if query with the given method.
///
/// The query is the borrowed view [`WhatIfRef`] (a `&HistoricalWhatIf`
/// converts via `Into`): the engine never clones the registered history or
/// the pre-history state, so a long-lived [`crate::Session`] answers every
/// request against the state it registered once. `versioned` must be the
/// version chain obtained by executing `query.history` over
/// `query.database` (the session maintains it); `current_state` is its
/// newest version `H(D)`.
pub fn answer_what_if<'a>(
    query: impl Into<WhatIfRef<'a>>,
    versioned: &VersionedDatabase,
    current_state: &Database,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    let query = query.into();
    match method {
        Method::Naive => answer_naive(query, current_state),
        _ => answer_reenactment(query, versioned, method, config),
    }
}

pub(crate) fn answer_naive(
    query: WhatIfRef<'_>,
    current_state: &Database,
) -> Result<WhatIfAnswer, MahifError> {
    let result = naive_what_if(query, current_state)?;
    let stats = EngineStats {
        statements_total: query.history.len(),
        statements_reenacted: query.history.len(),
        solver_calls: 0,
        input_tuples: query.database.total_tuples(),
        total_tuples: query.database.total_tuples(),
        ..Default::default()
    };
    Ok(WhatIfAnswer {
        delta: result.delta,
        timings: PhaseTimings {
            copy: result.breakdown.creation,
            execution: result.breakdown.execution,
            delta: result.breakdown.delta,
            ..Default::default()
        },
        stats,
    })
}

fn answer_reenactment(
    query: WhatIfRef<'_>,
    versioned: &VersionedDatabase,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    // Normalize the modifications into two equal-length histories related by
    // replacements only (Section 3 / Section 6).
    let normalized = query.normalize()?;
    let slice = compute_program_slice(&normalized, versioned.initial(), method, config)?;
    answer_normalized(&normalized, &slice, versioned, method, config)
}

/// Phase 1 of the reenactment engine: the program slice for a normalized
/// what-if query (the trivial keep-all slice for methods without program
/// slicing). Exposed so batch engines can compute — or share — slices
/// separately from reenactment; see [`answer_normalized`].
pub fn compute_program_slice(
    normalized: &NormalizedWhatIf,
    base_db: &Database,
    method: Method,
    config: &EngineConfig,
) -> Result<ProgramSliceResult, MahifError> {
    if !method.uses_program_slicing() || normalized.modified_positions.is_empty() {
        return Ok(ProgramSliceResult::keep_all(normalized.original.len()));
    }
    let start = Instant::now();
    let mut result = if config.use_greedy_slicer {
        greedy_slice(
            &normalized.original,
            &normalized.modified,
            &normalized.modified_positions,
            base_db,
            &GreedyConfig {
                compression: config.compression.clone(),
                solver: config.solver.clone(),
            },
        )?
    } else {
        program_slice(
            &normalized.original,
            &normalized.modified,
            &normalized.modified_positions,
            base_db,
            &config.slicing(),
        )?
    };
    result.duration = start.elapsed();
    Ok(result)
}

/// Phases 2–4 of the reenactment engine (data slicing, reenactment, delta)
/// for an already-normalized query and an already-computed program slice.
///
/// `slice` must be answer-preserving for `normalized` over the initial state
/// of `versioned` — either produced by [`compute_program_slice`] for this
/// exact query, or a shared slice certified for a whole scenario group (see
/// `mahif_slicing::program_slice_multi`). Keeping more statements than the
/// per-query minimum is always sound; the delta is unchanged, only the
/// reenactment cost grows.
///
/// A single query is a group of one: this builds a singleton [`GroupPlan`]
/// and answers its only member, with the shared phases' timings folded into
/// the member's answer.
pub fn answer_normalized(
    normalized: &NormalizedWhatIf,
    slice: &ProgramSliceResult,
    versioned: &VersionedDatabase,
    method: Method,
    config: &EngineConfig,
) -> Result<WhatIfAnswer, MahifError> {
    let plan = GroupPlan::build(&[normalized], slice, versioned, method, config, None)?;
    plan.answer_in_group(normalized, versioned)
}

/// The once-per-group half of the reenactment engine.
///
/// Scenarios whose normalizations share `(original, modified_positions)` —
/// a slice-sharing group — also share everything in phases 2–3 that depends
/// only on the original side: the sliced original history, the data-slicing
/// conditions and the original-side reenactment result per relation. A
/// `GroupPlan` computes all of that exactly once;
/// [`answer_in_group`](Self::answer_in_group) answers one member with only
/// the member-specific work (modified-side reenactment + delta against the
/// cached original relations).
///
/// **Why the original side is shareable.** Per-scenario data slicing
/// derives a condition pair that may differ across members (each member's
/// filter mentions *its* replacement's condition). The plan instead uses
/// the group-level symmetric conditions of
/// [`data_slicing_conditions_multi`]: one condition per relation — the
/// disjunction of all members' per-side conditions — applied to *both*
/// sides of *every* member. Tuples kept beyond a member's own filter are,
/// for that member, unaffected by the modification; they reenact to
/// identical rows on both sides and cancel in the symmetric difference, so
/// every member's delta is byte-identical to its individual answer while
/// the original-side reenactment query (and result) becomes literally the
/// same for all members. A singleton group keeps the member's own
/// (possibly asymmetric) conditions, so single queries behave exactly as
/// before.
///
/// A plan owns everything it needs (its `EngineConfig` is cloned at build
/// time), so it can outlive the request that built it — the session's
/// cross-request provisioning cache (see `crate::provision`) stores plans
/// and answers later requests from them via
/// [`answer_cached`](Self::answer_cached).
/// Work counters for the columnar reenactment path, threaded through
/// [`reenact_side`] so one call site can attribute the work to either the
/// plan's shared original-side phase or a member's answer.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ColumnarCounters {
    /// Per-relation reenactments answered batch-at-a-time.
    pub batches: usize,
    /// Flat predicate/projection programs evaluated vectorized.
    pub predicates: usize,
    /// Attempted columnar reenactments that declined and re-ran on the row
    /// path (not counted when the path is disabled by configuration).
    pub fallbacks: usize,
}

#[derive(Debug)]
pub struct GroupPlan {
    method: Method,
    config: EngineConfig,
    slice_duration: Duration,
    solver_calls: usize,
    statements_total: usize,
    statements_reenacted: usize,
    group_size: usize,
    /// Empty groups (no modified positions) answer the empty delta.
    empty: bool,
    /// Positions kept by the group's program slice; members restrict their
    /// modified histories to these.
    kept_positions: Vec<usize>,
    conditions: DataSlicingConditions,
    /// Group conditions are symmetric (same condition on both sides), so
    /// per-member input counts equal the original-side counts.
    symmetric: bool,
    /// Relations touched by the group's sliced histories, sorted.
    relations: Vec<String>,
    /// For multi-member groups, the data-sliced base relation materialized
    /// once per relation (parallel to `relations`): the group condition is
    /// evaluated over the stored relation a single time, and every member
    /// reenacts over the pre-filtered tuples with a `true` condition —
    /// instead of k members each re-evaluating the condition over the full
    /// relation. `None` when the condition is trivial (nothing to filter)
    /// or when an `INSERT ... SELECT` is in play (its branches must read
    /// unfiltered base relations).
    filtered_base: Vec<Option<Database>>,
    /// Columnar encoding of each relation's reenactment base (parallel to
    /// `relations`), built once at plan time so neither the shared phase
    /// nor any of the k members re-encodes the stored tuples. Follows the
    /// same source as the row path: the pre-filtered shadow relation when
    /// one was materialized, the stored relation otherwise. `None` when the
    /// relation has a mixed-type column (no typed encoding) or the columnar
    /// path is disabled by configuration.
    columnar_base: Vec<Option<ColumnarRelation>>,
    /// Columnar-path work counters of the shared original-side phase,
    /// folded into the answer for singleton groups (like the shared
    /// timings) and reported at the batch level otherwise.
    shared_columnar: ColumnarCounters,
    /// Original-side reenactment result per relation (parallel to
    /// `relations`) — the shared half of phase 3, computed once.
    original_results: Vec<Relation>,
    /// `count_matching` of the original-side condition per relation
    /// (parallel to `relations`), for the input-tuple statistics.
    original_matching: Vec<usize>,
    total_tuples: usize,
    shared_data_slicing: Duration,
    shared_reenactment: Duration,
    /// Wall-clock time of the shared original-side reenactment, per
    /// relation (parallel to `relations`) — the per-relation breakdown of
    /// `shared_reenactment`, surfaced to tracing layers so a slow plan
    /// build is attributable to the relation that cost it.
    relation_timings: Vec<Duration>,
}

// Cached plans are shared across request threads on one `Arc<Session>`.
// Compile-time regression guard.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GroupPlan>();
};

impl GroupPlan {
    /// Builds the plan for a slice-sharing group.
    ///
    /// `members` are the group's normalized queries: all must share the
    /// original history and modified positions (the grouping invariant of
    /// `mahif_slicing::group_scenarios`), and `slice` must be
    /// answer-preserving for every member (a shared
    /// `program_slice_multi` slice, or any per-member slice for a
    /// singleton group).
    ///
    /// `deadline` is the request budget's armed wall clock (if any): the
    /// plan's per-relation loop — the group's shared data slicing and
    /// original-side reenactment — re-checks it between relations, so an
    /// over-deadline batch fails fast with a structured
    /// `ErrorKind::BudgetExceeded` instead of reenacting every relation
    /// first.
    pub fn build(
        members: &[&NormalizedWhatIf],
        slice: &ProgramSliceResult,
        versioned: &VersionedDatabase,
        method: Method,
        config: &EngineConfig,
        deadline: Option<Deadline>,
    ) -> Result<GroupPlan, MahifError> {
        let first = members
            .first()
            .ok_or_else(|| MahifError::from(mahif_slicing::SlicingError::EmptyScenarioGroup))?;
        let statements_total = first.original.len();
        if first.modified_positions.is_empty() {
            return Ok(GroupPlan {
                method,
                config: config.clone(),
                slice_duration: Duration::default(),
                solver_calls: 0,
                statements_total,
                statements_reenacted: 0,
                group_size: members.len(),
                empty: true,
                kept_positions: Vec::new(),
                conditions: DataSlicingConditions::default(),
                symmetric: true,
                relations: Vec::new(),
                filtered_base: Vec::new(),
                columnar_base: Vec::new(),
                shared_columnar: ColumnarCounters::default(),
                original_results: Vec::new(),
                original_matching: Vec::new(),
                total_tuples: 0,
                shared_data_slicing: Duration::default(),
                shared_reenactment: Duration::default(),
                relation_timings: Vec::new(),
            });
        }

        // The reenactment base is the time-travel state `D` before the
        // history. Program slicing (both the dependency test and the greedy
        // ζ check) certifies that the sliced histories produce the same
        // delta as the full histories *over this state*, so no later
        // snapshot is needed.
        let base_db = versioned.initial();

        let sliced_original = first.original.restrict(&slice.kept_positions);
        // Positions of the modified statements within the restricted
        // histories, via a single position → index map (not a quadratic
        // `position()` scan per modified statement).
        let kept_index: BTreeMap<usize, usize> = slice
            .kept_positions
            .iter()
            .enumerate()
            .map(|(idx, &p)| (p, idx))
            .collect();
        let restricted_positions: Vec<usize> = first
            .modified_positions
            .iter()
            .filter_map(|p| kept_index.get(p).copied())
            .collect();

        // Phase 2: data slicing. Singleton groups use the member's own
        // (possibly asymmetric) conditions — exactly the single-query
        // behavior; larger groups use the symmetric group conditions so the
        // original side is shared.
        let symmetric = members.len() > 1;
        let mut shared_data_slicing = Duration::default();
        let conditions: DataSlicingConditions = if method.uses_data_slicing() {
            let start = Instant::now();
            let c = if symmetric {
                let sliced_variants: Vec<History> = members
                    .iter()
                    .map(|m| m.modified.restrict(&slice.kept_positions))
                    .collect();
                data_slicing_conditions_multi(
                    &sliced_original,
                    &sliced_variants,
                    &restricted_positions,
                )?
            } else {
                let sliced_modified = first.modified.restrict(&slice.kept_positions);
                data_slicing_conditions(&sliced_original, &sliced_modified, &restricted_positions)?
            };
            shared_data_slicing = start.elapsed();
            c
        } else {
            DataSlicingConditions::default()
        };

        // Relations touched by the group: the sliced original plus every
        // member's sliced modified statements (identical across members by
        // the normalization invariant, but unioned for safety).
        let mut relation_set: BTreeSet<String> = BTreeSet::new();
        for stmt in sliced_original.statements() {
            relation_set.insert(stmt.relation().to_string());
        }
        for member in members {
            for &p in &restricted_positions {
                let original_pos = slice.kept_positions[p];
                if let Ok(stmt) = member.modified.statement(original_pos) {
                    relation_set.insert(stmt.relation().to_string());
                }
            }
        }
        let relations: Vec<String> = relation_set.into_iter().collect();

        // Materialize the data-sliced base relation once per relation for
        // multi-member groups: the (possibly large) group condition is then
        // evaluated once instead of once per member. `INSERT ... SELECT`
        // branches read unfiltered base relations through the same database
        // handle, so their presence anywhere in the group's histories
        // disables the materialization (the inline filter path is used
        // instead — identical results either way).
        let has_insert_query = first
            .original
            .statements()
            .iter()
            .chain(members.iter().flat_map(|m| m.modified.statements()))
            .any(|s| matches!(s, mahif_history::Statement::InsertQuery { .. }));
        let start = Instant::now();
        let mut filtered_base: Vec<Option<Database>> = Vec::with_capacity(relations.len());
        for relation in &relations {
            if let Some(deadline) = &deadline {
                deadline.check()?;
            }
            let cond = conditions.original_for(relation);
            if symmetric && !has_insert_query && !cond.is_true() {
                let filtered = filter_relation(base_db.relation(relation)?, &cond)?;
                let mut shadow = Database::new();
                shadow.put_relation(filtered);
                filtered_base.push(Some(shadow));
            } else {
                filtered_base.push(None);
            }
        }

        // Encode each relation's reenactment base into typed columns once
        // for the whole group — the shared phase and every member consume
        // the same immutable batch (its columns are `Arc`-shared, so a
        // member's reenactment never copies untouched attributes). The
        // source mirrors the row path's choice: the shadow relation when
        // one was materialized, the stored relation otherwise.
        let columnar_base: Vec<Option<ColumnarRelation>> = relations
            .iter()
            .zip(filtered_base.iter())
            .map(|(relation, shadow)| {
                if config.disable_columnar {
                    return Ok(None);
                }
                let rel = match shadow {
                    Some(shadow) => shadow.relation(relation)?,
                    None => base_db.relation(relation)?,
                };
                Ok(rel.to_columnar())
            })
            .collect::<Result<_, MahifError>>()?;

        // Phase 3a: the original-side reenactment, once per relation for the
        // whole group.
        let mut shared_columnar = ColumnarCounters::default();
        let mut original_results = Vec::with_capacity(relations.len());
        let mut relation_timings = Vec::with_capacity(relations.len());
        for ((relation, shadow), cbase) in relations
            .iter()
            .zip(filtered_base.iter())
            .zip(columnar_base.iter())
        {
            if let Some(deadline) = &deadline {
                deadline.check()?;
            }
            let relation_start = Instant::now();
            let schema = base_db.relation(relation)?.schema.clone();
            let (db, cond) = match shadow {
                Some(shadow) => (shadow, Expr::true_()),
                None => (base_db, conditions.original_for(relation)),
            };
            original_results.push(reenact_side(
                &sliced_original,
                &first.original,
                relation,
                &schema,
                &cond,
                db,
                config,
                cbase.as_ref(),
                &mut shared_columnar,
            )?);
            relation_timings.push(relation_start.elapsed());
        }
        let shared_reenactment = start.elapsed();

        // Input-size statistics shared by the group (outside the timed
        // phases).
        let mut total_tuples = 0;
        let mut original_matching = Vec::with_capacity(relations.len());
        for (relation, shadow) in relations.iter().zip(filtered_base.iter()) {
            let rel = base_db.relation(relation)?;
            total_tuples += rel.len();
            original_matching.push(match shadow {
                Some(shadow) => shadow.relation(relation)?.len(),
                None => count_matching(rel, &conditions.original_for(relation))?,
            });
        }

        Ok(GroupPlan {
            method,
            config: config.clone(),
            slice_duration: slice.duration,
            solver_calls: slice.solver_calls,
            statements_total,
            statements_reenacted: slice.kept_positions.len(),
            group_size: members.len(),
            empty: false,
            kept_positions: slice.kept_positions.clone(),
            conditions,
            symmetric,
            relations,
            filtered_base,
            columnar_base,
            shared_columnar,
            original_results,
            original_matching,
            total_tuples,
            shared_data_slicing,
            shared_reenactment,
            relation_timings,
        })
    }

    /// Answers one group member: reenacts the member's modified history per
    /// relation (phase 3b) and computes the delta against the plan's cached
    /// original-side results (phase 4).
    ///
    /// `member` must be one of the normalized queries the plan was built
    /// from (same original history, same modified positions). For a
    /// singleton group the shared phases' timings and work counters are
    /// folded into the member's answer — the exact single-query behavior;
    /// for larger groups the member reports only its own work, with
    /// [`EngineStats::shared_work`] set so consumers know the shared
    /// slicing / original-reenactment cost is reported once at the batch
    /// level instead (see `BatchStats`).
    pub fn answer_in_group(
        &self,
        member: &NormalizedWhatIf,
        versioned: &VersionedDatabase,
    ) -> Result<WhatIfAnswer, MahifError> {
        self.answer_member(member, versioned, self.group_size == 1)
    }

    /// Answers one member from a *reused* plan: the delta is byte-identical
    /// to [`answer_in_group`](Self::answer_in_group), but the shared phases
    /// are never folded into the member's answer — a cross-request cache
    /// hit did not slice, derive conditions or reenact the original side,
    /// so re-attributing that work (even for a singleton plan) would
    /// overstate what the request actually did. [`EngineStats::shared_work`]
    /// is set so consumers know the shared cost lives elsewhere.
    pub fn answer_cached(
        &self,
        member: &NormalizedWhatIf,
        versioned: &VersionedDatabase,
    ) -> Result<WhatIfAnswer, MahifError> {
        self.answer_member(member, versioned, false)
    }

    /// The member-specific half of the engine; `fold_shared` re-attributes
    /// the plan's shared phases (slice, conditions, original reenactment)
    /// to this answer — exact single-query behavior for freshly built
    /// singleton plans.
    fn answer_member(
        &self,
        member: &NormalizedWhatIf,
        versioned: &VersionedDatabase,
        fold_shared: bool,
    ) -> Result<WhatIfAnswer, MahifError> {
        let solo = fold_shared;
        let mut timings = PhaseTimings::default();
        let mut stats = EngineStats {
            statements_total: self.statements_total,
            ..Default::default()
        };
        if self.empty {
            return Ok(WhatIfAnswer {
                delta: DatabaseDelta::default(),
                timings,
                stats,
            });
        }
        stats.statements_reenacted = self.statements_reenacted;
        stats.shared_work = !solo;
        if solo {
            // Fold the shared phases into the only member, as a standalone
            // single query reports them.
            timings.program_slicing = self.slice_duration;
            timings.data_slicing = self.shared_data_slicing;
            stats.solver_calls = self.solver_calls;
            stats.original_reenactments = self.relations.len();
            stats.columnar_batches = self.shared_columnar.batches;
            stats.vectorized_predicates = self.shared_columnar.predicates;
            stats.row_fallbacks = self.shared_columnar.fallbacks;
        }

        let base_db = versioned.initial();
        let sliced_modified = member.modified.restrict(&self.kept_positions);

        // Phase 3b: the member's modified-side reenactment, over the plan's
        // pre-filtered base relations where materialized.
        let start = Instant::now();
        let mut member_columnar = ColumnarCounters::default();
        let mut modified_results = Vec::with_capacity(self.relations.len());
        for ((relation, shadow), cbase) in self
            .relations
            .iter()
            .zip(self.filtered_base.iter())
            .zip(self.columnar_base.iter())
        {
            let schema = base_db.relation(relation)?.schema.clone();
            let (db, cond) = match shadow {
                Some(shadow) => (shadow, Expr::true_()),
                None => (base_db, self.conditions.modified_for(relation)),
            };
            modified_results.push(reenact_side(
                &sliced_modified,
                &member.modified,
                relation,
                &schema,
                &cond,
                db,
                &self.config,
                cbase.as_ref(),
                &mut member_columnar,
            )?);
        }
        stats.columnar_batches += member_columnar.batches;
        stats.vectorized_predicates += member_columnar.predicates;
        stats.row_fallbacks += member_columnar.fallbacks;
        timings.execution = start.elapsed();
        if solo {
            timings.execution += self.shared_reenactment;
        }

        // Phase 4: delta against the cached original-side results.
        let start = Instant::now();
        let mut deltas = Vec::new();
        for ((relation, left), right) in self
            .relations
            .iter()
            .zip(self.original_results.iter())
            .zip(modified_results.iter())
        {
            let delta = RelationDelta::compute(relation, left, right);
            if !delta.is_empty() {
                deltas.push(delta);
            }
        }
        timings.delta = start.elapsed();

        // Input-size statistics. Group conditions are symmetric, so the
        // modified-side count equals the cached original-side count; only a
        // singleton group's asymmetric conditions need a second count.
        stats.total_tuples = self.total_tuples;
        for (relation, &original_count) in self.relations.iter().zip(self.original_matching.iter())
        {
            let modified_count = if self.symmetric {
                original_count
            } else {
                let rel = base_db.relation(relation)?;
                count_matching(rel, &self.conditions.modified_for(relation))?
            };
            stats.input_tuples += original_count.max(modified_count);
        }

        Ok(WhatIfAnswer {
            delta: DatabaseDelta::from_relations(deltas),
            timings,
            stats,
        })
    }

    /// Number of scenarios the plan was built for.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of original-side reenactments the plan performed (one per
    /// relation; `0` for an empty group).
    pub fn original_reenactments(&self) -> usize {
        self.relations.len()
    }

    /// Wall-clock time of the plan's shared phases (group data-slicing
    /// conditions + original-side reenactment).
    pub fn shared_duration(&self) -> Duration {
        self.shared_data_slicing + self.shared_reenactment
    }

    /// Columnar-path work counters of the plan's shared original-side
    /// phase. Like `shared_duration`, these are reported at the batch
    /// level for multi-member groups (a singleton group folds them into
    /// its member's answer instead).
    pub(crate) fn shared_columnar(&self) -> ColumnarCounters {
        self.shared_columnar
    }

    /// The execution method the plan was built for.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The relations the plan's cached original-side results cover, sorted.
    /// The provisioning cache records these per entry so a future
    /// streaming-append path can invalidate exactly the plans whose
    /// dependencies an appended statement touches.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// A rough estimate of the plan's resident size in bytes (cached
    /// relation tuples dominate). Used by the provisioning cache's byte
    /// budget; deliberately cheap and approximate, not an allocator count.
    pub fn approx_bytes(&self) -> usize {
        // A stored tuple is a Vec of values plus per-tuple bookkeeping;
        // 64 bytes is a deliberately generous per-tuple charge so the byte
        // budget errs toward evicting early rather than blowing the cap.
        const TUPLE_COST: usize = 64;
        let cached_tuples: usize = self
            .original_results
            .iter()
            .map(Relation::len)
            .sum::<usize>()
            + self
                .filtered_base
                .iter()
                .flatten()
                .map(Database::total_tuples)
                .sum::<usize>();
        let columnar_bytes: usize = self
            .columnar_base
            .iter()
            .flatten()
            .map(ColumnarRelation::approx_bytes)
            .sum();
        1024 + cached_tuples * TUPLE_COST + columnar_bytes + self.kept_positions.len() * 16
    }

    /// The shared original-side reenactment time per relation, in the
    /// plan's (sorted) relation order — the per-relation breakdown of
    /// [`shared_duration`](Self::shared_duration)'s reenactment half.
    pub fn relation_timings(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.relations
            .iter()
            .map(String::as_str)
            .zip(self.relation_timings.iter().copied())
    }
}

fn count_matching(rel: &Relation, cond: &Expr) -> Result<usize, MahifError> {
    if cond.is_true() {
        return Ok(rel.len());
    }
    if cond.is_false() {
        return Ok(0);
    }
    Ok(filter_relation(rel, cond)?.len())
}

/// Reenacts one history over one relation, applying the data-slicing
/// condition and, unless disabled, the insert-split of Section 10 (the
/// no-insert branch reenacts the *sliced* history over the filtered stored
/// relation, the insert branches reenact the *unsliced* suffix over each
/// insert's own small input, and the results are unioned).
///
/// The columnar fast path is tried first when a typed encoding of the base
/// relation is available (`columnar_base`, or an ad-hoc encoding when the
/// caller has none): it produces tuple-for-tuple the same relation as the
/// row path or declines (`None`), in which case the row path below runs
/// unchanged — so every error the row evaluator would report still
/// surfaces, and `disable_columnar` is a pure ablation switch.
#[allow(clippy::too_many_arguments)]
fn reenact_side(
    sliced: &History,
    full_tail: &History,
    relation: &str,
    schema: &mahif_storage::SchemaRef,
    condition: &Expr,
    base_db: &Database,
    config: &EngineConfig,
    columnar_base: Option<&ColumnarRelation>,
    counters: &mut ColumnarCounters,
) -> Result<Relation, MahifError> {
    let has_inserts = full_tail.statements().iter().any(|s| {
        s.relation() == relation
            && matches!(
                s,
                mahif_history::Statement::InsertValues { .. }
                    | mahif_history::Statement::InsertQuery { .. }
            )
    });
    // The inline-insert ablation (`disable_insert_split` with inserts in
    // play) reenacts the full suffix through the query evaluator; the
    // columnar path only mirrors the split shape, so it stands aside there
    // rather than counting a fallback.
    if !(config.disable_columnar || (has_inserts && config.disable_insert_split)) {
        let owned;
        let cbase = match columnar_base {
            Some(c) => Some(c),
            None => {
                owned = base_db
                    .relation(relation)
                    .ok()
                    .and_then(Relation::to_columnar);
                owned.as_ref()
            }
        };
        match cbase.and_then(|cb| {
            reenact_side_columnar(sliced, full_tail, relation, schema, condition, base_db, cb)
        }) {
            Some(outcome) => {
                counters.batches += 1;
                counters.predicates += outcome.vectorized_predicates;
                return Ok(outcome.relation);
            }
            None => counters.fallbacks += 1,
        }
    }
    if !has_inserts {
        let query = apply_data_slicing(sliced, relation, schema, condition);
        return Ok(evaluate(&query, base_db)?);
    }
    if config.disable_insert_split {
        // Without the split, inserted tuples flow through the inline unions of
        // the reenactment query, so statements excluded by program slicing
        // would silently not be applied to them. Reenacting the full suffix
        // keeps the ablation correct (and shows what the split buys).
        let query = apply_data_slicing(full_tail, relation, schema, condition);
        return Ok(evaluate(&query, base_db)?);
    }
    // Insert split: reenact the sliced updates/deletes over the filtered
    // scan, and each insert's contribution under the full suffix, then union.
    let SplitReenactment {
        no_insert_query, ..
    } = split_reenactment(sliced, relation, schema);
    let SplitReenactment {
        insert_branches, ..
    } = split_reenactment(full_tail, relation, schema);
    let filtered = if condition.is_true() {
        no_insert_query
    } else {
        inject_filter(no_insert_query, relation, condition)
    };
    let mut result = evaluate(&filtered, base_db)?;
    for branch in insert_branches {
        let branch_result = evaluate(&branch, base_db)?;
        result = result.union_all(&branch_result)?;
    }
    Ok(result)
}

/// Replaces the single base scan of `relation` in a no-insert reenactment
/// query with a filtered scan.
fn inject_filter(
    query: mahif_query::Query,
    relation: &str,
    condition: &Expr,
) -> mahif_query::Query {
    use mahif_query::Query;
    match query {
        Query::Scan { relation: r } if r == relation => {
            Query::select(condition.clone(), Query::Scan { relation: r })
        }
        Query::Select { cond, input } => Query::Select {
            cond,
            input: Box::new(inject_filter(*input, relation, condition)),
        },
        Query::Project { items, input } => Query::Project {
            items,
            input: Box::new(inject_filter(*input, relation, condition)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahif_expr::builder::*;
    use mahif_expr::Value;
    use mahif_history::statement::{
        running_example_database, running_example_history, running_example_u1_prime,
    };
    use mahif_history::{HistoricalWhatIf, Modification, ModificationSet, SetClause, Statement};
    use mahif_storage::Tuple;

    fn setup(modifications: ModificationSet) -> (HistoricalWhatIf, VersionedDatabase, Database) {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let versioned = history.execute_versioned(&db).unwrap();
        let current = versioned.current().clone();
        (
            HistoricalWhatIf::new(history, db, modifications),
            versioned,
            current,
        )
    }

    fn all_methods_agree(modifications: ModificationSet) {
        let (query, versioned, current) = setup(modifications);
        let reference = query.answer_by_direct_execution().unwrap();
        for method in Method::all() {
            let answer = answer_what_if(
                &query,
                &versioned,
                &current,
                method,
                &EngineConfig::default(),
            )
            .unwrap();
            assert_eq!(
                answer.delta,
                reference,
                "method {} disagrees with direct execution",
                method.label()
            );
        }
    }

    #[test]
    fn all_methods_running_example() {
        all_methods_agree(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
    }

    #[test]
    fn all_methods_statement_deletion() {
        all_methods_agree(ModificationSet::new(vec![Modification::delete(1)]));
    }

    #[test]
    fn all_methods_statement_insertion() {
        let extra = Statement::update(
            "Order",
            SetClause::single("ShippingFee", add(attr("ShippingFee"), lit(1))),
            eq(attr("Country"), slit("US")),
        );
        all_methods_agree(ModificationSet::new(vec![Modification::insert(3, extra)]));
    }

    #[test]
    fn all_methods_multiple_modifications() {
        let u3_prime = Statement::update(
            "Order",
            SetClause::single("ShippingFee", sub(attr("ShippingFee"), lit(2))),
            and(le(attr("Price"), lit(40)), ge(attr("ShippingFee"), lit(10))),
        );
        all_methods_agree(ModificationSet::new(vec![
            Modification::replace(0, running_example_u1_prime()),
            Modification::replace(2, u3_prime),
        ]));
    }

    #[test]
    fn all_methods_with_inserts_in_history() {
        // Extend the history with an insert and a delete, then modify u1.
        let db = running_example_database();
        let mut statements = running_example_history();
        statements.push(Statement::insert_values(
            "Order",
            Tuple::new(vec![
                Value::int(15),
                Value::str("Eve"),
                Value::str("UK"),
                Value::int(55),
                Value::int(7),
            ]),
        ));
        statements.push(Statement::update(
            "Order",
            SetClause::single("ShippingFee", lit(1)),
            ge(attr("Price"), lit(52)),
        ));
        let history = History::new(statements);
        let versioned = history.execute_versioned(&db).unwrap();
        let current = versioned.current().clone();
        let query = HistoricalWhatIf::new(
            history,
            db,
            ModificationSet::single_replace(0, running_example_u1_prime()),
        );
        let reference = query.answer_by_direct_execution().unwrap();
        for method in Method::all() {
            for disable_split in [false, true] {
                let config = EngineConfig {
                    disable_insert_split: disable_split,
                    ..Default::default()
                };
                let answer = answer_what_if(&query, &versioned, &current, method, &config).unwrap();
                assert_eq!(
                    answer.delta,
                    reference,
                    "method {} (split disabled: {disable_split}) disagrees",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn group_plan_matches_single_answers_and_counts_shared_work() {
        // A threshold sweep forms one group; the plan must answer every
        // member byte-identically to the single-query path while reenacting
        // the original side exactly once (per relation).
        let db = running_example_database();
        let history = History::new(running_example_history());
        let versioned = history.execute_versioned(&db).unwrap();
        let thresholds = [55i64, 60, 65, 70];
        let make = |t: i64| {
            Statement::update(
                "Order",
                SetClause::single("ShippingFee", lit(0)),
                ge(attr("Price"), lit(t)),
            )
        };
        let normalized: Vec<NormalizedWhatIf> = thresholds
            .iter()
            .map(|&t| {
                let mods = ModificationSet::single_replace(0, make(t));
                WhatIfRef::new(&history, versioned.initial(), &mods)
                    .normalize()
                    .unwrap()
            })
            .collect();
        let members: Vec<&NormalizedWhatIf> = normalized.iter().collect();
        let variants: Vec<&History> = normalized.iter().map(|n| &n.modified).collect();
        let slice = mahif_slicing::program_slice_multi(
            &normalized[0].original,
            &variants,
            &normalized[0].modified_positions,
            versioned.initial(),
            &EngineConfig::default().slicing(),
        )
        .unwrap();
        let config = EngineConfig::default();
        let plan = GroupPlan::build(
            &members,
            &slice,
            &versioned,
            Method::ReenactPsDs,
            &config,
            None,
        )
        .unwrap();
        assert_eq!(plan.group_size(), 4);
        assert_eq!(
            plan.original_reenactments(),
            1,
            "one relation, reenacted once for the whole group"
        );
        assert_eq!(plan.method(), Method::ReenactPsDs);
        for (i, member) in normalized.iter().enumerate() {
            let answer = plan.answer_in_group(member, &versioned).unwrap();
            let mods = ModificationSet::single_replace(0, make(thresholds[i]));
            let reference = HistoricalWhatIf::new(history.clone(), db.clone(), mods.clone())
                .answer_by_direct_execution()
                .unwrap();
            assert_eq!(answer.delta, reference, "member {i} delta diverged");
            // Members report only their own work; the shared phases are
            // flagged, zeroed and reported at the plan level.
            assert!(answer.stats.shared_work);
            assert_eq!(answer.stats.original_reenactments, 0);
            assert_eq!(answer.timings.program_slicing, Duration::ZERO);
            assert_eq!(answer.timings.data_slicing, Duration::ZERO);
            // And match the single-query engine byte for byte on the delta.
            let query = HistoricalWhatIf::new(history.clone(), db.clone(), mods);
            let single = answer_what_if(
                &query,
                &versioned,
                versioned.current(),
                Method::ReenactPsDs,
                &config,
            )
            .unwrap();
            assert_eq!(answer.delta, single.delta, "member {i} vs single");
            assert!(!single.stats.shared_work, "singles fold their own work");
            assert_eq!(single.stats.original_reenactments, 1);
        }
    }

    #[test]
    fn empty_group_plan_is_rejected_and_empty_positions_answer_empty() {
        let db = running_example_database();
        let history = History::new(running_example_history());
        let versioned = history.execute_versioned(&db).unwrap();
        let config = EngineConfig::default();
        assert!(GroupPlan::build(
            &[],
            &ProgramSliceResult::keep_all(3),
            &versioned,
            Method::ReenactPsDs,
            &config,
            None
        )
        .is_err());
        let mods = ModificationSet::default();
        let normalized = WhatIfRef::new(&history, versioned.initial(), &mods)
            .normalize()
            .unwrap();
        let plan = GroupPlan::build(
            &[&normalized],
            &ProgramSliceResult::keep_all(3),
            &versioned,
            Method::ReenactPsDs,
            &config,
            None,
        )
        .unwrap();
        assert_eq!(plan.original_reenactments(), 0);
        let answer = plan.answer_in_group(&normalized, &versioned).unwrap();
        assert!(answer.delta.is_empty());
    }

    #[test]
    fn greedy_slicer_configuration() {
        let (query, versioned, current) = setup(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
        let reference = query.answer_by_direct_execution().unwrap();
        let config = EngineConfig {
            use_greedy_slicer: true,
            ..Default::default()
        };
        let answer =
            answer_what_if(&query, &versioned, &current, Method::ReenactPsDs, &config).unwrap();
        assert_eq!(answer.delta, reference);
        assert!(answer.stats.solver_calls > 0);
    }

    #[test]
    fn stats_reflect_slicing() {
        let (query, versioned, current) = setup(ModificationSet::single_replace(
            0,
            running_example_u1_prime(),
        ));
        let answer = answer_what_if(
            &query,
            &versioned,
            &current,
            Method::ReenactPsDs,
            &EngineConfig::default(),
        )
        .unwrap();
        // u3 is excluded by program slicing, the data slice keeps 2 of 4
        // tuples.
        assert_eq!(answer.stats.statements_total, 3);
        assert_eq!(answer.stats.statements_reenacted, 2);
        assert_eq!(answer.stats.total_tuples, 4);
        assert_eq!(answer.stats.input_tuples, 2);
        assert!(answer.timings.program_slicing > std::time::Duration::ZERO);
        // Reenactment-only has no slicing cost and full input.
        let plain = answer_what_if(
            &query,
            &versioned,
            &current,
            Method::Reenact,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.stats.statements_reenacted, 3);
        assert_eq!(plain.stats.input_tuples, 4);
        assert_eq!(plain.stats.solver_calls, 0);
    }

    #[test]
    fn empty_modifications_give_empty_answer() {
        let (query, versioned, current) = setup(ModificationSet::default());
        for method in Method::all() {
            let answer = answer_what_if(
                &query,
                &versioned,
                &current,
                method,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(answer.delta.is_empty(), "method {}", method.label());
        }
    }
}
