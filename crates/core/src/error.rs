//! Engine errors.

use std::fmt;

use mahif_history::HistoryError;
use mahif_query::QueryError;
use mahif_slicing::SlicingError;
use mahif_storage::StorageError;

/// Errors raised by the Mahif middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MahifError {
    /// Underlying history error.
    History(HistoryError),
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query error.
    Query(QueryError),
    /// Underlying slicing error.
    Slicing(SlicingError),
    /// A what-if script passed to [`crate::Mahif::what_if_sql`] did not
    /// parse.
    InvalidWhatIfScript(String),
}

impl fmt::Display for MahifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MahifError::History(e) => write!(f, "history error: {e}"),
            MahifError::Storage(e) => write!(f, "storage error: {e}"),
            MahifError::Query(e) => write!(f, "query error: {e}"),
            MahifError::Slicing(e) => write!(f, "slicing error: {e}"),
            MahifError::InvalidWhatIfScript(e) => write!(f, "invalid what-if script: {e}"),
        }
    }
}

impl std::error::Error for MahifError {}

impl From<HistoryError> for MahifError {
    fn from(e: HistoryError) -> Self {
        MahifError::History(e)
    }
}

impl From<StorageError> for MahifError {
    fn from(e: StorageError) -> Self {
        MahifError::Storage(e)
    }
}

impl From<QueryError> for MahifError {
    fn from(e: QueryError) -> Self {
        MahifError::Query(e)
    }
}

impl From<SlicingError> for MahifError {
    fn from(e: SlicingError) -> Self {
        MahifError::Slicing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: MahifError = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: MahifError = SlicingError::HistoriesNotAligned {
            original: 1,
            modified: 2,
        }
        .into();
        assert!(e.to_string().contains("not aligned"));
    }
}
