//! The unified public error type.
//!
//! Every fallible operation of the middleware — registering a history,
//! building a request, answering a single query or a batch — reports one
//! [`Error`]: the underlying cause ([`ErrorKind`], wrapping the per-crate
//! error enums) plus the context a service operator needs to act on it —
//! the engine [`Phase`] that failed and, when known, the names of the
//! offending scenario and registered history.

use std::fmt;
use std::time::Duration;

use mahif_analyze::AnalysisError;
use mahif_expr::ExprError;
use mahif_history::HistoryError;
use mahif_query::QueryError;
use mahif_slicing::SlicingError;
use mahif_sqlparse::ParseError;
use mahif_storage::StorageError;
use mahif_symbolic::SymbolicError;

/// The engine phase in which an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Phase {
    /// Registering a history with a session (executing the version chain).
    Register,
    /// Building the request (parsing what-if SQL, resolving names).
    Build,
    /// Admitting the request (validating scenarios against the session's
    /// registry and the request [`crate::Budget`], before any engine work).
    Admission,
    /// Normalizing modifications against the registered history.
    Normalize,
    /// Program slicing (symbolic execution + solver).
    ProgramSlicing,
    /// Data slicing, reenactment and delta computation.
    Execution,
    /// Reducing a delta to an aggregate impact report.
    Impact,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            Phase::Register => "registration",
            Phase::Build => "request building",
            Phase::Admission => "admission",
            Phase::Normalize => "normalization",
            Phase::ProgramSlicing => "program slicing",
            Phase::Execution => "execution",
            Phase::Impact => "impact analysis",
        };
        f.write_str(label)
    }
}

/// Which limit of a [`crate::Budget`] a request exceeded, with the limit and
/// the observed value — structured so serving layers can map the breach to a
/// response (and clients can right-size their next request) without parsing
/// message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetBreach {
    /// The request carried more scenarios than `Budget::max_scenarios`.
    Scenarios {
        /// The configured limit.
        limit: usize,
        /// Scenarios the request carried.
        requested: usize,
    },
    /// Planning spent more slicing solver calls than
    /// `Budget::max_solver_calls`.
    SolverCalls {
        /// The configured limit.
        limit: usize,
        /// Solver calls the planning phase spent.
        used: usize,
    },
    /// The wall-clock deadline of `Budget::deadline` passed.
    Deadline {
        /// The configured limit.
        limit: Duration,
        /// Elapsed wall-clock time when the breach was detected.
        elapsed: Duration,
    },
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetBreach::Scenarios { limit, requested } => write!(
                f,
                "request carries {requested} scenarios, over the budget of {limit}"
            ),
            BudgetBreach::SolverCalls { limit, used } => write!(
                f,
                "planning spent {used} solver calls, over the budget of {limit}"
            ),
            BudgetBreach::Deadline { limit, elapsed } => {
                write!(f, "deadline of {limit:?} passed ({elapsed:?} elapsed)")
            }
        }
    }
}

/// What went wrong, wrapping the per-crate error enums behind one public
/// surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Underlying history error (normalization, application, execution).
    History(HistoryError),
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query-evaluation error.
    Query(QueryError),
    /// Underlying slicing error.
    Slicing(SlicingError),
    /// Underlying expression error.
    Expr(ExprError),
    /// Underlying symbolic-execution error.
    Symbolic(SymbolicError),
    /// The static analyzer rejected the request before any engine work: an
    /// unknown relation/attribute, a type-mismatched predicate or a
    /// malformed parameter substitution (a client mistake, not an engine
    /// fault — HTTP 400 at the serve layer).
    Analysis(AnalysisError),
    /// A what-if script did not parse.
    InvalidWhatIfScript(ParseError),
    /// A request named a history that was never registered.
    UnknownHistory(String),
    /// A history was registered twice under the same name.
    DuplicateHistory(String),
    /// Two scenarios of one request share a name.
    DuplicateScenario(String),
    /// A method label did not parse (see [`crate::Method`]'s `FromStr`).
    UnknownMethod(String),
    /// A batch request carried no scenarios.
    EmptyRequest,
    /// The request exceeded its [`crate::Budget`] (scenario count, solver
    /// calls or deadline); the breach names the limit and the observed
    /// value.
    BudgetExceeded(BudgetBreach),
    /// A worker thread panicked while answering a scenario.
    WorkerPanicked,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::History(e) => write!(f, "history error: {e}"),
            ErrorKind::Storage(e) => write!(f, "storage error: {e}"),
            ErrorKind::Query(e) => write!(f, "query error: {e}"),
            ErrorKind::Slicing(e) => write!(f, "slicing error: {e}"),
            ErrorKind::Expr(e) => write!(f, "expression error: {e}"),
            ErrorKind::Symbolic(e) => write!(f, "symbolic execution error: {e}"),
            ErrorKind::Analysis(e) => write!(f, "static analysis rejected the request: {e}"),
            ErrorKind::InvalidWhatIfScript(e) => write!(f, "invalid what-if script: {e}"),
            ErrorKind::UnknownHistory(name) => {
                write!(f, "no history named '{name}' is registered")
            }
            ErrorKind::DuplicateHistory(name) => {
                write!(f, "a history named '{name}' is already registered")
            }
            ErrorKind::DuplicateScenario(name) => {
                write!(f, "the request already contains a scenario named '{name}'")
            }
            ErrorKind::UnknownMethod(label) => {
                write!(
                    f,
                    "unknown method '{label}' (expected one of N, R, R+DS, R+PS, R+PS+DS)"
                )
            }
            ErrorKind::EmptyRequest => write!(f, "the request contains no scenarios"),
            ErrorKind::BudgetExceeded(breach) => write!(f, "budget exceeded: {breach}"),
            ErrorKind::WorkerPanicked => write!(f, "worker thread panicked"),
        }
    }
}

/// Errors raised by the Mahif middleware: a cause plus where it happened.
///
/// The struct is `#[non_exhaustive]`; construct errors through the `From`
/// impls or [`Error::new`] and refine them with the builder-style context
/// setters. `Display` always names the phase and, when known, the offending
/// scenario and history, so a log line alone locates the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Error {
    /// What went wrong.
    pub kind: ErrorKind,
    /// The engine phase that failed, when known.
    pub phase: Option<Phase>,
    /// The scenario being processed, when known.
    pub scenario: Option<String>,
    /// The registered history the request ran against, when known.
    pub history: Option<String>,
}

impl Error {
    /// Creates an error with no context.
    pub fn new(kind: ErrorKind) -> Self {
        Error {
            kind,
            phase: None,
            scenario: None,
            history: None,
        }
    }

    /// Stamps the engine phase (overwrites an earlier stamp: the outermost
    /// funnel knows best which phase it was driving).
    pub fn in_phase(mut self, phase: Phase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Names the scenario that was being processed.
    pub fn for_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = Some(scenario.into());
        self
    }

    /// Names the registered history the request ran against.
    pub fn on_history(mut self, history: impl Into<String>) -> Self {
        self.history = Some(history.into());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Some(phase) => write!(f, "{phase} failed")?,
            None => write!(f, "what-if answering failed")?,
        }
        if let Some(scenario) = &self.scenario {
            write!(f, " for scenario '{scenario}'")?;
        }
        if let Some(history) = &self.history {
            write!(f, " on history '{history}'")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for Error {}

impl From<ErrorKind> for Error {
    fn from(kind: ErrorKind) -> Self {
        Error::new(kind)
    }
}

macro_rules! wrap_error {
    ($source:ty, $variant:ident) => {
        impl From<$source> for Error {
            fn from(e: $source) -> Self {
                Error::new(ErrorKind::$variant(e))
            }
        }
    };
}

wrap_error!(HistoryError, History);
wrap_error!(StorageError, Storage);
wrap_error!(QueryError, Query);
wrap_error!(SlicingError, Slicing);
wrap_error!(ExprError, Expr);
wrap_error!(SymbolicError, Symbolic);
wrap_error!(AnalysisError, Analysis);
wrap_error!(ParseError, InvalidWhatIfScript);

/// Legacy name of [`Error`], kept so code written against the pre-`Session`
/// API keeps compiling.
pub type MahifError = Error;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: Error = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: Error = SlicingError::HistoriesNotAligned {
            original: 1,
            modified: 2,
        }
        .into();
        assert!(e.to_string().contains("not aligned"));
    }

    #[test]
    fn context_is_rendered() {
        let e = Error::new(ErrorKind::UnknownHistory("retail".into()))
            .in_phase(Phase::Build)
            .for_scenario("threshold/60")
            .on_history("retail");
        let s = e.to_string();
        assert!(s.contains("request building failed"), "{s}");
        assert!(s.contains("scenario 'threshold/60'"), "{s}");
        assert!(s.contains("history 'retail'"), "{s}");
        assert!(s.contains("no history named 'retail'"), "{s}");
    }

    #[test]
    fn phase_labels_are_distinct() {
        let phases = [
            Phase::Register,
            Phase::Build,
            Phase::Admission,
            Phase::Normalize,
            Phase::ProgramSlicing,
            Phase::Execution,
            Phase::Impact,
        ];
        let labels: std::collections::BTreeSet<String> =
            phases.iter().map(|p| p.to_string()).collect();
        assert_eq!(labels.len(), phases.len());
    }

    #[test]
    fn budget_breaches_render_limit_and_observed_value() {
        let e = Error::new(ErrorKind::BudgetExceeded(BudgetBreach::Scenarios {
            limit: 8,
            requested: 12,
        }))
        .in_phase(Phase::Admission)
        .on_history("retail");
        let s = e.to_string();
        assert!(s.contains("admission failed"), "{s}");
        assert!(s.contains("budget exceeded"), "{s}");
        assert!(s.contains("12 scenarios"), "{s}");
        assert!(s.contains("budget of 8"), "{s}");

        let e = Error::new(ErrorKind::BudgetExceeded(BudgetBreach::SolverCalls {
            limit: 10,
            used: 42,
        }));
        assert!(e.to_string().contains("42 solver calls"), "{e}");

        let e = Error::new(ErrorKind::BudgetExceeded(BudgetBreach::Deadline {
            limit: Duration::from_millis(5),
            elapsed: Duration::from_millis(7),
        }));
        assert!(e.to_string().contains("deadline"), "{e}");
    }

    #[test]
    fn without_context_display_still_names_the_kind() {
        let e = Error::new(ErrorKind::WorkerPanicked);
        assert!(e.to_string().contains("worker thread panicked"));
        assert!(e.to_string().contains("what-if answering failed"));
    }
}
