//! The scoped worker pool the request funnel runs scenarios on.
//!
//! Plain scoped threads with an atomic work index — no external dependency —
//! so a batch of k scenarios executes on `min(k, threads)` workers while the
//! registered history and version chain stay borrowed, never cloned.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `0` means "use the machine's available parallelism"; the thread count is
/// never larger than the number of work items.
pub(crate) fn resolve_parallelism(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Runs `f(0..count)` on `threads` scoped workers with work stealing
/// (atomic index), preserving result order.
pub(crate) fn run_indexed<T, E, F>(count: usize, threads: usize, f: F) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index is claimed by exactly one worker")
        })
        .collect()
}

/// First error wins (in item order); otherwise unwraps all results.
pub(crate) fn collect_results<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order_and_reports_errors() {
        let results: Vec<Result<usize, String>> = run_indexed(8, 4, |i| {
            if i == 5 {
                Err("boom".to_string())
            } else {
                Ok(i * 10)
            }
        });
        assert_eq!(results.len(), 8);
        assert_eq!(*results[3].as_ref().unwrap(), 30);
        assert!(results[5].is_err());
        assert!(collect_results(results).is_err());
    }

    #[test]
    fn resolve_parallelism_bounds() {
        assert_eq!(resolve_parallelism(4, 2), 2);
        assert_eq!(resolve_parallelism(1, 100), 1);
        assert!(resolve_parallelism(0, 100) >= 1);
    }
}
